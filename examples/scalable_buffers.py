#!/usr/bin/env python3
"""Section 2 what-if: prediction-driven buffers, credits and fast long messages.

The paper motivates message prediction with three scalability problems of
standard MPI runtimes.  This example runs the corresponding what-if
experiments on the simulated runtime and prints the comparison the paper only
sketches:

* **memory reduction** — per-peer eager buffers for all peers vs only for the
  predicted senders (NAS BT, 16 processes);
* **bounded unexpected-message exposure** — unsolicited eager fan-in vs
  prediction-granted credits (collective-storm workload, 16 processes);
* **fast path for long messages** — rendezvous for every long message vs a
  predictive bypass (ring exchange with 32 KB messages).

Run with::

    python examples/scalable_buffers.py [--scale 1.0]

(``--scale`` multiplies each experiment's default run scale; CI smoke-runs
the example at a tiny scale.)
"""

from __future__ import annotations

import argparse

from repro.analysis.extensions import (
    credit_flow_experiment,
    memory_reduction_experiment,
    rendezvous_bypass_experiment,
)


def show(title: str, outcome: dict, highlights: list[str]) -> None:
    print(title)
    print("-" * len(title))
    for key in highlights:
        value = outcome[key]
        if isinstance(value, float):
            value = f"{value:.3g}"
        print(f"  {key:40s} {value}")
    print()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="Multiplier on each experiment's default run scale (default 1.0).",
    )
    args = parser.parse_args(argv)
    scale = args.scale

    memory = memory_reduction_experiment(
        workload_name="bt", nprocs=16, scale=0.25 * scale, seed=2003
    )
    show(
        "Section 2.1 — eager buffer memory per process",
        memory,
        [
            "baseline_buffer_bytes_per_rank",
            "predictive_peak_buffer_bytes_per_rank",
            "memory_reduction_factor",
            "eager_hits",
            "eager_misses",
            "slowdown",
        ],
    )

    credits = credit_flow_experiment(nprocs=16, scale=scale, seed=2003)
    show(
        "Section 2.2 — unexpected-message exposure under collective fan-in",
        credits,
        [
            "baseline_unexpected_deliveries",
            "predictive_unexpected_deliveries",
            "max_outstanding_credit_bytes",
            "credit_cap_bytes",
            "eager_granted",
            "eager_denied",
            "slowdown",
        ],
    )

    rendezvous = rendezvous_bypass_experiment(
        workload_name="ring-exchange", nprocs=8, scale=scale, seed=2003
    )
    show(
        "Section 2.3 — long messages on the fast path",
        rendezvous,
        [
            "baseline_rendezvous_messages",
            "predictive_rendezvous_messages",
            "bypassed_long_messages",
            "bypass_rate",
            "baseline_mean_rendezvous_latency",
            "predictive_mean_eager_latency",
            "speedup_vs_baseline",
        ],
    )

    print(
        "Interpretation: the predictive runtime needs buffers only for the senders\n"
        "it actually hears from, keeps the receiver's unexpected-message exposure\n"
        "bounded by the outstanding credit, and moves predicted long messages onto\n"
        "the eager fast path — at the price of a slow first iteration while the\n"
        "periodicity detector is still learning (the 'misses'/'denied' counters)."
    )


if __name__ == "__main__":
    main()
