#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Runs the 19 application/process-count configurations of Table 1 on the
simulated MPI runtime, then reproduces:

* Table 1  — benchmark message-stream characteristics (measured vs paper),
* Figure 1 — periodic sender/size streams of bt.9, process 3,
* Figure 2 — logical vs physical sender stream of bt.4, process 3,
* Figure 3 — logical-level prediction accuracy (+1 … +5),
* Figure 4 — physical-level prediction accuracy (+1 … +5),

plus the Section 2 extension experiments and the ablations indexed in
DESIGN.md.  The output is written to stdout and optionally to a Markdown
report (used to produce EXPERIMENTS.md).  All the heavy lifting lives in
:func:`repro.analysis.report.build_report`; this script is a thin CLI around
it (see also ``python -m repro report``).

Run with::

    python examples/reproduce_paper.py --output report.md

A full-fidelity run (registry default scales) takes a few minutes;
``--scale 0.25`` gives a quick pass with shorter streams (accuracy numbers
are a little lower because the predictor's learning phase is amortised over
fewer messages).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import build_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="Override the per-application run scale (default: registry defaults).",
    )
    parser.add_argument("--seed", type=int, default=2003, help="Experiment seed.")
    parser.add_argument("--output", type=str, default=None, help="Also write the report to this file.")
    parser.add_argument(
        "--figures-only",
        action="store_true",
        help="Skip the extension experiments and ablations (faster).",
    )
    args = parser.parse_args(argv)

    report = build_report(
        seed=args.seed,
        scale=args.scale,
        include_extensions=not args.figures_only,
        include_ablations=not args.figures_only,
    )
    text = report.render()
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\nreport written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
