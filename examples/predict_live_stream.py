#!/usr/bin/env python3
"""Online prediction demo: watch the predictor learn a message stream live.

The paper's predictor is designed to run *inside* the MPI library at runtime:
it observes each received message and keeps a rolling prediction of the next
few senders and sizes.  This example replays the message stream of one
Sweep3D process through the **serve plane** (`repro.serve` — the same
ingestion path `python -m repro serve` exposes over TCP, driven in-process
here), prints what the receiver would have pre-allocated or granted at a few
checkpoints, and keeps the original inline
:class:`repro.predictive.online.OnlineMessagePredictor` drive alongside as a
comparison: the serve path's answers are asserted bit-identical to the
inline predictor's at every checkpoint.  It closes by showing how malformed
event lines are rejected — a pointed, line-numbered error in the style of
the DUMPI importer, never silent stream pollution.

Run with::

    python examples/predict_live_stream.py [--scale 0.5]

(``--scale`` trades run time for stream length; CI smoke-runs the example
at a tiny scale.)
"""

from __future__ import annotations

import argparse
import json

from repro import Scenario
from repro.predictive import OnlineMessagePredictor
from repro.serve import ServeProtocolError, ServeService


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=0.5,
        help="Fraction of the default iteration count to simulate (default 0.5).",
    )
    args = parser.parse_args(argv)

    # Simulate Sweep3D on 16 processes and take the stream of process 0.
    result = Scenario({"workload": f"sw.16:scale={args.scale}", "seed": 11}).run()
    rank = result.representative_rank
    records = result.records("physical")
    print(f"replaying {len(records)} messages received by process {rank} of sw.16\n")

    # The serve path: NDJSON observe events through the same code that backs
    # `python -m repro serve` (2 shards to exercise the routing too).
    service = ServeService("periodicity:horizon=5", num_shards=2)
    key = f"rank-{rank}"

    # The original inline drive, kept as the comparison reference.
    inline = OnlineMessagePredictor(nprocs=result.workload.nprocs, horizon=5)

    checkpoints = {50, 200, 500, len(records) - 1}
    correct_next_sender = 0
    evaluated = 0

    for index, record in enumerate(records):
        # Score the +1 sender prediction made *before* seeing this message.
        predicted = inline.predict(rank, horizon=1)[0]
        if predicted.sender is not None:
            evaluated += 1
            if predicted.sender == record.sender:
                correct_next_sender += 1

        line = json.dumps(
            {"receiver": key, "sender": record.sender, "nbytes": record.nbytes}
        )
        service.handle_line(line, line_number=index + 1)
        inline.observe(rank, record.sender, record.nbytes)

        if index in checkpoints:
            expectations = service.predict(key)
            # Serve vs offline bit-identity, live at every checkpoint.
            assert expectations == inline.predict(rank), "serve path diverged!"
            expected = ", ".join(
                f"(from {p.sender}, {p.nbytes} B)" if p.complete else "(unknown)"
                for p in expectations
            )
            senders = sorted({p.sender for p in expectations if p.sender is not None})
            print(f"after message {index + 1}:")
            print(f"  next five expected messages: {expected}")
            print(f"  eager buffers the receiver would keep: ranks {senders}")
            print()

    rate = 100.0 * correct_next_sender / evaluated if evaluated else 0.0
    print(
        f"online +1 sender prediction: {correct_next_sender}/{evaluated} correct "
        f"({rate:.1f}%) over the whole run"
    )
    stats = service.stats()
    print(
        f"serve plane: {stats['streams']} resident stream(s), "
        f"{stats['observations']} observations, "
        f"{stats['resident_bytes'] / 1e3:.1f} KB resident — "
        "answers bit-identical to the inline predictor at every checkpoint"
    )

    # Garbage on the wire is rejected with a line-numbered error (the
    # DumpiParseError discipline), never folded into stream state.
    try:
        service.handle_line('{"receiver": "rank-0", "sender": -3, "nbytes": 1}', 9001)
    except ServeProtocolError as error:
        print(f"malformed event line rejected: {error}")
    assert service.stats()["observations"] == stats["observations"]


if __name__ == "__main__":
    main()
