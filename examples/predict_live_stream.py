#!/usr/bin/env python3
"""Online prediction demo: watch the predictor learn a message stream live.

The paper's predictor is designed to run *inside* the MPI library at runtime:
it observes each received message and keeps a rolling prediction of the next
few senders and sizes.  This example replays the message stream of one
Sweep3D process through :class:`repro.predictive.online.OnlineMessagePredictor`
and prints, at a few checkpoints, what the receiver would have pre-allocated
or granted at that moment — the information the Section 2 runtime
optimisations act on.

Run with::

    python examples/predict_live_stream.py [--scale 0.5]

(``--scale`` trades run time for stream length; CI smoke-runs the example
at a tiny scale.)
"""

from __future__ import annotations

import argparse

from repro import Scenario
from repro.predictive import OnlineMessagePredictor


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=0.5,
        help="Fraction of the default iteration count to simulate (default 0.5).",
    )
    args = parser.parse_args(argv)

    # Simulate Sweep3D on 16 processes and take the stream of process 0.
    result = Scenario({"workload": f"sw.16:scale={args.scale}", "seed": 11}).run()
    rank = result.representative_rank
    records = result.records("physical")
    print(f"replaying {len(records)} messages received by process {rank} of sw.16\n")

    predictor = OnlineMessagePredictor(nprocs=result.workload.nprocs, horizon=5)
    checkpoints = {50, 200, 500, len(records) - 1}
    correct_next_sender = 0
    evaluated = 0

    for index, record in enumerate(records):
        # Score the +1 sender prediction made *before* seeing this message.
        predicted = predictor.predict(rank, horizon=1)[0]
        if predicted.sender is not None:
            evaluated += 1
            if predicted.sender == record.sender:
                correct_next_sender += 1

        predictor.observe(rank, record.sender, record.nbytes)

        if index in checkpoints:
            expectations = predictor.predict(rank)
            expected = ", ".join(
                f"(from {p.sender}, {p.nbytes} B)" if p.complete else "(unknown)"
                for p in expectations
            )
            senders = sorted(predictor.predicted_senders(rank))
            print(f"after message {index + 1}:")
            print(f"  next five expected messages: {expected}")
            print(f"  eager buffers the receiver would keep: ranks {senders}")
            print()

    rate = 100.0 * correct_next_sender / evaluated if evaluated else 0.0
    print(
        f"online +1 sender prediction: {correct_next_sender}/{evaluated} correct "
        f"({rate:.1f}%) over the whole run"
    )


if __name__ == "__main__":
    main()
