#!/usr/bin/env python3
"""Quickstart: simulate an MPI application and predict its message stream.

This example walks the full pipeline of the library in a couple of minutes,
through the declarative scenario API (docs/scenarios.md):

1. describe a scenario: the communication skeleton of NAS BT on 9 simulated
   processes, the standard jittered network, the paper's predictor,
2. run it on the discrete-event MPI runtime simulator,
3. read the stream of (sender, size) pairs received by process 3 at the
   logical and physical level (the paper's two instrumentation points),
4. evaluate the paper's periodicity-based predictor over both streams and
   report the accuracy of predicting the next five senders and sizes.

Run with::

    python examples/quickstart.py [--scale 0.2]

(``--scale`` trades run time for stream length/accuracy; CI smoke-runs the
example at a tiny scale.)
"""

from __future__ import annotations

import argparse

from repro import Scenario, ScenarioSpec
from repro.util.text import ascii_bar_chart


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=0.2,
        help="Fraction of the class-A iteration count to simulate (default 0.2).",
    )
    args = parser.parse_args(argv)

    # 1. Describe the scenario: NAS BT, 9 processes, ~20% of the class A
    #    iteration count (by default) so the example runs in a few seconds.
    #    The predictor spec defaults to the paper's configuration (DPD with
    #    window 24, max period 256, horizon 5).
    spec = ScenarioSpec(workload=f"bt.9:scale={args.scale}", seed=7)
    print(f"scenario: {spec.label} (seed {spec.seed})")

    # 2. Run it on the simulated MPI runtime (seeded => fully reproducible).
    result = Scenario(spec).run()
    print(
        f"simulated {result.stats.messages_sent} messages "
        f"({result.stats.eager_messages} eager / {result.stats.rendezvous_messages} rendezvous) "
        f"in {result.makespan * 1e3:.2f} simulated ms"
    )

    # 3. Read the message streams received by process 3 (the process the
    #    paper's Figure 1 uses — the spec's representative rank for BT).
    rank = result.representative_rank
    print(f"\nprocess {rank} received {len(result.stream('sender'))} messages")
    summary = result.summary()
    print(
        f"  distinct senders: {summary.num_distinct_senders}, "
        f"distinct sizes: {summary.num_distinct_sizes}, "
        f"p2p: {summary.p2p_messages}, collective: {summary.collective_messages}"
    )

    # 4. Predict the next five senders / sizes at every position of the
    #    stream and report per-horizon accuracy, at both trace levels.
    print()
    for level in ("logical", "physical"):
        sender_acc = result.predict("sender", level=level)
        size_acc = result.predict("size", level=level)
        bars = {
            f"{level} sender +{k}": 100.0 * sender_acc.accuracy(k) for k in range(1, 6)
        }
        bars.update(
            {f"{level} size   +{k}": 100.0 * size_acc.accuracy(k) for k in range(1, 6)}
        )
        print(ascii_bar_chart(bars, max_value=100.0, width=40, title=f"{level} level"))
        print()


if __name__ == "__main__":
    main()
