#!/usr/bin/env python3
"""The full `repro serve` lifecycle in one script.

Starts a real ``python -m repro serve`` process on an ephemeral port,
replays the committed sample trace's receive records at it as observe
events, queries predictions back, snapshots the service, shuts it down,
restarts a second server **from the snapshot**, and verifies the restored
server answers every query bit-identically — the serve plane's whole
contract, end to end over TCP.

Run with::

    python examples/serve_quickstart.py

Requires nothing beyond the repo itself (``examples/sample_trace.jsonl``
is committed).  CI runs this script as the serve smoke.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve import ServeClient  # noqa: E402
from repro.trace.io import load_traces  # noqa: E402

SAMPLE_TRACE = REPO_ROOT / "examples" / "sample_trace.jsonl"


def start_server(*extra_args: str) -> tuple[subprocess.Popen, int]:
    """Launch ``repro serve`` on an ephemeral port; return (process, port)."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--shards",
            "2",
            "--predictor",
            "periodicity:window=4,max_period=8,horizon=4",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        text=True,
        cwd=REPO_ROOT,
        env={
            **os.environ,
            # Run from the checkout whether or not the package is installed.
            "PYTHONPATH": os.pathsep.join(
                filter(None, [str(REPO_ROOT / "src"), os.environ.get("PYTHONPATH")])
            ),
        },
    )
    # The server prints exactly one "serving on HOST:PORT" line once bound.
    line = process.stdout.readline().strip()
    assert line.startswith("serving on "), f"unexpected server banner: {line!r}"
    port = int(line.rsplit(":", 1)[1])
    return process, port


def main() -> None:
    traces, _ = load_traces(SAMPLE_TRACE)
    streams = {
        f"rank-{trace.rank}": [
            (r.sender, r.nbytes) for r in trace.logical if r.sender >= 0
        ]
        for trace in traces
    }
    total = sum(len(pairs) for pairs in streams.values())
    print(f"replaying {total} receive records over {len(streams)} streams")

    with tempfile.TemporaryDirectory(prefix="repro-serve-") as scratch:
        snap_dir = pathlib.Path(scratch) / "snap"

        server, port = start_server()
        print(f"server up on port {port}")
        try:
            with ServeClient.connect(port=port) as client:
                for key, pairs in sorted(streams.items()):
                    for sender, nbytes in pairs:
                        client.observe(key, sender, nbytes)
                client.flush()  # barrier: every observe applied

                stats = client.stats()
                print(
                    f"ingested {stats['observations']} events into "
                    f"{stats['streams']} streams over {stats['num_shards']} shards "
                    f"({stats['resident_bytes'] / 1e3:.1f} KB resident)"
                )

                before = {key: client.predict(key) for key in sorted(streams)}
                sample_key = next(iter(sorted(streams)))
                predictions = before[sample_key]["predictions"]
                print(f"{sample_key} expects next: {predictions}")

                written = client.snapshot(snap_dir)
                print(
                    f"snapshot: {written['streams']} streams into "
                    f"{written['shards']} shard files"
                )
                client.shutdown()
        finally:
            server.wait(timeout=30)
        print("server stopped")

        # Second life: a fresh process restored from the snapshot.
        server, port = start_server("--restore", str(snap_dir))
        print(f"restored server up on port {port}")
        try:
            with ServeClient.connect(port=port) as client:
                after = {key: client.predict(key) for key in sorted(streams)}
                client.shutdown()
        finally:
            server.wait(timeout=30)

        assert after == before, "restored server diverged from the original!"
        print(
            f"restored server answered all {len(after)} queries bit-identically "
            "— snapshot round trip holds"
        )


if __name__ == "__main__":
    main()
