"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so the
package can also be installed in environments whose setuptools/pip are too
old for PEP 660 editable installs (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
