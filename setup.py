"""Package metadata.

This ``setup.py`` is the single source of packaging truth for the project
(there is intentionally no ``pyproject.toml``: the reproduction targets
environments whose pip/setuptools may predate PEP 660 editable installs).

The only hard runtime dependency is numpy — the typed event queue, the
vectorised cohort engine, the columnar trace plane and the predictor
evaluation all operate on numpy arrays.  The minimum version is asserted a
second time at import (``repro/__init__.py``) so a too-old interpreter
environment fails with a clear message rather than deep inside a kernel.
"""

from setuptools import find_packages, setup

setup(
    name="repro-mpi-predictability",
    version="1.0.0",
    description=(
        "Reproduction of 'Exploring the Predictability of MPI Messages' "
        "(Freitag et al., IPDPS 2003)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    extras_require={
        "dev": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
