"""Tests for repro.workloads.topology."""

import pytest

from repro.workloads.topology import (
    factor_2d,
    grid_coords,
    grid_rank,
    is_power_of_two,
    log2_int,
    neighbor,
    square_side,
)


class TestPowersOfTwo:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(2)
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(6)
        assert not is_power_of_two(-4)

    def test_log2_int(self):
        assert log2_int(1) == 0
        assert log2_int(32) == 5

    def test_log2_int_rejects_non_powers(self):
        with pytest.raises(ValueError):
            log2_int(6)


class TestSquareSide:
    @pytest.mark.parametrize("nprocs,side", [(1, 1), (4, 2), (9, 3), (16, 4), (25, 5)])
    def test_valid_squares(self, nprocs, side):
        assert square_side(nprocs) == side

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            square_side(8)


class TestFactor2D:
    @pytest.mark.parametrize(
        "nprocs,expected",
        [(1, (1, 1)), (2, (2, 1)), (4, (2, 2)), (6, (3, 2)), (8, (4, 2)), (12, (4, 3)), (32, (8, 4))],
    )
    def test_most_square_factorisation(self, nprocs, expected):
        assert factor_2d(nprocs) == expected

    def test_prime(self):
        assert factor_2d(7) == (7, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            factor_2d(0)


class TestGridMapping:
    def test_roundtrip(self):
        dims = (4, 3)
        for rank in range(12):
            x, y = grid_coords(rank, dims)
            assert grid_rank(x, y, dims) == rank

    def test_row_major(self):
        assert grid_coords(5, (4, 3)) == (1, 1)
        assert grid_rank(1, 1, (4, 3)) == 5

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            grid_coords(12, (4, 3))
        with pytest.raises(ValueError):
            grid_rank(4, 0, (4, 3))


class TestNeighbor:
    def test_periodic_wraps(self):
        dims = (3, 3)
        assert neighbor(0, dims, -1, 0, periodic=True) == 2
        assert neighbor(0, dims, 0, -1, periodic=True) == 6

    def test_open_boundary_returns_none(self):
        dims = (3, 3)
        assert neighbor(0, dims, -1, 0, periodic=False) is None
        assert neighbor(0, dims, 0, -1, periodic=False) is None
        assert neighbor(8, dims, 1, 0, periodic=False) is None

    def test_interior_neighbours(self):
        dims = (3, 3)
        assert neighbor(4, dims, 1, 0, periodic=False) == 5
        assert neighbor(4, dims, 0, 1, periodic=False) == 7

    def test_diagonal(self):
        assert neighbor(4, (3, 3), -1, -1, periodic=True) == 0
