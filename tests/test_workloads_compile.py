"""Unit tests of the op-array compiler (repro.workloads.compile).

The equivalence of compiled and generator execution is covered by
``tests/test_workloads_oparray_equivalence.py``; this module pins down the
compiler itself: lane structure, the dynamic-program fallbacks, the schedule
cache, and the compile-time noise bookkeeping.
"""

import pytest

from repro.mpi.communicator import Communicator, RankContext
from repro.mpi.constants import ANY_SOURCE, KIND_COLLECTIVE, KIND_P2P
from repro.mpi.ops import (
    OP_COMPUTE,
    OP_IRECV,
    OP_ISEND,
    OP_RECV,
    OP_SEND,
    OP_WAIT,
    OP_WAITALL,
    CompiledProgram,
    IrecvOp,
    RecvOp,
    SendOp,
    WaitallOp,
    WaitOp,
)
from repro.util.rng import SeededRNG
from repro.workloads.base import Workload
from repro.workloads.compile import (
    clear_schedule_cache,
    compile_info,
    compile_program,
    compile_rank_lanes,
)
from repro.workloads.registry import create_workload
from repro.workloads.synthetic import CollectiveStormWorkload


def make_ctx(workload, rank=0, seed=5):
    return RankContext(
        rank=rank,
        size=workload.nprocs,
        comm=Communicator(rank=rank, size=workload.nprocs),
        rng=SeededRNG(seed, "rank", rank),
    )


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_schedule_cache()
    yield
    clear_schedule_cache()


class TestLaneStructure:
    def test_bt_rank0_compiles_to_wellformed_lanes(self):
        workload = create_workload("bt", nprocs=9, scale=0.05)
        lanes = compile_rank_lanes(workload, 0)
        assert lanes is not None and len(lanes) > 0
        n = len(lanes)
        assert (
            len(lanes.op)
            == len(lanes.a)
            == len(lanes.nbytes)
            == len(lanes.tag)
            == len(lanes.seconds)
            == len(lanes.kind)
            == n
        )
        valid = {OP_COMPUTE, OP_SEND, OP_ISEND, OP_RECV, OP_IRECV, OP_WAITALL}
        assert set(lanes.op) <= valid
        for i in range(n):
            code = lanes.op[i]
            if code in (OP_SEND, OP_ISEND, OP_RECV, OP_IRECV):
                assert lanes.kind[i] in (KIND_P2P, KIND_COLLECTIVE)
            else:
                assert lanes.kind[i] is None
            if code == OP_COMPUTE:
                assert lanes.seconds[i] >= 0.0
                assert lanes.a[i] in (0, 1)
            if code == OP_WAITALL:
                assert lanes.a[i] >= 0

    def test_op_counts_match_generator_yields(self):
        workload = create_workload("cg", nprocs=8, scale=0.1)
        ctx = make_ctx(workload, rank=1)
        yielded = sum(1 for _ in workload.program(ctx))
        lanes = compile_rank_lanes(workload, 1)
        assert lanes is not None
        assert len(lanes) == yielded

    def test_every_registry_paper_workload_compiles(self):
        for name, nprocs in [("bt", 4), ("cg", 4), ("lu", 4), ("is", 4), ("sweep3d", 6)]:
            workload = create_workload(name, nprocs=nprocs, scale=0.02)
            for rank in range(nprocs):
                assert compile_rank_lanes(workload, rank) is not None, (name, rank)


class _StaticPingWorkload(Workload):
    """Minimal two-rank static workload used by the opt-out tests."""

    name = "static-ping-test"

    def default_iterations(self):
        return 3

    def program(self, ctx):
        comm = ctx.comm
        for i in range(self.iterations):
            if ctx.rank == 0:
                yield comm.send(1, 256, tag=i % 4)
            elif ctx.rank == 1:
                yield comm.recv(source=0, tag=i % 4)


class TestFallbacks:
    def test_compile_supported_false_opts_out(self):
        class OptedOut(_StaticPingWorkload):
            compile_supported = False

        workload = OptedOut(nprocs=2)
        ctx = make_ctx(workload)
        assert workload.compile_program(ctx) is None
        # program_for then hands the engine the plain generator.
        assert hasattr(workload.program_for(ctx), "send")

    def test_prefetch_compute_noise_false_opts_out(self):
        workload = create_workload("random-sender", nprocs=4)
        ctx = make_ctx(workload)
        assert workload.compile_program(ctx) is None

    def test_direct_rng_draw_falls_back(self):
        class DrawsDirectly(_StaticPingWorkload):
            def program(self, ctx):
                yield ctx.comm.compute(1e-6 * (1 + ctx.rng.integers(0, 3)))

        assert compile_rank_lanes(DrawsDirectly(nprocs=2), 0) is None

    def test_partial_waitall_compiles_to_op_wait(self):
        """A contiguous partial wait lowers to OP_WAIT (offset, count)."""

        class PartialWait(_StaticPingWorkload):
            def program(self, ctx):
                if ctx.rank == 0:
                    first = yield IrecvOp(source=1, tag=0)
                    second = yield IrecvOp(source=1, tag=1)
                    yield WaitallOp([first])  # leaves `second` outstanding
                    yield WaitallOp([second])
                else:
                    yield SendOp(0, 64, 0)
                    yield SendOp(0, 64, 1)

        lanes = compile_rank_lanes(PartialWait(nprocs=2), 0)
        assert lanes is not None
        assert lanes.op == [OP_IRECV, OP_IRECV, OP_WAIT, OP_WAITALL]
        # First wait covers pending[0:1]; the second drains the full set.
        assert (lanes.a[2], lanes.nbytes[2]) == (0, 1)
        assert lanes.a[3] == 1
        assert compile_rank_lanes(PartialWait(nprocs=2), 1) is not None

    def test_noncontiguous_waitall_falls_back(self):
        class NonContiguous(_StaticPingWorkload):
            def program(self, ctx):
                if ctx.rank == 0:
                    first = yield IrecvOp(source=1, tag=0)
                    second = yield IrecvOp(source=1, tag=1)
                    third = yield IrecvOp(source=1, tag=2)
                    yield WaitallOp([first, third])  # skips `second`
                    yield WaitallOp([second])
                else:
                    for tag in range(3):
                        yield SendOp(0, 64, tag)

        assert compile_rank_lanes(NonContiguous(nprocs=2), 0) is None
        assert compile_rank_lanes(NonContiguous(nprocs=2), 1) is not None
        info = compile_info(NonContiguous(nprocs=2), 0)
        assert info["compiled"] is False
        assert "non-contiguous" in info["fallback"]

    def test_duplicated_wait_request_falls_back(self):
        class DoubleWait(_StaticPingWorkload):
            def program(self, ctx):
                if ctx.rank == 0:
                    first = yield IrecvOp(source=1, tag=0)
                    second = yield IrecvOp(source=1, tag=1)
                    yield WaitallOp([first, first])
                    yield WaitallOp([second])
                else:
                    yield SendOp(0, 64, 0)
                    yield SendOp(0, 64, 1)

        info = compile_info(DoubleWait(nprocs=2), 0)
        assert info["compiled"] is False
        assert "twice" in info["fallback"]

    def test_wait_on_sole_pending_request_compiles(self):
        class SingleWait(_StaticPingWorkload):
            def program(self, ctx):
                if ctx.rank == 0:
                    request = yield IrecvOp(source=1, tag=0)
                    yield WaitOp(request)
                else:
                    yield SendOp(0, 64, 0)

        lanes = compile_rank_lanes(SingleWait(nprocs=2), 0)
        assert lanes is not None
        assert lanes.op == [OP_IRECV, OP_WAITALL]
        assert lanes.a[1] == 1

    def test_payload_falls_back(self):
        class Payloaded(_StaticPingWorkload):
            def program(self, ctx):
                if ctx.rank == 0:
                    yield SendOp(1, 64, 0, payload={"data": 1})
                else:
                    yield RecvOp(source=0, tag=0)

        assert compile_rank_lanes(Payloaded(nprocs=2), 0) is None
        assert compile_rank_lanes(Payloaded(nprocs=2), 1) is not None

    def test_result_inspection_falls_back(self):
        class ReadsStatus(_StaticPingWorkload):
            def program(self, ctx):
                if ctx.rank == 0:
                    status = yield RecvOp(source=1, tag=0)
                    if status.source == 1:  # data-dependent control flow
                        yield ctx.comm.compute(1e-6)
                else:
                    yield SendOp(0, 64, 0)

        assert compile_rank_lanes(ReadsStatus(nprocs=2), 0) is None

    def test_result_equality_comparison_falls_back(self):
        """Statuses compare by value at runtime; the replay singleton must
        refuse ``==`` rather than compile the identity-equal branch."""

        class ComparesStatuses(_StaticPingWorkload):
            def program(self, ctx):
                if ctx.rank == 0:
                    first = yield RecvOp(source=1, tag=0)
                    second = yield RecvOp(source=1, tag=1)
                    if first == second:
                        yield ctx.comm.compute(1e-6)
                else:
                    yield SendOp(0, 64, 0)
                    yield SendOp(0, 64, 1)

        assert compile_rank_lanes(ComparesStatuses(nprocs=2), 0) is None

    def test_result_hashing_falls_back(self):
        class HashesStatus(_StaticPingWorkload):
            def program(self, ctx):
                if ctx.rank == 0:
                    status = yield RecvOp(source=1, tag=0)
                    if status in {None}:
                        return
                else:
                    yield SendOp(0, 64, 0)

        assert compile_rank_lanes(HashesStatus(nprocs=2), 0) is None

    def test_leaked_pending_request_falls_back(self):
        class Leaky(_StaticPingWorkload):
            def program(self, ctx):
                if ctx.rank == 0:
                    yield IrecvOp(source=1, tag=0)  # never waited on
                else:
                    yield SendOp(0, 64, 0)

        assert compile_rank_lanes(Leaky(nprocs=2), 0) is None

    def test_program_errors_propagate_at_compile_time(self):
        class Broken(_StaticPingWorkload):
            def program(self, ctx):
                yield ctx.comm.send(self.nprocs + 3, 64)  # invalid destination

        with pytest.raises(ValueError):
            compile_rank_lanes(Broken(nprocs=2), 0)

    def test_wildcard_receives_compile(self):
        class Wildcard(_StaticPingWorkload):
            def program(self, ctx):
                if ctx.rank == 0:
                    for _ in range(2):
                        yield ctx.comm.recv(source=ANY_SOURCE)
                else:
                    yield ctx.comm.send(0, 64)
                    yield ctx.comm.send(0, 64)

        lanes = compile_rank_lanes(Wildcard(nprocs=2), 0)
        assert lanes is not None
        assert lanes.a == [ANY_SOURCE, ANY_SOURCE]


class _LegacyStorm(CollectiveStormWorkload):
    """collective-storm spelled with ``yield from`` decomposition generators."""

    def program(self, ctx):
        comm = ctx.comm
        for _iteration in range(self.iterations):
            yield self.compute(ctx, 1.0)
            yield from comm.alltoall(self.block_bytes)
            yield from comm.allreduce(64)


class TestCollectiveLowering:
    """First-class collectives macro-expand into the same flat lanes."""

    def test_first_class_ops_produce_identical_lanes_to_yield_from(self):
        nprocs = 5
        first_class = create_workload("collective-storm", nprocs=nprocs, iterations=3)
        legacy = _LegacyStorm(nprocs=nprocs, iterations=3)
        for rank in range(nprocs):
            a = compile_rank_lanes(first_class, rank)
            b = compile_rank_lanes(legacy, rank)
            assert a is not None and b is not None
            assert a.op == b.op, rank
            assert a.a == b.a, rank
            assert a.nbytes == b.nbytes, rank
            assert a.tag == b.tag, rank
            assert a.seconds == b.seconds, rank
            assert a.kind == b.kind, rank

    def test_runtime_lanes_never_contain_collective_codes(self):
        """Macro-expansion is total: only scalar transport codes reach lanes."""
        valid = {OP_COMPUTE, OP_SEND, OP_ISEND, OP_RECV, OP_IRECV, OP_WAIT, OP_WAITALL}
        for nprocs in (2, 4, 5):
            workload = create_workload("collective-mix", nprocs=nprocs, iterations=2)
            for rank in range(nprocs):
                lanes = compile_rank_lanes(workload, rank)
                assert lanes is not None, (nprocs, rank)
                assert set(lanes.op) <= valid, (nprocs, rank)

    def test_nonblocking_collective_wait_uses_nonzero_offset(self):
        """collective-mix waits on its composite behind two outstanding p2p
        requests, so its first OP_WAIT must start at transport offset 2."""
        workload = create_workload("collective-mix", nprocs=4, iterations=1)
        lanes = compile_rank_lanes(workload, 0)
        assert lanes is not None
        offsets = [
            (lanes.a[i], lanes.nbytes[i])
            for i in range(len(lanes))
            if lanes.op[i] == OP_WAIT
        ]
        # 6 = the ialltoall composite's 2 * (nprocs - 1) transport requests.
        assert (2, 6) in offsets

    def test_compile_info_reports_engagement_and_fallbacks(self):
        compiled = compile_info(create_workload("collective-mix", nprocs=4), 0)
        assert compiled["compiled"] is True and compiled["ops"] > 0
        opted_out = compile_info(create_workload("random-sender", nprocs=4), 0)
        assert opted_out["compiled"] is False
        assert "compile_supported" in opted_out["fallback"]


class TestScheduleCache:
    def test_equal_configurations_share_lanes(self):
        first = create_workload("bt", nprocs=4, scale=0.05)
        second = create_workload("bt", nprocs=4, scale=0.05)
        lanes_a = compile_program(first, make_ctx(first)).lanes
        lanes_b = compile_program(second, make_ctx(second)).lanes
        assert lanes_a is lanes_b

    def test_clear_schedule_cache_forgets(self):
        workload = create_workload("bt", nprocs=4, scale=0.05)
        lanes_a = compile_program(workload, make_ctx(workload)).lanes
        clear_schedule_cache()
        lanes_b = compile_program(workload, make_ctx(workload)).lanes
        assert lanes_a is not lanes_b

    def test_cache_key_separates_configurations(self):
        base = create_workload("bt", nprocs=4, scale=0.05)
        assert base.schedule_cache_key() != create_workload(
            "bt", nprocs=9, scale=0.05
        ).schedule_cache_key()
        assert base.schedule_cache_key() != create_workload(
            "bt", nprocs=4, scale=0.1
        ).schedule_cache_key()
        assert (
            base.schedule_cache_key()
            == create_workload("bt", nprocs=4, scale=0.05).schedule_cache_key()
        )

    def test_dynamic_rank_cached_as_dynamic(self):
        class HalfDynamic(_StaticPingWorkload):
            def program(self, ctx):
                if ctx.rank == 0:
                    yield ctx.comm.recv(source=1)
                else:
                    yield ctx.comm.compute(1e-6 * (1 + ctx.rng.integers(0, 2)))
                    yield ctx.comm.send(0, 64)

        workload = HalfDynamic(nprocs=2)
        assert compile_program(workload, make_ctx(workload, rank=1)) is None
        # Cached verdict on a second call, and independent of rank 0's.
        assert compile_program(workload, make_ctx(workload, rank=1)) is None
        assert compile_program(workload, make_ctx(workload, rank=0)) is not None


class TestCompiledProgramNoise:
    def test_next_noise_matches_prefetch_blocks(self):
        """Execution-time draws must replicate Workload.compute's prefetch."""
        lanes_rng = SeededRNG(7, "rank", 0)
        program = CompiledProgram(None, rng=lanes_rng, sigma=0.05, noise_block=128)
        drawn = [program.next_noise() for _ in range(300)]
        reference_rng = SeededRNG(7, "rank", 0)
        expected = []
        while len(expected) < 300:
            expected.extend(reference_rng.lognormal_block(0.05, 128))
        assert drawn == expected[:300]

    def test_zero_sigma_noise_is_unity_and_draws_nothing(self):
        rng = SeededRNG(7, "rank", 0)
        program = CompiledProgram(None, rng=rng, sigma=0.0, noise_block=128)
        assert [program.next_noise() for _ in range(5)] == [1.0] * 5
        # The underlying bit stream was never touched.
        assert rng.random() == SeededRNG(7, "rank", 0).random()
