"""Tests for stream extraction and summaries (repro.trace.streams)."""

import numpy as np
import pytest

from repro.trace.records import TraceRecord
from repro.trace.streams import (
    collective_count,
    p2p_count,
    sender_stream,
    size_stream,
    summarize_stream,
)


def record(sender=1, nbytes=100, kind="p2p", seq=0):
    return TraceRecord(
        receiver=0, sender=sender, nbytes=nbytes, tag=0, kind=kind, time=float(seq), seq=seq
    )


SAMPLE = [
    record(sender=1, nbytes=100, kind="p2p", seq=0),
    record(sender=2, nbytes=200, kind="p2p", seq=1),
    record(sender=1, nbytes=100, kind="collective", seq=2),
    record(sender=3, nbytes=300, kind="p2p", seq=3),
]


class TestStreamExtraction:
    def test_sender_stream(self):
        assert sender_stream(SAMPLE).tolist() == [1, 2, 1, 3]

    def test_size_stream(self):
        assert size_stream(SAMPLE).tolist() == [100, 200, 100, 300]

    def test_kind_filter(self):
        assert sender_stream(SAMPLE, kinds=["collective"]).tolist() == [1]
        assert size_stream(SAMPLE, kinds=["p2p"]).tolist() == [100, 200, 300]

    def test_empty_input(self):
        assert sender_stream([]).shape == (0,)
        assert sender_stream([]).dtype == np.int64

    def test_counts(self):
        assert p2p_count(SAMPLE) == 3
        assert collective_count(SAMPLE) == 1


class TestSummarizeStream:
    def test_basic_summary(self):
        summary = summarize_stream(SAMPLE)
        assert summary.total_messages == 4
        assert summary.p2p_messages == 3
        assert summary.collective_messages == 1
        assert summary.num_distinct_senders == 3
        assert summary.num_distinct_sizes == 3

    def test_frequent_values_cover_requested_fraction(self):
        records = [record(sender=1, seq=i) for i in range(98)] + [
            record(sender=2, seq=98),
            record(sender=3, seq=99),
        ]
        summary = summarize_stream(records, coverage=0.95)
        assert summary.frequent_senders == (1,)
        assert summary.num_frequent_senders == 1

    def test_full_coverage_includes_everything(self):
        summary = summarize_stream(SAMPLE, coverage=1.0)
        assert summary.num_frequent_senders == 3
        assert summary.num_frequent_sizes == 3

    def test_empty_stream(self):
        summary = summarize_stream([])
        assert summary.total_messages == 0
        assert summary.frequent_senders == ()

    def test_invalid_coverage(self):
        with pytest.raises(ValueError):
            summarize_stream(SAMPLE, coverage=0.0)
        with pytest.raises(ValueError):
            summarize_stream(SAMPLE, coverage=1.5)

    def test_frequent_most_common_first(self):
        records = (
            [record(sender=5, seq=i) for i in range(5)]
            + [record(sender=7, seq=i + 5) for i in range(3)]
            + [record(sender=9, seq=8)]
        )
        summary = summarize_stream(records, coverage=1.0)
        assert summary.frequent_senders[0] == 5
        assert summary.frequent_senders[1] == 7


def _columns_from(records):
    """Build a columnar store holding the same records."""
    from repro.trace.columns import TraceColumns

    columns = TraceColumns(receiver=0)
    for r in records:
        columns.append(r.sender, r.nbytes, r.tag, r.kind, r.time, r.seq)
    return columns


class TestColumnarFastPath:
    """The vectorised TraceColumns paths agree with the per-record paths."""

    def test_streams_match_record_path(self):
        columns = _columns_from(SAMPLE)
        assert sender_stream(columns).tolist() == sender_stream(SAMPLE).tolist()
        assert size_stream(columns).tolist() == size_stream(SAMPLE).tolist()
        for kinds in (["p2p"], ["collective"], ["p2p", "collective"], ["weird"]):
            assert sender_stream(columns, kinds=kinds).tolist() == sender_stream(
                SAMPLE, kinds=kinds
            ).tolist()
            assert size_stream(columns, kinds=kinds).tolist() == size_stream(
                SAMPLE, kinds=kinds
            ).tolist()

    def test_counts_match_record_path(self):
        columns = _columns_from(SAMPLE)
        assert p2p_count(columns) == p2p_count(SAMPLE) == 3
        assert collective_count(columns) == collective_count(SAMPLE) == 1

    def test_summary_matches_record_path(self):
        # A skewed stream so the frequent-value tie-breaking is exercised:
        # senders 4 and 6 have equal counts; first appearance must win.
        records = (
            [record(sender=2, nbytes=10, seq=i) for i in range(6)]
            + [record(sender=4, nbytes=20, seq=6)]
            + [record(sender=6, nbytes=30, kind="collective", seq=7)]
            + [record(sender=4, nbytes=20, seq=8)]
            + [record(sender=6, nbytes=10, seq=9)]
        )
        for coverage in (0.5, 0.75, 0.98, 1.0):
            fast = summarize_stream(_columns_from(records), coverage=coverage)
            slow = summarize_stream(records, coverage=coverage)
            assert fast == slow

    def test_empty_columns(self):
        from repro.trace.columns import TraceColumns

        columns = TraceColumns(receiver=0)
        assert sender_stream(columns).tolist() == []
        assert summarize_stream(columns).total_messages == 0
        assert summarize_stream(columns).frequent_senders == ()
