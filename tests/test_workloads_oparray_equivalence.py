"""Equivalence of the op-array fast lane and the generator protocol.

The contract of the compiled workload feed: which protocol a rank runs under
is an implementation detail.  For every registry workload, under every
flow-control policy, a compiled run must be **bit-identical** to a generator
run — same makespan, same per-rank finish times, same processed-event count,
same runtime statistics, and the same trace records at both levels — and
mixed compiled/dynamic registries must still merge deterministically under
the sharded experiment runner.
"""

from pathlib import Path

import pytest

from repro.analysis.experiments import ExperimentContext
from repro.mpi.constants import ANY_SOURCE
from repro.predictive import (
    PredictiveBufferPolicy,
    PredictiveCreditPolicy,
    PredictiveRendezvousPolicy,
)
from repro.runtime.protocol import StandardFlowControl
from repro.workloads.base import Workload
from repro.workloads.compile import clear_schedule_cache
from repro.workloads.registry import create_workload, workload_names
from repro.workloads.runner import run_workload

#: The committed sample trace (also the CLI quickstart's replay input).
SAMPLE_TRACE = str(Path(__file__).resolve().parent.parent / "examples" / "sample_trace.jsonl")

#: (workload, nprocs, extra kwargs) — the full registry at smoke scales.
REGISTRY_CELLS = [
    ("bt", 9, {"scale": 0.03}),
    ("cg", 8, {"scale": 0.1}),
    ("lu", 4, {"scale": 0.01}),
    ("is", 8, {"scale": 0.2}),
    ("sweep3d", 6, {"scale": 0.1}),
    ("periodic-pattern", 4, {"scale": 0.2}),
    ("ring-exchange", 4, {"scale": 0.2}),
    ("random-sender", 4, {"messages_per_rank": 10}),
    ("collective-storm", 4, {"scale": 0.2}),
    ("collective-mix", 4, {"scale": 0.2}),
    ("replay", 4, {"file": SAMPLE_TRACE}),
]

#: The four flow-control policies (fresh instance per run — they are stateful).
POLICY_FACTORIES = {
    "standard": StandardFlowControl,
    "buffer": PredictiveBufferPolicy,
    "credit": PredictiveCreditPolicy,
    "bypass": PredictiveRendezvousPolicy,
}


def fingerprint(result):
    """Everything a simulation exposes to the analysis layer, comparable."""
    traces = []
    for rank in range(result.nprocs):
        trace = result.trace_for(rank)
        traces.append((list(trace.logical), list(trace.physical)))
    return (
        result.makespan,
        result.rank_finish_times,
        result.events_processed,
        result.stats.summary(),
        traces,
    )


def run_cell(name, nprocs, kwargs, policy_name, compiled, seed=23):
    workload = create_workload(name, nprocs=nprocs, **kwargs)
    policy = POLICY_FACTORIES[policy_name]()
    return run_workload(workload, seed=seed, policy=policy, compiled=compiled)


class TestRegistryEquivalence:
    """Full registry x all four policies, compiled vs generator."""

    @pytest.mark.parametrize("policy_name", sorted(POLICY_FACTORIES))
    @pytest.mark.parametrize("name,nprocs,kwargs", REGISTRY_CELLS)
    def test_bit_identical_outputs(self, name, nprocs, kwargs, policy_name):
        generator_run = run_cell(name, nprocs, kwargs, policy_name, compiled=False)
        compiled_run = run_cell(name, nprocs, kwargs, policy_name, compiled=True)
        assert fingerprint(compiled_run) == fingerprint(generator_run)

    def test_registry_cells_cover_the_registry(self):
        assert sorted(name for name, _, _ in REGISTRY_CELLS) == workload_names()

    def test_cold_and_warm_schedule_cache_agree(self):
        clear_schedule_cache()
        cold = run_cell("bt", 9, {"scale": 0.03}, "standard", compiled=True)
        warm = run_cell("bt", 9, {"scale": 0.03}, "standard", compiled=True)
        assert fingerprint(cold) == fingerprint(warm)


class MixedModeWorkload(Workload):
    """Rank 0 compiles (static receiver); the senders stay dynamic.

    The senders size their compute phases from ``ctx.rng`` directly, so the
    compile replay rejects them and one simulation ends up driving compiled
    and generator ranks side by side.
    """

    name = "mixed-mode-test"

    def default_iterations(self):
        return 6

    def validate(self):
        if self.nprocs < 2:
            raise ValueError("MixedModeWorkload needs at least 2 ranks")

    def program(self, ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            for _ in range(self.iterations * (self.nprocs - 1)):
                yield comm.recv(source=ANY_SOURCE, tag=7)
        else:
            for _ in range(self.iterations):
                yield comm.compute(1e-6 * (1 + ctx.rng.integers(0, 3)))
                yield comm.send(0, 512, tag=7)


class TestMixedModeSimulation:
    def test_compiled_and_dynamic_ranks_mix_in_one_run(self):
        workload = MixedModeWorkload(nprocs=4)
        from repro.mpi.communicator import Communicator, RankContext
        from repro.util.rng import SeededRNG

        def ctx(rank):
            return RankContext(
                rank=rank,
                size=4,
                comm=Communicator(rank=rank, size=4),
                rng=SeededRNG(1, "rank", rank),
            )

        assert workload.compile_program(ctx(0)) is not None
        assert workload.compile_program(ctx(1)) is None

        generator_run = run_workload(MixedModeWorkload(nprocs=4), seed=31, compiled=False)
        mixed_run = run_workload(MixedModeWorkload(nprocs=4), seed=31, compiled=True)
        assert fingerprint(mixed_run) == fingerprint(generator_run)

    def test_opted_out_workload_runs_unchanged(self):
        """The reference dynamic workload takes the generator path untouched."""
        generator_run = run_workload(
            create_workload("random-sender", nprocs=4, messages_per_rank=8),
            seed=13,
            compiled=False,
        )
        auto_run = run_workload(
            create_workload("random-sender", nprocs=4, messages_per_rank=8),
            seed=13,
            compiled=True,
        )
        assert fingerprint(auto_run) == fingerprint(generator_run)


class TestShardedMixedRegistry:
    """Compiled + dynamic cells merging under run_all(jobs=N)."""

    SEED = 29
    SCALE = 0.02

    def _context_with_dynamic_cell(self):
        context = ExperimentContext(seed=self.SEED, scale=self.SCALE)
        # Warm a dynamic (generator-protocol) cell into the cache next to the
        # 19 compiled paper cells.
        context.run_named("random-sender", 4)
        return context

    def test_mixed_registry_merges_deterministically(self):
        sequential = self._context_with_dynamic_cell()
        sharded = self._context_with_dynamic_cell()
        seq_runs = sequential.run_all()
        par_runs = sharded.run_all(jobs=2)
        assert [run.label for run in seq_runs] == [run.label for run in par_runs]
        for seq_run, par_run in zip(seq_runs, par_runs):
            assert fingerprint(seq_run.result) == fingerprint(par_run.result)
        dynamic_seq = sequential.run_named("random-sender", 4)
        dynamic_par = sharded.run_named("random-sender", 4)
        assert fingerprint(dynamic_seq.result) == fingerprint(dynamic_par.result)
