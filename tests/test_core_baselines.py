"""Tests for the baseline predictors (repro.core.baselines)."""

import pytest

from repro.core.baselines import (
    CyclePredictor,
    LastValuePredictor,
    MarkovPredictor,
    MostFrequentPredictor,
    StridePredictor,
)


class TestLastValue:
    def test_no_observation(self):
        assert LastValuePredictor().predict(3) == [None, None, None]

    def test_repeats_last(self):
        predictor = LastValuePredictor()
        predictor.observe(5)
        predictor.observe(7)
        assert predictor.predict(3) == [7, 7, 7]

    def test_reset(self):
        predictor = LastValuePredictor()
        predictor.observe(5)
        predictor.reset()
        assert predictor.predict(1) == [None]

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            LastValuePredictor().predict(0)


class TestMostFrequent:
    def test_majority_value(self):
        predictor = MostFrequentPredictor(window_size=10)
        predictor.observe_many([1, 1, 1, 2, 3])
        assert predictor.predict(2) == [1, 1]

    def test_sliding_window_evicts(self):
        predictor = MostFrequentPredictor(window_size=3)
        predictor.observe_many([1, 1, 1, 2, 2, 2])
        assert predictor.predict(1) == [2]

    def test_tie_broken_towards_recent(self):
        predictor = MostFrequentPredictor(window_size=10)
        predictor.observe_many([1, 2])
        assert predictor.predict(1) == [2]

    def test_empty(self):
        assert MostFrequentPredictor().predict(1) == [None]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            MostFrequentPredictor(window_size=0)

    def test_reset(self):
        predictor = MostFrequentPredictor()
        predictor.observe(1)
        predictor.reset()
        assert predictor.predict(1) == [None]


class TestCycle:
    def test_learns_successor(self):
        predictor = CyclePredictor()
        predictor.observe_many([1, 2, 3, 1])
        assert predictor.predict(1) == [2]

    def test_multi_step_walks_cycle(self):
        predictor = CyclePredictor()
        predictor.observe_many([1, 2, 3, 1, 2, 3, 1])
        assert predictor.predict(5) == [2, 3, 1, 2, 3]

    def test_unknown_value_gives_none(self):
        predictor = CyclePredictor()
        predictor.observe_many([1, 2])
        assert predictor.predict(3) == [None, None, None]

    def test_reset(self):
        predictor = CyclePredictor()
        predictor.observe_many([1, 2, 1])
        predictor.reset()
        assert predictor.predict(1) == [None]


class TestMarkov:
    def test_learns_order2_context(self):
        predictor = MarkovPredictor(order=2)
        predictor.observe_many([1, 2, 3] * 5)
        # context (2, 3) -> 1
        assert predictor.predict(1) == [1]

    def test_multi_step_rollout(self):
        predictor = MarkovPredictor(order=2)
        predictor.observe_many([1, 2, 3] * 5)
        assert predictor.predict(4) == [1, 2, 3, 1]

    def test_insufficient_context(self):
        predictor = MarkovPredictor(order=3)
        predictor.observe_many([1, 2])
        assert predictor.predict(2) == [None, None]

    def test_unseen_context(self):
        predictor = MarkovPredictor(order=1)
        predictor.observe_many([1, 2])
        # last value 2 has no recorded successor yet
        assert predictor.predict(1) == [None]

    def test_most_likely_continuation_wins(self):
        predictor = MarkovPredictor(order=1)
        predictor.observe_many([1, 2, 1, 2, 1, 3, 1])
        assert predictor.predict(1) == [2]

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            MarkovPredictor(order=0)

    def test_reset(self):
        predictor = MarkovPredictor(order=1)
        predictor.observe_many([1, 2, 1])
        predictor.reset()
        assert predictor.predict(1) == [None]


class TestStride:
    def test_arithmetic_progression(self):
        predictor = StridePredictor()
        predictor.observe_many([10, 20, 30])
        assert predictor.predict(3) == [40, 50, 60]

    def test_constant_stream(self):
        predictor = StridePredictor()
        predictor.observe_many([5, 5, 5])
        assert predictor.predict(2) == [5, 5]

    def test_single_observation_predicts_same(self):
        predictor = StridePredictor()
        predictor.observe(9)
        assert predictor.predict(2) == [9, 9]

    def test_empty(self):
        assert StridePredictor().predict(1) == [None]

    def test_reset(self):
        predictor = StridePredictor()
        predictor.observe_many([1, 2])
        predictor.reset()
        assert predictor.predict(1) == [None]


class TestNames:
    def test_all_named_distinctly(self):
        names = {
            LastValuePredictor().name,
            MostFrequentPredictor().name,
            CyclePredictor().name,
            MarkovPredictor().name,
            StridePredictor().name,
        }
        assert len(names) == 5
