"""Tests for repro.core.circular_buffer."""

import numpy as np
import pytest

from repro.core.circular_buffer import CircularBuffer


class TestCircularBuffer:
    def test_empty(self):
        buffer = CircularBuffer(4)
        assert len(buffer) == 0
        assert not buffer.full
        assert buffer.to_array().tolist() == []

    def test_append_below_capacity(self):
        buffer = CircularBuffer(4)
        buffer.extend([1, 2, 3])
        assert len(buffer) == 3
        assert buffer.to_array().tolist() == [1, 2, 3]

    def test_wraparound_keeps_most_recent(self):
        buffer = CircularBuffer(3)
        buffer.extend([1, 2, 3, 4, 5])
        assert buffer.full
        assert buffer.to_array().tolist() == [3, 4, 5]

    def test_total_appended_counts_everything(self):
        buffer = CircularBuffer(2)
        buffer.extend(range(10))
        assert buffer.total_appended == 10
        assert len(buffer) == 2

    def test_getitem_chronological(self):
        buffer = CircularBuffer(3)
        buffer.extend([10, 20, 30, 40])
        assert buffer[0] == 20
        assert buffer[1] == 30
        assert buffer[2] == 40
        assert buffer[-1] == 40
        assert buffer[-3] == 20

    def test_getitem_out_of_range(self):
        buffer = CircularBuffer(3)
        buffer.append(1)
        with pytest.raises(IndexError):
            buffer[1]
        with pytest.raises(IndexError):
            buffer[-2]

    def test_last(self):
        buffer = CircularBuffer(5)
        buffer.extend([1, 2, 3, 4, 5, 6])
        assert buffer.last(3).tolist() == [4, 5, 6]
        assert buffer.last(0).tolist() == []
        assert buffer.last(100).tolist() == [2, 3, 4, 5, 6]

    def test_last_negative(self):
        with pytest.raises(ValueError):
            CircularBuffer(3).last(-1)

    def test_clear(self):
        buffer = CircularBuffer(3)
        buffer.extend([1, 2, 3])
        buffer.clear()
        assert len(buffer) == 0
        buffer.append(9)
        assert buffer.to_array().tolist() == [9]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CircularBuffer(0)

    def test_dtype_is_int64(self):
        buffer = CircularBuffer(2)
        buffer.append(2**40)
        assert buffer.to_array().dtype == np.int64
        assert buffer[0] == 2**40

    def test_matches_list_reference(self):
        """The ring must behave exactly like keeping the last N of a list."""
        capacity = 7
        buffer = CircularBuffer(capacity)
        reference: list[int] = []
        for i in range(50):
            value = (i * 37) % 11
            buffer.append(value)
            reference.append(value)
            assert buffer.to_array().tolist() == reference[-capacity:]


class TestViews:
    def test_view_last_is_zero_copy(self):
        buffer = CircularBuffer(4)
        buffer.extend([1, 2, 3, 4, 5, 6])  # wrapped
        view = buffer.view_last(3)
        assert view.tolist() == [4, 5, 6]
        assert np.shares_memory(view, buffer._data)

    def test_view_last_clamps_to_length(self):
        buffer = CircularBuffer(5)
        buffer.extend([1, 2])
        assert buffer.view_last(10).tolist() == [1, 2]
        assert buffer.view_last(0).tolist() == []

    def test_view_last_negative(self):
        with pytest.raises(ValueError):
            CircularBuffer(3).view_last(-1)

    def test_view_matches_to_array_at_every_step(self):
        buffer = CircularBuffer(5)
        for i in range(23):
            buffer.append(i)
            assert buffer.view().tolist() == buffer.to_array().tolist()

    def test_last_returns_independent_copy(self):
        buffer = CircularBuffer(4)
        buffer.extend([1, 2, 3, 4])
        tail = buffer.last(2)
        tail[0] = 99
        assert buffer.to_array().tolist() == [1, 2, 3, 4]


class TestVectorisedExtend:
    @pytest.mark.parametrize("factory", [list, tuple, np.array, iter])
    def test_extend_input_types(self, factory):
        buffer = CircularBuffer(6)
        buffer.extend(factory([1, 2, 3]))
        assert buffer.to_array().tolist() == [1, 2, 3]

    def test_extend_longer_than_capacity_keeps_tail(self):
        buffer = CircularBuffer(3)
        buffer.extend(np.arange(10))
        assert buffer.to_array().tolist() == [7, 8, 9]
        assert buffer.total_appended == 10
        assert buffer.full

    def test_extend_matches_appends_across_wraps(self):
        rng = np.random.default_rng(5)
        for capacity in (1, 2, 5, 8):
            for sizes in ([3, 4, 2], [8, 1], [1] * 9, [0, 5, 0, 7]):
                vectorised = CircularBuffer(capacity)
                scalar = CircularBuffer(capacity)
                for size in sizes:
                    chunk = rng.integers(0, 100, size=size)
                    vectorised.extend(chunk)
                    for value in chunk:
                        scalar.append(int(value))
                    assert vectorised.to_array().tolist() == scalar.to_array().tolist()
                    assert vectorised.total_appended == scalar.total_appended
                    assert len(vectorised) == len(scalar)

    def test_extend_after_clear(self):
        buffer = CircularBuffer(4)
        buffer.extend([1, 2, 3, 4, 5])
        buffer.clear()
        buffer.extend([7, 8])
        assert buffer.to_array().tolist() == [7, 8]
        assert buffer.total_appended == 2
