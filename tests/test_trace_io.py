"""Tests for trace persistence (repro.trace.io)."""

import json

import pytest

from repro.trace.io import (
    load_process_trace,
    load_traces,
    save_process_trace,
    save_traces,
)
from repro.trace.streams import sender_stream
from repro.workloads.registry import create_workload
from repro.workloads.runner import run_workload


@pytest.fixture(scope="module")
def small_run():
    workload = create_workload("ring-exchange", nprocs=4, iterations=8)
    result = run_workload(workload, seed=3)
    return workload, result


class TestSaveLoadRoundtrip:
    def test_roundtrip_preserves_all_records(self, small_run, tmp_path):
        workload, result = small_run
        path = tmp_path / "traces.jsonl"
        written = save_traces(result.tracer, path, metadata={"workload": workload.name})
        traces, metadata = load_traces(path)

        assert metadata == {"workload": workload.name}
        assert len(traces) == 4
        assert written == sum(len(t.logical) + len(t.physical) for t in traces)
        for rank in range(4):
            original = result.trace_for(rank)
            restored = traces[rank]
            assert [(r.sender, r.nbytes, r.seq) for r in original.logical] == [
                (r.sender, r.nbytes, r.seq) for r in restored.logical
            ]
            assert [(r.sender, r.nbytes, r.time) for r in original.physical] == [
                (r.sender, r.nbytes, r.time) for r in restored.physical
            ]

    def test_streams_equal_after_roundtrip(self, small_run, tmp_path):
        _, result = small_run
        path = tmp_path / "traces.jsonl"
        save_traces(result.tracer, path)
        traces, _ = load_traces(path)
        assert sender_stream(traces[0].logical).tolist() == sender_stream(
            result.trace_for(0).logical
        ).tolist()

    def test_default_metadata_is_empty_dict(self, small_run, tmp_path):
        _, result = small_run
        path = tmp_path / "t.jsonl"
        save_traces(result.tracer, path)
        _, metadata = load_traces(path)
        assert metadata == {}

    def test_columnar_format_is_one_object_per_rank(self, small_run, tmp_path):
        _, result = small_run
        path = tmp_path / "t.jsonl"
        save_traces(result.tracer, path)
        lines = path.read_text().strip().splitlines()
        header = json.loads(lines[0])
        assert header["version"] == 2
        # header + one columnar object per rank, regardless of record count
        assert len(lines) == 1 + result.nprocs
        body = json.loads(lines[1])
        assert set(body) == {"rank", "logical", "physical"}
        assert set(body["logical"]) == {"sender", "nbytes", "tag", "kind_code", "time", "seq"}

    def test_full_record_equality_after_roundtrip(self, small_run, tmp_path):
        _, result = small_run
        path = tmp_path / "t.jsonl"
        save_traces(result.tracer, path)
        traces, _ = load_traces(path)
        for rank in range(result.nprocs):
            original = result.trace_for(rank)
            assert list(original.logical) == list(traces[rank].logical)
            assert list(original.physical) == list(traces[rank].physical)


class TestLegacyFormatCompatibility:
    """Version-1 (one JSON object per record) files stay loadable."""

    def _write_v1(self, result, path):
        header = {
            "format": "repro-trace",
            "version": 1,
            "nprocs": result.nprocs,
            "metadata": {"origin": "legacy"},
        }
        with path.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            for rank in range(result.nprocs):
                save_process_trace(result.trace_for(rank), handle)

    def test_v1_file_loads_identically(self, small_run, tmp_path):
        _, result = small_run
        v1 = tmp_path / "v1.jsonl"
        v2 = tmp_path / "v2.jsonl"
        self._write_v1(result, v1)
        save_traces(result.tracer, v2)
        legacy_traces, legacy_meta = load_traces(v1)
        columnar_traces, _ = load_traces(v2)
        assert legacy_meta == {"origin": "legacy"}
        for old, new in zip(legacy_traces, columnar_traces):
            assert list(old.logical) == list(new.logical)
            assert list(old.physical) == list(new.physical)


class TestFormatValidation:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_traces(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(ValueError, match="not a repro trace file"):
            load_traces(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format": "repro-trace", "version": 99, "nprocs": 1}) + "\n")
        with pytest.raises(ValueError, match="version"):
            load_traces(path)

    def test_out_of_range_receiver_rejected(self, tmp_path):
        header = {"format": "repro-trace", "version": 1, "nprocs": 1, "metadata": {}}
        record = {
            "receiver": 5,
            "sender": 0,
            "nbytes": 1,
            "tag": 0,
            "kind": "p2p",
            "time": 0.0,
            "seq": 0,
            "level": "logical",
        }
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(header) + "\n" + json.dumps(record) + "\n")
        with pytest.raises(ValueError, match="out of range"):
            load_traces(path)


class TestLoadProcessTrace:
    def test_filters_by_rank_and_sorts(self):
        lines = [
            json.dumps(
                {
                    "receiver": 0,
                    "sender": 2,
                    "nbytes": 10,
                    "tag": 0,
                    "kind": "p2p",
                    "time": 2.0,
                    "seq": 1,
                    "level": "logical",
                }
            ),
            json.dumps(
                {
                    "receiver": 0,
                    "sender": 1,
                    "nbytes": 10,
                    "tag": 0,
                    "kind": "p2p",
                    "time": 1.0,
                    "seq": 0,
                    "level": "logical",
                }
            ),
            json.dumps(
                {
                    "receiver": 1,
                    "sender": 0,
                    "nbytes": 10,
                    "tag": 0,
                    "kind": "p2p",
                    "time": 1.0,
                    "seq": 0,
                    "level": "physical",
                }
            ),
            "",
        ]
        trace = load_process_trace(0, lines)
        assert [r.sender for r in trace.logical] == [1, 2]
        assert trace.physical == []

    def test_unknown_level_rejected(self):
        line = json.dumps(
            {
                "receiver": 0,
                "sender": 1,
                "nbytes": 10,
                "tag": 0,
                "kind": "p2p",
                "time": 1.0,
                "seq": 0,
                "level": "weird",
            }
        )
        with pytest.raises(ValueError, match="unknown trace level"):
            load_process_trace(0, [line])
