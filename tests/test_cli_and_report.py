"""Tests for the CLI (repro.cli) and the report builder (repro.analysis.report)."""

import json

import pytest

from repro.analysis.bench import carry_baseline
from repro.analysis.experiments import ExperimentContext
from repro.analysis.figures_accuracy import figure3
from repro.analysis.report import (
    ReproductionReport,
    accuracy_figure_table,
    build_report,
    dict_rows_table,
)
from repro.cli import build_parser, main


class TestReportHelpers:
    def test_dict_rows_table_formats_floats(self):
        text = dict_rows_table("t", [{"a": 1.23456, "b": "x"}])
        assert "1.235" in text and "x" in text

    def test_dict_rows_table_empty(self):
        assert "(no data)" in dict_rows_table("t", [])

    def test_accuracy_figure_table(self):
        context = ExperimentContext(seed=5, scale=0.03)
        configs = [c for c in context.configurations() if c.label == "bt.4"]
        figure = figure3(context, configurations=configs)
        text = accuracy_figure_table(figure, "note")
        assert "bt.4" in text and "sender +1" in text

    def test_report_object_accessors(self):
        report = ReproductionReport(seed=1, scale=0.1)
        report.add("Alpha", "body-a")
        report.add("Beta", "body-b")
        assert report.section("Alpha").body == "body-a"
        with pytest.raises(KeyError):
            report.section("Gamma")
        rendered = report.render()
        assert "## Alpha" in rendered and "## Beta" in rendered
        assert "seed=1" in rendered


class TestBuildReport:
    def test_figures_only_report(self):
        # Small scale, extensions/ablations skipped: fast structural check.
        context = ExperimentContext(seed=5, scale=0.03)
        report = build_report(
            context=context, include_extensions=False, include_ablations=False
        )
        titles = [section.title for section in report.sections]
        assert titles == ["Table 1", "Figure 1", "Figure 2", "Figure 3", "Figure 4"]
        assert "bt.9" in report.section("Table 1").body
        assert report.elapsed_seconds > 0.0


class TestCLIParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_arguments(self):
        args = build_parser().parse_args(["run", "bt", "--nprocs", "4", "--scale", "0.1"])
        assert args.command == "run"
        assert args.workload == "bt" and args.nprocs == 4

    def test_unknown_workload_rejected(self, capsys):
        # Free-form shorthands ("replay:file=...") mean the workload argument
        # can no longer be parse-time choices; rejection moved to _cmd_run.
        assert main(["run", "not-a-workload", "--nprocs", "4"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_report_flags(self):
        args = build_parser().parse_args(["report", "--skip-extensions", "--skip-ablations"])
        assert args.skip_extensions and args.skip_ablations
        assert args.jobs is None

    def test_report_jobs_flag(self):
        args = build_parser().parse_args(["report", "--jobs", "4"])
        assert args.jobs == 4

    def test_run_policy_flag(self):
        args = build_parser().parse_args(
            ["run", "bt", "--nprocs", "4", "--policy", "credit:horizon=3"]
        )
        assert args.policy == "credit:horizon=3"

    def test_sweep_arguments(self):
        args = build_parser().parse_args(
            ["sweep", "spec.toml", "--jobs", "2", "--out", "outdir", "--save-traces"]
        )
        assert args.command == "sweep"
        assert args.spec == "spec.toml"
        assert args.jobs == 2 and args.out == "outdir" and args.save_traces

    def test_list_json_flag(self):
        assert build_parser().parse_args(["list", "--json"]).json
        assert not build_parser().parse_args(["list"]).json


class TestCLICommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bt" in out and "sw.32" in out
        assert "serve" in out and "repro-serve-snapshot" in out

    def test_run_and_save_traces(self, tmp_path, capsys):
        trace_file = tmp_path / "bt4.jsonl"
        code = main(
            [
                "run",
                "bt",
                "--nprocs",
                "4",
                "--scale",
                "0.05",
                "--seed",
                "7",
                "--save-traces",
                str(trace_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "messages_sent" in out
        assert trace_file.exists()

        # And predict from the saved traces.
        code = main(["predict", "--traces", str(trace_file), "--rank", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "prediction accuracy" in out
        assert "+5" in out

    def test_predict_by_simulation(self, capsys):
        code = main(
            ["predict", "--workload", "ring-exchange", "--nprocs", "4", "--scale", "0.2"]
        )
        assert code == 0
        assert "sender" in capsys.readouterr().out

    def test_predict_without_source_errors(self, capsys):
        assert main(["predict"]) == 2
        assert "requires" in capsys.readouterr().err

    def test_predict_rank_out_of_range(self, tmp_path, capsys):
        trace_file = tmp_path / "t.jsonl"
        main(
            ["run", "ring-exchange", "--nprocs", "4", "--scale", "0.05", "--save-traces", str(trace_file)]
        )
        capsys.readouterr()
        assert main(["predict", "--traces", str(trace_file), "--rank", "9"]) == 2

    def test_table1_small_scale(self, capsys):
        assert main(["table1", "--scale", "0.02", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "bt.25" in out and "paper" in out

    def test_run_with_jitter_override(self, capsys):
        code = main(
            ["run", "ring-exchange", "--nprocs", "4", "--scale", "0.05", "--jitter", "0.0"]
        )
        assert code == 0

    def test_run_with_policy_shorthand(self, capsys):
        code = main(
            [
                "run",
                "bt",
                "--nprocs", "4",
                "--scale", "0.05",
                "--policy", "credit:horizon=3",
            ]
        )
        assert code == 0
        assert "messages_sent" in capsys.readouterr().out

    def test_list_json_registries(self, capsys):
        assert main(["list", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert "bt" in listing["workloads"]
        assert len(listing["paper_configurations"]) == 19
        assert listing["paper_configurations"][0]["label"]
        policy_names = {entry["name"] for entry in listing["policies"]}
        assert "standard" in policy_names and "predictive-credits" in policy_names
        assert any(
            "credit" in entry["aliases"]
            for entry in listing["policies"]
            if entry["name"] == "predictive-credits"
        )
        assert {entry["name"] for entry in listing["network_presets"]} >= {
            "default",
            "noiseless",
        }
        assert any(entry["name"] == "periodicity" for entry in listing["predictors"])
        serve = listing["serve"]
        assert serve["transports"] == ["tcp", "stdin"]
        assert "observe" in serve["ops"] and "snapshot" in serve["ops"]
        assert serve["snapshot_format"] == {"name": "repro-serve-snapshot", "version": 1}
        assert serve["default_predictor"] == "periodicity"
        assert serve["routing"] == "crc32(key) % shards"


class TestCLIPredictTracesRoundTrip:
    """CLI `predict --traces` on a file from `run --save-traces` (the v2
    columnar round trip through the CLI path) must reproduce the on-the-fly
    simulation accuracies exactly."""

    def test_v2_round_trip_matches_simulation(self, tmp_path, capsys):
        trace_file = tmp_path / "bt4.jsonl"
        common = ["--nprocs", "4", "--scale", "0.05", "--seed", "7"]
        assert main(["run", "bt", *common, "--save-traces", str(trace_file)]) == 0
        capsys.readouterr()

        # The CLI writes the current (v2, columnar) format.
        header = json.loads(trace_file.read_text(encoding="utf-8").splitlines()[0])
        assert header["format"] == "repro-trace" and header["version"] == 2
        assert header["metadata"]["workload"] == "bt"
        assert header["metadata"]["seed"] == 7

        assert main(["predict", "--traces", str(trace_file), "--rank", "3"]) == 0
        from_file = capsys.readouterr().out
        assert main(["predict", "--workload", "bt", *common, "--rank", "3"]) == 0
        from_simulation = capsys.readouterr().out
        # Same accuracy table rows (titles differ: file label vs workload label).
        assert from_file.splitlines()[2:] == from_simulation.splitlines()[2:]
        assert "+5" in from_file


class TestCLISweep:
    def test_sweep_missing_spec_errors(self, tmp_path, capsys):
        assert main(["sweep", str(tmp_path / "nope.toml")]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_sweep_malformed_spec_errors_cleanly(self, tmp_path, capsys):
        # Coercion raises TypeError (workload = 9) — still the friendly path.
        bad = tmp_path / "bad.toml"
        bad.write_text("[base]\nworkload = 9\n", encoding="utf-8")
        assert main(["sweep", str(bad)]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_sweep_runs_and_writes_summary(self, tmp_path, capsys):
        spec = tmp_path / "sweep.toml"
        spec.write_text(
            "[base]\n"
            'workload = "bt.4:scale=0.02"\n'
            "seed = 3\n"
            "[grid]\n"
            '"network.overrides.jitter_sigma" = [0.0, 0.2]\n',
            encoding="utf-8",
        )
        out_dir = tmp_path / "out"
        assert main(["sweep", str(spec), "--out", str(out_dir), "--save-traces"]) == 0
        out = capsys.readouterr().out
        assert "bt.4" in out and "makespan" in out
        summary = json.loads((out_dir / "summary.json").read_text(encoding="utf-8"))
        assert summary["format"] == "repro-sweep-summary"
        assert len(summary["cells"]) == 2
        assert summary["cells"][0]["spec"]["network"]["overrides"]["jitter_sigma"] == 0.0
        trace_files = sorted(p.name for p in out_dir.glob("*.traces.jsonl"))
        assert trace_files == [
            "cell-00-bt.4.traces.jsonl",
            "cell-01-bt.4.traces.jsonl",
        ]

    def test_sweep_jobs_summary_byte_identical(self, tmp_path, capsys):
        spec = tmp_path / "sweep.toml"
        spec.write_text(
            "[base]\n"
            'workload = "bt.4:scale=0.02"\n'
            "seed = 3\n"
            "[grid]\n"
            '"network.overrides.jitter_sigma" = [0.0, 0.2]\n'
            "[[cells]]\n"
            'workload = "cg:nprocs=4,scale=0.02"\n',
            encoding="utf-8",
        )
        seq_dir, par_dir = tmp_path / "seq", tmp_path / "par"
        assert main(["sweep", str(spec), "--out", str(seq_dir)]) == 0
        assert main(["sweep", str(spec), "--jobs", "2", "--out", str(par_dir)]) == 0
        capsys.readouterr()
        assert (seq_dir / "summary.json").read_bytes() == (
            par_dir / "summary.json"
        ).read_bytes()


class TestBuildReportSharded:
    def test_report_with_jobs_matches_sequential(self):
        # The sharded prewarm must be invisible to the report content
        # (timestamped footer aside, which render() puts outside sections).
        sequential = build_report(
            seed=6, scale=0.02, include_extensions=False, include_ablations=False
        )
        sharded = build_report(
            seed=6,
            scale=0.02,
            include_extensions=False,
            include_ablations=False,
            jobs=2,
        )
        for seq_section, par_section in zip(sequential.sections, sharded.sections):
            assert seq_section.title == par_section.title
            assert seq_section.body == par_section.body


class TestBenchBaseline:
    def test_default_output_per_keyword(self):
        from repro.analysis.bench import default_output_for

        assert default_output_for("dpd or predictor") == "BENCH_dpd.json"
        assert default_output_for("sim") == "BENCH_sim.json"
        assert default_output_for("trace") == "BENCH_trace.json"
        assert default_output_for("bench_serve and not 1000000") == "BENCH_serve.json"

    def test_repo_artefacts_record_their_baselines(self):
        # Regeneration must never lose the before/after comparison: the
        # checked-in artefacts each carry a recorded baseline section that
        # carry_baseline() propagates forward.
        import json
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[1]
        for name in ("BENCH_dpd.json", "BENCH_sim.json", "BENCH_trace.json", "BENCH_serve.json"):
            artefact = root / name
            if not artefact.is_file():  # pragma: no cover - fresh checkout
                continue
            data = json.loads(artefact.read_text(encoding="utf-8"))
            assert "baseline" in data, f"{name} lost its baseline section"
            assert data["baseline"]["benchmarks"], name

    def test_carry_baseline_copies_from_previous(self):
        summary = {"benchmarks": {"b": {"mean_s": 1.0}}}
        previous = {"baseline": {"label": "pre-refactor", "mean_s": 2.0}}
        assert carry_baseline(summary, previous)["baseline"]["label"] == "pre-refactor"

    def test_carry_baseline_keeps_existing(self):
        summary = {"baseline": {"label": "ours"}}
        carry_baseline(summary, {"baseline": {"label": "theirs"}})
        assert summary["baseline"]["label"] == "ours"

    def test_carry_baseline_no_previous_baseline(self):
        summary = {"benchmarks": {}}
        assert "baseline" not in carry_baseline(summary, {})
