"""Tests for the workload registry and base class."""

import pytest

from repro.workloads.base import Workload
from repro.workloads.registry import (
    DEFAULT_SCALES,
    WORKLOAD_CLASSES,
    create_workload,
    paper_configurations,
    workload_names,
)


class TestRegistry:
    def test_all_paper_apps_registered(self):
        names = workload_names()
        for name in ("bt", "cg", "lu", "is", "sweep3d"):
            assert name in names

    def test_synthetic_workloads_registered(self):
        assert "periodic-pattern" in workload_names()
        assert "ring-exchange" in workload_names()

    def test_create_workload(self):
        workload = create_workload("bt", nprocs=4, scale=0.1)
        assert workload.name == "bt"
        assert workload.nprocs == 4

    def test_create_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            create_workload("nonexistent", nprocs=4)

    def test_classes_match_names(self):
        for name, cls in WORKLOAD_CLASSES.items():
            assert cls.name == name


class TestPaperConfigurations:
    def test_nineteen_configurations(self):
        assert len(paper_configurations()) == 19

    def test_labels(self):
        labels = [c.label for c in paper_configurations()]
        assert "bt.9" in labels
        assert "sw.32" in labels
        assert "is.16" in labels

    def test_default_scales_applied(self):
        for config in paper_configurations():
            assert config.scale == DEFAULT_SCALES[config.workload]

    def test_scale_override(self):
        for config in paper_configurations(scale=0.1):
            assert config.scale == 0.1

    def test_process_counts_match_paper(self):
        by_app = {}
        for config in paper_configurations():
            by_app.setdefault(config.workload, []).append(config.nprocs)
        assert by_app["bt"] == [4, 9, 16, 25]
        assert by_app["cg"] == [4, 8, 16, 32]
        assert by_app["lu"] == [4, 8, 16, 32]
        assert by_app["is"] == [4, 8, 16, 32]
        assert by_app["sweep3d"] == [6, 16, 32]


class TestWorkloadBase:
    def test_iterations_scale(self):
        full = create_workload("bt", nprocs=4, scale=1.0)
        half = create_workload("bt", nprocs=4, scale=0.5)
        assert half.iterations == round(full.iterations * 0.5)

    def test_explicit_iterations_override_scale(self):
        workload = create_workload("bt", nprocs=4, scale=0.5, iterations=7)
        assert workload.iterations == 7

    def test_minimum_one_iteration(self):
        workload = create_workload("is", nprocs=4, scale=1e-6)
        assert workload.iterations >= 1

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            create_workload("bt", nprocs=0)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            create_workload("bt", nprocs=4, scale=0.0)

    def test_describe(self):
        workload = create_workload("bt", nprocs=9, scale=0.1)
        description = workload.describe()
        assert description.name == "bt"
        assert description.nprocs == 9
        assert description.representative_rank == 3
        assert "grid" in description.parameters

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Workload(nprocs=2)


class TestWorkloadValidation:
    def test_bt_requires_square(self):
        with pytest.raises(ValueError):
            create_workload("bt", nprocs=6)

    def test_cg_requires_power_of_two(self):
        with pytest.raises(ValueError):
            create_workload("cg", nprocs=6)

    def test_sweep3d_accepts_six(self):
        assert create_workload("sweep3d", nprocs=6).nprocs == 6

    def test_synthetic_validations(self):
        with pytest.raises(ValueError):
            create_workload("periodic-pattern", nprocs=1)
        with pytest.raises(ValueError):
            create_workload("random-sender", nprocs=2)
        with pytest.raises(ValueError):
            create_workload("ring-exchange", nprocs=1)
