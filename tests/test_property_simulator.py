"""Property-based tests of the simulation substrate.

The invariants checked here hold for *any* legal communication pattern:

* conservation: every sent message is received exactly once, at both trace
  levels, at the correct destination;
* determinism: the same seed reproduces the same simulation, a different seed
  perturbs timing but never the logical structure;
* ordering: per-(source, destination, tag) FIFO delivery;
* the noiseless network makes the physical stream identical to the logical
  one.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.network import NetworkConfig


def exchange_program(schedule, nbytes_choices):
    """Build an SPMD program from a schedule of (sender, receiver, size_idx)."""

    def program(ctx):
        comm = ctx.comm
        for index, (sender, receiver, size_index) in enumerate(schedule):
            nbytes = nbytes_choices[size_index % len(nbytes_choices)]
            tag = index % 8
            if ctx.rank == sender:
                yield comm.send(receiver, nbytes, tag=tag)
            elif ctx.rank == receiver:
                yield comm.recv(source=sender, tag=tag)
        # A final barrier keeps every rank alive until all traffic has drained.
        yield from comm.barrier()

    return program


def schedules(nprocs, max_messages=30):
    pair = st.tuples(
        st.integers(0, nprocs - 1), st.integers(0, nprocs - 1), st.integers(0, 3)
    ).filter(lambda t: t[0] != t[1])
    return st.lists(pair, min_size=1, max_size=max_messages)


NPROCS = 4
SIZES = [64, 2048, 20_000, 100_000]


def run_schedule(schedule, seed=3, network=None):
    simulator = Simulator(
        nprocs=NPROCS,
        seed=seed,
        network=network if network is not None else NetworkConfig(seed=seed),
    )
    return simulator.run([exchange_program(schedule, SIZES)])


class TestConservationProperties:
    @given(schedule=schedules(NPROCS))
    @settings(max_examples=30, deadline=None)
    def test_every_message_received_once_at_both_levels(self, schedule):
        result = run_schedule(schedule)
        expected = Counter(
            (sender, receiver, SIZES[size_index % len(SIZES)])
            for sender, receiver, size_index in schedule
        )
        logical = Counter()
        physical = Counter()
        for rank in range(NPROCS):
            trace = result.trace_for(rank)
            for record in trace.logical:
                if record.kind == "p2p":
                    logical[(record.sender, rank, record.nbytes)] += 1
            for record in trace.physical:
                if record.kind == "p2p":
                    physical[(record.sender, rank, record.nbytes)] += 1
        assert logical == expected
        assert physical == expected

    @given(schedule=schedules(NPROCS))
    @settings(max_examples=20, deadline=None)
    def test_stats_agree_with_schedule(self, schedule):
        result = run_schedule(schedule)
        assert result.stats.p2p_messages == len(schedule)
        assert result.stats.bytes_sent >= sum(
            SIZES[i % len(SIZES)] for _, _, i in schedule
        )

    @given(schedule=schedules(NPROCS))
    @settings(max_examples=20, deadline=None)
    def test_makespan_positive_and_finite(self, schedule):
        result = run_schedule(schedule)
        assert 0.0 < result.makespan < 60.0


class TestDeterminismProperties:
    @given(schedule=schedules(NPROCS), seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_same_seed_reproduces_everything(self, schedule, seed):
        first = run_schedule(schedule, seed=seed)
        second = run_schedule(schedule, seed=seed)
        assert first.makespan == second.makespan
        for rank in range(NPROCS):
            a = [(r.sender, r.nbytes, r.time) for r in first.trace_for(rank).physical]
            b = [(r.sender, r.nbytes, r.time) for r in second.trace_for(rank).physical]
            assert a == b

    @given(schedule=schedules(NPROCS))
    @settings(max_examples=15, deadline=None)
    def test_logical_structure_independent_of_seed(self, schedule):
        first = run_schedule(schedule, seed=1)
        second = run_schedule(schedule, seed=2)
        for rank in range(NPROCS):
            a = [(r.sender, r.nbytes) for r in first.trace_for(rank).logical]
            b = [(r.sender, r.nbytes) for r in second.trace_for(rank).logical]
            assert a == b


class TestOrderingProperties:
    @given(schedule=schedules(NPROCS, max_messages=40))
    @settings(max_examples=20, deadline=None)
    def test_fifo_per_channel_and_tag(self, schedule):
        result = run_schedule(schedule, network=NetworkConfig(jitter_sigma=1.0, seed=9))
        # For each (sender, receiver, tag), sizes must be received in the
        # order they were sent.
        sent: dict[tuple[int, int, int], list[int]] = {}
        for index, (sender, receiver, size_index) in enumerate(schedule):
            sent.setdefault((sender, receiver, index % 8), []).append(
                SIZES[size_index % len(SIZES)]
            )
        for rank in range(NPROCS):
            seen: dict[tuple[int, int, int], list[int]] = {}
            for record in result.trace_for(rank).physical:
                if record.kind != "p2p":
                    continue
                seen.setdefault((record.sender, rank, record.tag), []).append(record.nbytes)
            for key, sizes in seen.items():
                assert sizes == sent[key]

    @given(schedule=schedules(NPROCS), seeds=st.tuples(st.integers(0, 100), st.integers(101, 200)))
    @settings(max_examples=15, deadline=None)
    def test_noiseless_network_is_seed_independent(self, schedule, seeds):
        """Without jitter (and without compute noise) the seed cannot matter."""
        results = [
            run_schedule(schedule, seed=seed, network=NetworkConfig.noiseless(seed=seed))
            for seed in seeds
        ]
        assert results[0].makespan == results[1].makespan
        for rank in range(NPROCS):
            traces = [
                [(r.sender, r.nbytes, r.time) for r in result.trace_for(rank).physical]
                for result in results
            ]
            assert traces[0] == traces[1]
