"""Tests for the scalability projections (repro.analysis.scaling)."""

import pytest

from repro.analysis.scaling import (
    project_buffer_memory,
    project_unexpected_exposure,
    render_projection_table,
    working_set_from_run,
)
from repro.sim.machine import MachineConfig


class TestBufferMemoryProjection:
    def test_paper_blue_gene_example(self):
        # The paper: 16 KB per peer x 10 000 processes ~= 160 MB per process.
        [projection] = project_buffer_memory([10_000], working_set=6)
        assert projection.baseline_bytes == 9_999 * 16 * 1024
        assert projection.baseline_bytes > 150 * 1024 * 1024
        assert projection.predictive_bytes == 6 * 16 * 1024
        assert projection.reduction_factor > 1000

    def test_predictive_memory_is_flat_in_job_size(self):
        projections = project_buffer_memory([16, 256, 4096], working_set=8)
        predictive = {p.predictive_bytes for p in projections}
        assert len(predictive) == 1
        baselines = [p.baseline_bytes for p in projections]
        assert baselines == sorted(baselines)

    def test_working_set_clipped_to_peers(self):
        [projection] = project_buffer_memory([4], working_set=100)
        assert projection.predictive_bytes == 3 * MachineConfig().eager_buffer_bytes

    def test_custom_machine_buffer_size(self):
        machine = MachineConfig(eager_buffer_bytes=1024)
        [projection] = project_buffer_memory([11], working_set=2, machine=machine)
        assert projection.baseline_bytes == 10 * 1024
        assert projection.predictive_bytes == 2 * 1024

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            project_buffer_memory([0], working_set=2)
        with pytest.raises(ValueError):
            project_buffer_memory([4], working_set=0)

    def test_render_table(self):
        text = render_projection_table(project_buffer_memory([64, 1024], working_set=4))
        assert "nprocs" in text and "reduction" in text and "1024" in text


class TestWorkingSetFromRun:
    def test_matches_distinct_senders_plus_cache(self, bt9_run):
        workload, result = bt9_run
        from repro.trace.streams import summarize_stream

        summary = summarize_stream(result.trace_for(3).logical)
        assert working_set_from_run(result, 3) == summary.num_distinct_senders + 2
        assert working_set_from_run(result, 3, extra_recent=0) == summary.num_distinct_senders

    def test_working_set_much_smaller_than_large_jobs(self, bt9_run):
        _, result = bt9_run
        working_set = working_set_from_run(result, 3)
        [projection] = project_buffer_memory([10_000], working_set=working_set)
        assert projection.reduction_factor > 500


class TestUnexpectedExposure:
    def test_unsolicited_grows_linearly(self):
        rows = project_unexpected_exposure([8, 16], message_bytes=4096, messages_per_sender=4)
        assert rows[0]["unsolicited_bytes"] == 7 * 4 * 4096
        assert rows[1]["unsolicited_bytes"] == 15 * 4 * 4096

    def test_credit_bound_caps_per_peer_exposure(self):
        [row] = project_unexpected_exposure(
            [1001], message_bytes=1 << 20, messages_per_sender=8, credit_cap_bytes=64 * 1024
        )
        assert row["credit_bounded_bytes"] == 1000 * 64 * 1024
        assert row["credit_bounded_bytes"] < row["unsolicited_bytes"]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            project_unexpected_exposure([4], message_bytes=-1)
        with pytest.raises(ValueError):
            project_unexpected_exposure([0], message_bytes=8)
