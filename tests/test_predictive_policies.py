"""Tests for the prediction-driven flow-control policies (repro.predictive)."""

import pytest

from repro.predictive.buffer_manager import PredictiveBufferPolicy
from repro.predictive.credit_policy import PredictiveCreditPolicy
from repro.predictive.rendezvous_bypass import PredictiveRendezvousPolicy
from repro.runtime.protocol import StandardFlowControl
from repro.sim.engine import Simulator
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkConfig
from repro.workloads.registry import create_workload
from repro.workloads.runner import run_workload


def run_with_policy(workload, policy, seed=5):
    return run_workload(workload, seed=seed, network=NetworkConfig(seed=seed), policy=policy)


class TestPredictiveBufferPolicy:
    def test_invalid_args(self):
        with pytest.raises(ValueError):
            PredictiveBufferPolicy(horizon=0)
        with pytest.raises(ValueError):
            PredictiveBufferPolicy(extra_recent=-1)

    def test_unbound_policy_rejects_queries(self):
        with pytest.raises(RuntimeError):
            PredictiveBufferPolicy().predictor

    def test_no_preallocation(self):
        policy = PredictiveBufferPolicy()
        policy.bind(MachineConfig(), 8)
        assert policy.preallocate_peers(0) == []

    def test_memory_reduction_on_periodic_workload(self):
        # Rank 0 only ever hears from ranks 1-3, so of the 7 possible peers it
        # needs buffers for at most the predicted few — that is the Section
        # 2.1 memory saving.
        pattern = [(1, 1024), (2, 2048), (3, 1024), (1, 1024)]
        workload = create_workload(
            "periodic-pattern", nprocs=8, pattern=pattern, iterations=40
        )
        policy = PredictiveBufferPolicy(horizon=5)
        run_with_policy(workload, policy)
        summary = policy.memory_summary()
        assert summary["baseline_bytes_per_rank"] == 7 * MachineConfig().eager_buffer_bytes
        assert summary["max_peak_bytes_per_rank"] < summary["baseline_bytes_per_rank"]
        assert summary["reduction_factor"] > 1.0
        assert summary["eager_hits"] > 0

    def test_misses_fall_back_to_rendezvous(self):
        workload = create_workload("periodic-pattern", nprocs=4, iterations=20)
        policy = PredictiveBufferPolicy(horizon=5)
        result = run_with_policy(workload, policy)
        # Early messages (before anything was learned) are forced to rendezvous.
        assert result.stats.forced_rendezvous > 0
        assert policy.eager_misses > 0

    def test_transport_buffers_not_preallocated(self):
        workload = create_workload("ring-exchange", nprocs=4, iterations=10)
        policy = PredictiveBufferPolicy()
        result = run_with_policy(workload, policy)
        for stats in result.buffer_stats:
            assert stats.preallocated_bytes <= 2 * MachineConfig().eager_buffer_bytes

    def test_peak_buffer_accounting_per_rank(self):
        workload = create_workload("periodic-pattern", nprocs=6, iterations=30)
        policy = PredictiveBufferPolicy(horizon=5, extra_recent=1)
        run_with_policy(workload, policy)
        assert policy.buffers_held(0) <= 6
        assert policy.peak_buffer_bytes(0) == policy._peak_buffers[0] * MachineConfig().eager_buffer_bytes


class TestPredictiveCreditPolicy:
    def test_invalid_args(self):
        with pytest.raises(ValueError):
            PredictiveCreditPolicy(horizon=0)
        with pytest.raises(ValueError):
            PredictiveCreditPolicy(credit_cap_bytes=0)
        with pytest.raises(ValueError):
            PredictiveCreditPolicy(bootstrap_credit_bytes=-1)

    def test_bootstrap_allows_tiny_messages(self):
        policy = PredictiveCreditPolicy(bootstrap_credit_bytes=128)
        policy.bind(MachineConfig(), 4)
        assert policy.allows_eager(1, 0, 64, "p2p", 0.0) is True

    def test_without_credit_large_small_message_denied(self):
        policy = PredictiveCreditPolicy(bootstrap_credit_bytes=0)
        policy.bind(MachineConfig(), 4)
        assert policy.allows_eager(1, 0, 1024, "p2p", 0.0) is False
        assert policy.eager_denied == 1

    def test_grants_follow_predictions(self):
        policy = PredictiveCreditPolicy(horizon=3, bootstrap_credit_bytes=0)
        policy.bind(MachineConfig(), 4)
        for _ in range(30):
            policy.on_message_delivered(0, 1, 2048, 0, "p2p", 0.0)
        assert policy.credits.available(0, 1) > 0
        assert policy.allows_eager(1, 0, 2048, "p2p", 0.0) is True

    def test_credit_cap_respected(self):
        policy = PredictiveCreditPolicy(horizon=5, credit_cap_bytes=4096)
        policy.bind(MachineConfig(), 4)
        for _ in range(100):
            policy.on_message_delivered(0, 1, 2048, 0, "p2p", 0.0)
        assert policy.credits.available(0, 1) <= 4096

    def test_end_to_end_bounds_unexpected_exposure(self):
        workload = create_workload("collective-storm", nprocs=8, iterations=10)
        baseline = run_with_policy(workload, StandardFlowControl())
        workload2 = create_workload("collective-storm", nprocs=8, iterations=10)
        policy = PredictiveCreditPolicy()
        predictive = run_with_policy(workload2, policy)
        summary = policy.exposure_summary()
        assert summary["max_outstanding_credit_bytes"] <= policy.credit_cap_bytes
        # The predictive run can only shrink the eager/unexpected traffic.
        assert predictive.stats.eager_messages <= baseline.stats.eager_messages


class TestPredictiveRendezvousPolicy:
    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            PredictiveRendezvousPolicy(horizon=0)

    def test_small_messages_always_eager(self):
        policy = PredictiveRendezvousPolicy()
        policy.bind(MachineConfig(), 4)
        assert policy.allows_eager(1, 0, 512, "p2p", 0.0) is True

    def test_unpredicted_large_message_falls_back(self):
        policy = PredictiveRendezvousPolicy()
        policy.bind(MachineConfig(), 4)
        assert policy.allows_eager(1, 0, 1 << 20, "p2p", 0.0) is False
        assert policy.fallbacks == 1

    def test_predicted_large_message_bypasses(self):
        policy = PredictiveRendezvousPolicy(horizon=3)
        policy.bind(MachineConfig(), 4)
        for _ in range(30):
            policy.on_message_delivered(0, 1, 1 << 20, 0, "p2p", 0.0)
        assert policy.allows_eager(1, 0, 1 << 20, "p2p", 0.0) is True
        assert policy.bypasses == 1

    def test_match_size_flag(self):
        strict = PredictiveRendezvousPolicy(match_size=True)
        loose = PredictiveRendezvousPolicy(match_size=False)
        for policy in (strict, loose):
            policy.bind(MachineConfig(), 4)
            for _ in range(30):
                policy.on_message_delivered(0, 1, 1 << 20, 0, "p2p", 0.0)
        other_size = (1 << 20) + 4096
        assert strict.allows_eager(1, 0, other_size, "p2p", 0.0) is False
        assert loose.allows_eager(1, 0, other_size, "p2p", 0.0) is True

    def test_end_to_end_reduces_rendezvous_traffic(self):
        workload = create_workload("ring-exchange", nprocs=4, iterations=60)
        baseline = run_with_policy(workload, StandardFlowControl())
        workload2 = create_workload("ring-exchange", nprocs=4, iterations=60)
        policy = PredictiveRendezvousPolicy()
        predictive = run_with_policy(workload2, policy)
        assert predictive.stats.rendezvous_messages < baseline.stats.rendezvous_messages
        assert predictive.stats.eager_bypass_large > 0
        summary = policy.bypass_summary()
        assert 0.0 < summary["bypass_rate"] <= 1.0

    def test_bypass_makes_long_messages_faster(self):
        workload = create_workload("ring-exchange", nprocs=4, iterations=60)
        baseline = run_with_policy(workload, StandardFlowControl())
        workload2 = create_workload("ring-exchange", nprocs=4, iterations=60)
        predictive = run_with_policy(workload2, PredictiveRendezvousPolicy())
        assert predictive.makespan < baseline.makespan


class TestBurstHooks:
    """The burst hooks must leave each policy in the same state as a
    per-message replay of the same delivery sequence."""

    MESSAGES = [
        (1 + i % 3, 1024 * (1 + i % 2), 0, "p2p") for i in range(36)
    ]

    @staticmethod
    def _feed(policy, burst):
        policy.bind(MachineConfig(), 8)
        if burst:
            policy.on_burst_delivered(0, TestBurstHooks.MESSAGES, 0.0)
        else:
            for src, nbytes, tag, kind in TestBurstHooks.MESSAGES:
                policy.on_message_delivered(0, src, nbytes, tag, kind, 0.0)
        return policy

    def test_buffer_policy_burst_matches_sequential(self):
        sequential = self._feed(PredictiveBufferPolicy(), burst=False)
        bursty = self._feed(PredictiveBufferPolicy(), burst=True)
        assert bursty._buffered[0] == sequential._buffered[0]
        assert bursty._recent[0] == sequential._recent[0]
        assert bursty.predictor.predict(0) == sequential.predictor.predict(0)
        # Both policies make identical eager decisions afterwards.
        for src in range(1, 8):
            assert bursty.allows_eager(src, 0, 1024, "p2p", 1.0) == \
                sequential.allows_eager(src, 0, 1024, "p2p", 1.0)

    def test_credit_policy_burst_matches_sequential(self):
        # Regression: grants are cumulative and capped, so the burst hook
        # must interleave observe/grant per message — granting once from the
        # post-burst predictions leaves a different credit balance.
        sequential = self._feed(PredictiveCreditPolicy(), burst=False)
        bursty = self._feed(PredictiveCreditPolicy(), burst=True)
        assert bursty.predictor.predict(0) == sequential.predictor.predict(0)
        for src in range(8):
            assert bursty.credits.available(0, src) == \
                sequential.credits.available(0, src)
        assert bursty.credits.total_granted_bytes() == \
            sequential.credits.total_granted_bytes()

    def test_rendezvous_policy_burst_matches_sequential(self):
        sequential = self._feed(PredictiveRendezvousPolicy(), burst=False)
        bursty = self._feed(PredictiveRendezvousPolicy(), burst=True)
        assert bursty.predictor.predict(0) == sequential.predictor.predict(0)
        assert bursty.predictor.observations == sequential.predictor.observations

    def test_base_policy_burst_default_replays_per_message(self):
        calls = []

        class Recorder(StandardFlowControl):
            def on_message_delivered(self, dst, src, nbytes, tag, kind, now):
                calls.append((dst, src, nbytes, tag, kind, now))

        policy = Recorder()
        policy.bind(MachineConfig(), 4)
        policy.on_burst_delivered(2, [(0, 64, 1, "p2p"), (1, 128, 2, "p2p")], 3.0)
        assert calls == [(2, 0, 64, 1, "p2p", 3.0), (2, 1, 128, 2, "p2p", 3.0)]
