"""Tests for the periodicity-based predictor (repro.core.predictor)."""

import pytest

from repro.core.predictor import PeriodicityPredictor


def feed(predictor, values):
    for value in values:
        predictor.observe(int(value))
    return predictor


class TestPrediction:
    def test_no_prediction_before_learning(self):
        predictor = PeriodicityPredictor(window_size=8)
        assert predictor.predict(5) == [None] * 5

    def test_exact_replay_of_periodic_stream(self):
        pattern = [3, 1, 4, 1, 5]
        predictor = feed(PeriodicityPredictor(window_size=10), pattern * 6)
        predictions = predictor.predict(10)
        assert predictions == pattern * 2

    def test_prediction_horizon_wraps_around_period(self):
        pattern = [7, 8]
        predictor = feed(PeriodicityPredictor(window_size=6), pattern * 10)
        assert predictor.predict(5) == [7, 8, 7, 8, 7]

    def test_prediction_continues_mid_period(self):
        pattern = [1, 2, 3, 4]
        stream = pattern * 6 + [1, 2]  # stops mid-period
        predictor = feed(PeriodicityPredictor(window_size=8), stream)
        assert predictor.predict(4) == [3, 4, 1, 2]

    def test_constant_stream(self):
        predictor = feed(PeriodicityPredictor(window_size=4), [9] * 20)
        assert predictor.predict(3) == [9, 9, 9]

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            PeriodicityPredictor().predict(0)

    def test_long_period_with_short_window(self):
        pattern = list(range(40))
        predictor = feed(
            PeriodicityPredictor(window_size=16, max_period=64), pattern * 4
        )
        assert predictor.current_period == 40
        assert predictor.predict(3) == [0, 1, 2]


class TestStickiness:
    def test_sticky_keeps_period_through_noise(self):
        pattern = [1, 2, 3, 4]
        predictor = feed(PeriodicityPredictor(window_size=8, sticky=True), pattern * 8)
        assert predictor.current_period == 4
        predictor.observe(99)  # one perturbed sample
        assert predictor.current_period == 4
        assert all(p is not None for p in predictor.predict(4))

    def test_non_sticky_drops_prediction_on_noise(self):
        pattern = [1, 2, 3, 4]
        predictor = feed(PeriodicityPredictor(window_size=8, sticky=False), pattern * 8)
        predictor.observe(99)
        assert predictor.current_period is None
        assert predictor.predict(2) == [None, None]

    def test_period_change_is_tracked(self):
        predictor = PeriodicityPredictor(window_size=8, max_period=16)
        feed(predictor, [1, 2] * 10)
        first_period = predictor.current_period
        feed(predictor, [5, 6, 7, 8] * 10)
        assert first_period == 2
        assert predictor.current_period == 4
        assert predictor.period_changes >= 2


class TestBookkeeping:
    def test_counters(self):
        predictor = feed(PeriodicityPredictor(window_size=4), [1, 2] * 10)
        assert predictor.samples_seen == 20
        assert predictor.detections > 0

    def test_reset(self):
        predictor = feed(PeriodicityPredictor(window_size=4), [1, 2] * 10)
        predictor.reset()
        assert predictor.samples_seen == 0
        assert predictor.current_period is None
        assert predictor.predict(2) == [None, None]

    def test_periodicity_exposes_dpd_result(self):
        predictor = feed(PeriodicityPredictor(window_size=6), [1, 2, 3] * 10)
        result = predictor.periodicity()
        assert result.period == 3

    def test_observe_many(self):
        predictor = PeriodicityPredictor(window_size=4)
        predictor.observe_many([1, 2] * 8)
        assert predictor.current_period == 2

    def test_window_size_property(self):
        assert PeriodicityPredictor(window_size=12).window_size == 12

    def test_name(self):
        assert PeriodicityPredictor().name == "periodicity"
