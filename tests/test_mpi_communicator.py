"""Tests for the communicator API (repro.mpi.communicator)."""

import pytest

from repro.mpi.communicator import Communicator, RankContext
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, COLLECTIVE_TAG_BASE, MAX_USER_TAG
from repro.mpi.ops import ComputeOp, IrecvOp, IsendOp, RecvOp, SendOp, WaitallOp, WaitOp
from repro.mpi.request import Request
from repro.util.rng import SeededRNG


@pytest.fixture
def comm():
    return Communicator(rank=1, size=4)


class TestConstruction:
    def test_valid(self):
        c = Communicator(rank=0, size=1)
        assert c.rank == 0 and c.size == 1

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Communicator(rank=0, size=0)

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            Communicator(rank=4, size=4)


class TestPointToPoint:
    def test_send_builds_op(self, comm):
        op = comm.send(2, 100, tag=7)
        assert isinstance(op, SendOp)
        assert (op.dest, op.nbytes, op.tag, op.kind) == (2, 100, 7, "p2p")

    def test_isend_builds_op(self, comm):
        assert isinstance(comm.isend(0, 10), IsendOp)

    def test_recv_defaults_to_wildcards(self, comm):
        op = comm.recv()
        assert isinstance(op, RecvOp)
        assert op.source == ANY_SOURCE and op.tag == ANY_TAG

    def test_irecv_builds_op(self, comm):
        op = comm.irecv(source=3, tag=2)
        assert isinstance(op, IrecvOp)
        assert op.source == 3

    def test_send_invalid_dest(self, comm):
        with pytest.raises(ValueError):
            comm.send(4, 10)

    def test_send_negative_bytes(self, comm):
        with pytest.raises(ValueError):
            comm.send(0, -1)

    def test_recv_invalid_source(self, comm):
        with pytest.raises(ValueError):
            comm.recv(source=9)

    def test_tag_out_of_range(self, comm):
        with pytest.raises(ValueError):
            comm.send(0, 8, tag=MAX_USER_TAG + 1)
        with pytest.raises(ValueError):
            comm.recv(tag=-5)

    def test_wait_and_waitall_wrap_requests(self, comm):
        req = Request("send", 1)
        assert isinstance(comm.wait(req), WaitOp)
        op = comm.waitall([req])
        assert isinstance(op, WaitallOp)
        assert list(op.requests) == [req]

    def test_compute(self, comm):
        op = comm.compute(1e-3)
        assert isinstance(op, ComputeOp)
        assert op.seconds == pytest.approx(1e-3)

    def test_compute_negative(self, comm):
        with pytest.raises(ValueError):
            comm.compute(-1.0)

    def test_send_payload_carried(self, comm):
        assert comm.send(0, 8, payload={"x": 1}).payload == {"x": 1}


class TestCollectiveGenerators:
    def test_collective_tags_are_reserved_and_strided(self, comm):
        ops_a = list(comm.bcast(64, root=0))
        ops_b = list(comm.bcast(64, root=0))
        tags = [op.tag for op in ops_a + ops_b if hasattr(op, "tag")]
        assert all(tag >= COLLECTIVE_TAG_BASE for tag in tags)
        tags_a = {op.tag for op in ops_a if hasattr(op, "tag")}
        tags_b = {op.tag for op in ops_b if hasattr(op, "tag")}
        assert tags_a.isdisjoint(tags_b)

    def test_collective_ops_marked_collective(self, comm):
        for op in comm.alltoall(16):
            if isinstance(op, (SendOp, IsendOp, RecvOp, IrecvOp)):
                assert op.kind == "collective"

    def test_bcast_invalid_root(self, comm):
        with pytest.raises(ValueError):
            list(comm.bcast(10, root=7))

    def test_alltoallv_requires_size_entries(self, comm):
        with pytest.raises(ValueError):
            list(comm.alltoallv([1, 2]))

    def test_alltoallv_negative_entry(self, comm):
        with pytest.raises(ValueError):
            list(comm.alltoallv([1, -1, 1, 1]))

    def test_single_rank_collectives_are_empty(self):
        solo = Communicator(rank=0, size=1)
        assert list(solo.bcast(10)) == []
        assert list(solo.barrier()) == []
        assert list(solo.allreduce(10)) == []
        assert list(solo.allgather(10)) == []
        assert list(solo.alltoall(10)) == []

    def test_sendrecv_kind_is_p2p(self, comm):
        ops = list(comm.sendrecv(0, 32, 2, tag=3))
        kinds = {op.kind for op in ops if hasattr(op, "kind")}
        assert kinds == {"p2p"}


class TestRankContext:
    def test_fields(self):
        comm = Communicator(rank=0, size=2)
        ctx = RankContext(rank=0, size=2, comm=comm, rng=SeededRNG(1))
        assert ctx.comm is comm
        assert ctx.params == {}
