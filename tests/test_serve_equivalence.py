"""Offline/online equivalence of the serve plane (the load-bearing invariant).

Feeding a recorded trace's per-receiver ``(sender, nbytes)`` stream through
the serve ingestion path — wire-line parsing, CRC32 shard routing, the LRU
stream table, coalesced ``observe_batch`` calls — must yield **bit-identical
predictions** to driving :class:`repro.predictive.online.OnlineMessagePredictor`
directly, for every predictor spec in the registry.  The serve plane is a
routing layer over the exact same predictor fast paths, never a
re-implementation; these tests pin that down across ≥3 registry specs.
"""

import json
from pathlib import Path

import pytest

from repro.predictive.online import OnlineMessagePredictor
from repro.scenario.spec import PredictorSpec
from repro.serve.service import ServeService
from repro.trace.io import load_traces

SAMPLE_TRACE = Path(__file__).resolve().parent.parent / "examples" / "sample_trace.jsonl"

#: Registry predictor specs the equivalence is pinned across (>= 3, per the
#: serve-vs-offline invariant; horizon varies to catch horizon plumbing too).
SPECS = [
    "periodicity:window=8,max_period=16,horizon=4",
    "last-value:horizon=3",
    "most-frequent:horizon=4",
    "cycle:horizon=5",
]


def recorded_streams():
    """Per-receiver ``(sender, nbytes)`` sequences from the sample trace."""
    traces, _ = load_traces(SAMPLE_TRACE)
    streams = {}
    for trace in traces:
        pairs = [(r.sender, r.nbytes) for r in trace.logical if r.sender >= 0]
        if pairs:
            streams[str(trace.rank)] = pairs
    assert len(streams) >= 2, "sample trace must hold several receiver streams"
    return streams


def offline_reference(spec_string, streams):
    """Drive OnlineMessagePredictor directly — the ground truth."""
    spec = PredictorSpec.coerce(spec_string)
    keys = sorted(streams)
    predictor = OnlineMessagePredictor(
        nprocs=len(keys), horizon=spec.horizon, predictor_factory=spec.factory()
    )
    for slot, key in enumerate(keys):
        for sender, nbytes in streams[key]:
            predictor.observe(slot, sender, nbytes)
    return {
        key: {
            "predict": predictor.predict(slot),
            "predict_h2": predictor.predict(slot, horizon=2),
            "expects": [predictor.expects_message(slot, s) for s in range(4)],
        }
        for slot, key in enumerate(keys)
    }


def serve_answers(service, streams):
    return {
        key: {
            "predict": service.predict(key),
            "predict_h2": service.predict(key, horizon=2),
            "expects": [service.expects(key, s) for s in range(4)],
        }
        for key in sorted(streams)
    }


@pytest.mark.parametrize("spec_string", SPECS)
def test_wire_ingestion_matches_offline(spec_string):
    """NDJSON ingestion over 3 shards == direct predictor drive, bit for bit."""
    streams = recorded_streams()
    service = ServeService(spec_string, num_shards=3)
    line_number = 0
    # Interleave the receivers round-robin — the adversarial order for the
    # server's same-key coalescing and the LRU touch sequence.
    iterators = {key: iter(pairs) for key, pairs in sorted(streams.items())}
    while iterators:
        for key in list(iterators):
            try:
                sender, nbytes = next(iterators[key])
            except StopIteration:
                del iterators[key]
                continue
            line_number += 1
            line = json.dumps({"receiver": key, "sender": sender, "nbytes": nbytes})
            assert service.handle_line(line, line_number) is None
    assert serve_answers(service, streams) == offline_reference(spec_string, streams)


@pytest.mark.parametrize("spec_string", SPECS[:3])
def test_batched_ingestion_matches_offline(spec_string):
    """Shard-level observe_batch (the server's coalesced path) == offline."""
    streams = recorded_streams()
    service = ServeService(spec_string, num_shards=2)
    for key, pairs in sorted(streams.items()):
        shard = service.shard_for(key)
        # Split each stream into uneven chunks so batch boundaries land
        # mid-pattern, exactly as the server's drain batching does.
        for start in range(0, len(pairs), 7):
            chunk = pairs[start : start + 7]
            shard.observe_batch(key, [s for s, _ in chunk], [b for _, b in chunk])
    assert serve_answers(service, streams) == offline_reference(spec_string, streams)


def test_shard_count_is_invisible_to_predictions():
    streams = recorded_streams()
    answers = []
    for num_shards in (1, 2, 5):
        service = ServeService(SPECS[0], num_shards=num_shards)
        for key, pairs in sorted(streams.items()):
            for sender, nbytes in pairs:
                service.observe(key, sender, nbytes)
        answers.append(serve_answers(service, streams))
    assert answers[0] == answers[1] == answers[2]


def test_queries_never_create_streams():
    service = ServeService(SPECS[0], num_shards=2)
    assert service.predict("never-observed") is None
    assert service.expects("never-observed", 0) is None
    assert service.stats()["streams"] == 0
