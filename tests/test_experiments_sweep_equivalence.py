"""The paper's 19-cell sweep through the Scenario API is bit-identical to the
pre-redesign ExperimentContext recipe.

The legacy recipe is inlined here exactly as the pre-redesign
``analysis.experiments._run_configuration_cell`` executed it: registry
workload, ``NetworkConfig(seed=seed)``, default machine, standard policy,
compiled fast lane.  Everything the analysis layer consumes — traces at both
levels, runtime statistics, makespans, and the stream summaries feeding
Table 1 — must coincide bit for bit with the canonical ``paper_sweep()``
cells run through ``Sweep.run_all()`` and with ``ExperimentContext.run_all``.
"""

import pytest

from repro.analysis.experiments import ExperimentContext, paper_sweep
from repro.sim.engine import Simulator
from repro.sim.network import NetworkConfig
from repro.trace.streams import summarize_stream
from repro.workloads.registry import create_workload, paper_configurations

SCALE = 0.02
SEED = 29


def _legacy_cell(configuration, seed):
    """The pre-redesign per-cell recipe, reproduced verbatim."""
    workload = create_workload(
        configuration.workload, configuration.nprocs, scale=configuration.scale
    )
    simulator = Simulator(
        nprocs=workload.nprocs,
        network=NetworkConfig(seed=seed),
        seed=seed,
    )
    return workload, simulator.run([workload.program_for])


def _columns_tuple(columns):
    return (
        columns.sender_array().tolist(),
        columns.size_array().tolist(),
        columns.tag_array().tolist(),
        columns.time_array().tolist(),
        columns.seq_array().tolist(),
    )


@pytest.fixture(scope="module")
def legacy_runs():
    return [
        _legacy_cell(configuration, SEED)
        for configuration in paper_configurations(scale=SCALE)
    ]


@pytest.fixture(scope="module")
def sweep_results():
    return paper_sweep(seed=SEED, scale=SCALE).run_all()


class TestPaperSweepEquivalence:
    def test_cell_count_and_labels(self, sweep_results):
        configurations = paper_configurations(scale=SCALE)
        assert len(sweep_results) == len(configurations) == 19
        assert [r.label for r in sweep_results] == [c.label for c in configurations]

    def test_makespans_and_stats_bit_identical(self, legacy_runs, sweep_results):
        for (workload, legacy), cell in zip(legacy_runs, sweep_results):
            assert cell.makespan == legacy.makespan
            assert cell.result.rank_finish_times == legacy.rank_finish_times
            assert cell.result.events_processed == legacy.events_processed
            assert cell.stats.summary() == legacy.stats.summary()

    def test_traces_bit_identical_every_rank(self, legacy_runs, sweep_results):
        for (workload, legacy), cell in zip(legacy_runs, sweep_results):
            for rank in range(workload.nprocs):
                assert _columns_tuple(cell.trace(rank).logical) == _columns_tuple(
                    legacy.trace_for(rank).logical
                ), f"{cell.label} rank {rank} logical"
                assert _columns_tuple(cell.trace(rank).physical) == _columns_tuple(
                    legacy.trace_for(rank).physical
                ), f"{cell.label} rank {rank} physical"

    def test_table1_summaries_bit_identical(self, legacy_runs, sweep_results):
        # Table 1 is built from the representative rank's stream summaries;
        # compare them directly (the table is a pure function of these).
        for (workload, legacy), cell in zip(legacy_runs, sweep_results):
            rank = workload.representative_rank()
            assert cell.representative_rank == rank
            for level in ("logical", "physical"):
                assert summarize_stream(cell.records(level, rank)) == summarize_stream(
                    getattr(legacy.trace_for(rank), level)
                ), f"{cell.label} {level}"

    def test_experiment_context_matches_sweep(self, sweep_results):
        context = ExperimentContext(seed=SEED, scale=SCALE)
        for run, cell in zip(context.run_all(), sweep_results):
            assert run.label == cell.label
            assert run.result.makespan == cell.makespan
            assert run.result.stats.summary() == cell.stats.summary()

    def test_context_spec_for_equals_sweep_cells(self):
        context = ExperimentContext(seed=SEED, scale=SCALE)
        assert [
            context.spec_for(configuration) for configuration in context.configurations()
        ] == paper_sweep(seed=SEED, scale=SCALE).expand()
