"""Tests for the Scenario run facade, ScenarioResult, and seed plumbing."""

import pytest

from repro.core.evaluation import AccuracyResult
from repro.scenario import Scenario, ScenarioSpec
from repro.sim.engine import Simulator
from repro.sim.network import NetworkConfig
from repro.trace.io import load_traces
from repro.workloads.registry import create_workload
from repro.workloads.runner import run_workload


def _columns_tuple(columns):
    """A trace level's full content as comparable lists."""
    return (
        columns.sender_array().tolist(),
        columns.size_array().tolist(),
        columns.tag_array().tolist(),
        columns.time_array().tolist(),
        columns.seq_array().tolist(),
    )


class TestScenarioRun:
    def test_bit_identical_to_run_workload(self):
        scenario_result = Scenario(
            ScenarioSpec(workload="bt.9:scale=0.05", seed=7)
        ).run()
        legacy = run_workload(
            create_workload("bt", nprocs=9, scale=0.05),
            seed=7,
            network=NetworkConfig(seed=7),
        )
        assert scenario_result.makespan == legacy.makespan
        assert scenario_result.stats.summary() == legacy.stats.summary()
        for rank in range(9):
            ours = scenario_result.trace(rank)
            theirs = legacy.trace_for(rank)
            assert _columns_tuple(ours.logical) == _columns_tuple(theirs.logical)
            assert _columns_tuple(ours.physical) == _columns_tuple(theirs.physical)

    def test_policy_and_network_from_spec(self):
        result = Scenario(
            ScenarioSpec(
                workload="bt.4:scale=0.05",
                seed=3,
                policy="rendezvous",
                network="noiseless",
            )
        ).run()
        assert result.stats.eager_messages == 0
        # Noiseless network: physical order equals logical order.
        logical = result.stream("sender", level="logical")
        physical = result.stream("sender", level="physical")
        assert list(logical) == list(physical)

    def test_tracing_disabled(self):
        spec = ScenarioSpec(workload="ring-exchange.4:scale=0.05", trace=False)
        result = Scenario(spec).run()
        assert result.result.tracer is None
        with pytest.raises(ValueError, match="without tracing"):
            result.save_traces("nowhere.jsonl")

    def test_compiled_false_matches_compiled_true(self):
        base = ScenarioSpec(workload="bt.4:scale=0.05", seed=11)
        fast = Scenario(base).run()
        slow = Scenario(base.with_overrides(compiled=False)).run()
        assert fast.makespan == slow.makespan
        assert _columns_tuple(fast.trace().logical) == _columns_tuple(slow.trace().logical)

    def test_max_events_guard_forwarded(self):
        from repro.sim.errors import SimulationError

        spec = ScenarioSpec(workload="bt.4:scale=0.05", max_events=10)
        with pytest.raises(SimulationError):
            Scenario(spec).run()


class TestScenarioResultAccessors:
    @pytest.fixture(scope="class")
    def result(self):
        return Scenario(ScenarioSpec(workload="bt.9:scale=0.05", seed=7)).run()

    def test_representative_rank_default(self, result):
        rank = result.workload.representative_rank()
        assert result.representative_rank == rank
        assert result.trace() is result.trace(rank)  # defaults to representative

    def test_streams_and_summary(self, result):
        senders = result.stream("sender")
        sizes = result.stream("size")
        assert len(senders) == len(sizes) == result.summary().total_messages
        assert result.summary(level="physical").total_messages == len(
            result.stream("sender", level="physical")
        )

    def test_stream_caching(self, result):
        assert result.stream("sender") is result.stream("sender")
        assert result.predict("sender") is result.predict("sender")

    def test_predict_uses_spec_predictor(self, result):
        outcome = result.predict("sender")
        assert isinstance(outcome, AccuracyResult)
        assert len(outcome.accuracies()) == result.spec.predictor.horizon
        shorter = result.predict("sender", horizon=2)
        assert len(shorter.accuracies()) == 2

    def test_unknown_kind_and_level_rejected(self, result):
        with pytest.raises(ValueError, match="stream kind"):
            result.stream("tag")
        with pytest.raises(ValueError, match="trace level"):
            result.records(level="quantum")

    def test_save_traces_records_spec_metadata(self, result, tmp_path):
        path = tmp_path / "bt9.jsonl"
        count = result.save_traces(path, metadata={"extra": 1})
        assert count > 0
        _traces, metadata = load_traces(path)
        assert metadata["workload"] == "bt"
        assert metadata["nprocs"] == 9
        assert metadata["seed"] == 7
        assert metadata["policy"] == "standard"
        assert metadata["extra"] == 1

    def test_trace_path_in_spec_saves_on_run(self, tmp_path):
        path = tmp_path / "auto.jsonl"
        Scenario(
            ScenarioSpec(workload="ring-exchange.4:scale=0.05", trace=str(path))
        ).run()
        traces, metadata = load_traces(path)
        assert len(traces) == 4
        assert metadata["workload"] == "ring-exchange"


class TestSeedPlumbing:
    """Regression: a NetworkConfig without a pinned seed derives from the run
    seed identically on every path (the pre-redesign run_workload silently
    kept the config's default RNG seed)."""

    def test_run_workload_derives_unpinned_network_seed(self):
        workload = lambda: create_workload("bt", nprocs=4, scale=0.05)
        implicit = run_workload(workload(), seed=5)
        explicit_unpinned = run_workload(
            workload(), seed=5, network=NetworkConfig(jitter_sigma=0.2)
        )
        explicit_pinned = run_workload(
            workload(), seed=5, network=NetworkConfig(jitter_sigma=0.2, seed=5)
        )
        # jitter_sigma=0.2 is the default, so all three recipes coincide.
        assert (
            implicit.trace_for(3).physical.time_array().tolist()
            == explicit_unpinned.trace_for(3).physical.time_array().tolist()
            == explicit_pinned.trace_for(3).physical.time_array().tolist()
        )

    def test_pinned_seed_is_respected(self):
        workload = lambda: create_workload("bt", nprocs=4, scale=0.05)
        derived = run_workload(workload(), seed=5, network=NetworkConfig())
        pinned = run_workload(workload(), seed=5, network=NetworkConfig(seed=0))
        assert (
            derived.trace_for(3).physical.time_array().tolist()
            != pinned.trace_for(3).physical.time_array().tolist()
        )

    def test_simulator_path_derives_identically(self):
        def simulate(network):
            workload = create_workload("bt", nprocs=4, scale=0.05)
            simulator = Simulator(nprocs=4, network=network, seed=5)
            return simulator.run([workload.program_for])

        unpinned = simulate(NetworkConfig(jitter_sigma=0.2))
        pinned = simulate(NetworkConfig(jitter_sigma=0.2, seed=5))
        assert (
            unpinned.trace_for(3).physical.time_array().tolist()
            == pinned.trace_for(3).physical.time_array().tolist()
        )

    def test_scenario_path_derives_identically(self):
        unpinned = Scenario(
            ScenarioSpec(workload="bt.4:scale=0.05", seed=5)
        ).run()
        via_config = Scenario(
            ScenarioSpec(workload="bt.4:scale=0.05", seed=5),
            network=NetworkConfig(jitter_sigma=0.2),
        ).run()
        assert (
            unpinned.trace().physical.time_array().tolist()
            == via_config.trace().physical.time_array().tolist()
        )
