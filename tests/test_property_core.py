"""Property-based tests (hypothesis) for the predictor core data structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circular_buffer import CircularBuffer
from repro.core.dpd import DynamicPeriodicityDetector
from repro.core.evaluation import evaluate_stream
from repro.core.predictor import PeriodicityPredictor

values = st.integers(min_value=0, max_value=1_000_000)


class TestCircularBufferProperties:
    @given(capacity=st.integers(1, 32), data=st.lists(values, max_size=200))
    def test_matches_list_tail(self, capacity, data):
        """The ring always equals the last `capacity` appended values."""
        buffer = CircularBuffer(capacity)
        for value in data:
            buffer.append(value)
        assert buffer.to_array().tolist() == data[-capacity:]
        assert len(buffer) == min(len(data), capacity)
        assert buffer.total_appended == len(data)

    @given(capacity=st.integers(1, 16), data=st.lists(values, min_size=1, max_size=100))
    def test_indexing_matches_reference(self, capacity, data):
        buffer = CircularBuffer(capacity)
        for value in data:
            buffer.append(value)
        reference = data[-capacity:]
        for i in range(len(reference)):
            assert buffer[i] == reference[i]
            assert buffer[-(i + 1)] == reference[-(i + 1)]

    @given(capacity=st.integers(1, 16), n=st.integers(0, 40), data=st.lists(values, max_size=60))
    def test_last_n(self, capacity, n, data):
        buffer = CircularBuffer(capacity)
        buffer.extend(data)
        expected = data[-capacity:][-n:] if n else []
        assert buffer.last(n).tolist() == expected


class TestDPDProperties:
    @given(
        pattern=st.lists(values, min_size=1, max_size=12),
        repetitions=st.integers(4, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_periodic_stream_is_detected_with_divisor_period(self, pattern, repetitions):
        """On an exactly periodic stream the DPD finds a period dividing len(pattern)."""
        stream = pattern * repetitions
        window = 2 * len(pattern)
        detector = DynamicPeriodicityDetector(window_size=window, max_period=window)
        for value in stream:
            detector.observe(value)
        result = detector.detect()
        if len(stream) >= window + len(pattern):
            assert result.periodic
            assert len(pattern) % result.period == 0

    @given(
        pattern=st.lists(values, min_size=1, max_size=10),
        repetitions=st.integers(4, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_true_period_always_has_zero_distance(self, pattern, repetitions):
        """Equation (1) yields d(m) = 0 at the construction period of the stream.

        Additionally, every delay reported as zero must really leave the
        comparison window unchanged when the stream is shifted by it.
        """
        stream = pattern * repetitions
        window = len(pattern) * 2
        detector = DynamicPeriodicityDetector(window_size=window, max_period=window)
        for value in stream:
            detector.observe(value)
        distances = detector.distances()
        if distances.size >= len(pattern):
            assert distances[len(pattern) - 1] == 0
        history = detector.history().tolist()
        recent = history[-window:]
        for index, distance in enumerate(distances):
            m = index + 1
            shifted = history[-window - m : -m]
            assert (distance == 0) == (shifted == recent)

    @given(data=st.lists(values, min_size=0, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_distances_always_bounded_by_window(self, data):
        detector = DynamicPeriodicityDetector(window_size=16, max_period=32)
        for value in data:
            detector.observe(value)
        distances = detector.distances()
        assert (distances >= 0).all()
        assert (distances <= 16).all()


class TestPredictorProperties:
    @given(
        pattern=st.lists(values, min_size=1, max_size=8),
        repetitions=st.integers(6, 12),
        horizon=st.integers(1, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_predictions_replay_the_pattern_once_learned(self, pattern, repetitions, horizon):
        stream = pattern * repetitions
        predictor = PeriodicityPredictor(window_size=2 * len(pattern), max_period=2 * len(pattern))
        predictor.observe_many(stream)
        if predictor.current_period is None:
            return  # stream too short to learn; nothing to check
        predictions = predictor.predict(horizon)
        expected = [pattern[(len(stream) + k) % len(pattern)] for k in range(horizon)]
        assert predictions == expected

    @given(
        pattern=st.lists(values, min_size=1, max_size=6),
        repetitions=st.integers(8, 16),
    )
    @settings(max_examples=40, deadline=None)
    def test_accuracy_high_on_long_periodic_streams(self, pattern, repetitions):
        stream = pattern * repetitions
        result = evaluate_stream(
            stream,
            lambda: PeriodicityPredictor(window_size=2 * len(pattern)),
            horizon=3,
        )
        # Everything after the learning prefix must be predicted correctly.
        learning = 3 * len(pattern)
        expected_floor = max(0.0, 1.0 - (learning + 1) / len(stream))
        assert result.accuracy(1) >= expected_floor - 1e-9

    @given(data=st.lists(values, min_size=0, max_size=100), horizon=st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_predict_always_returns_horizon_entries(self, data, horizon):
        predictor = PeriodicityPredictor(window_size=8, max_period=16)
        predictor.observe_many(data)
        assert len(predictor.predict(horizon)) == horizon


class TestEvaluationProperties:
    @given(data=st.lists(st.integers(0, 5), min_size=0, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_hits_never_exceed_attempts(self, data):
        result = evaluate_stream(
            data, lambda: PeriodicityPredictor(window_size=8, max_period=16), horizon=4
        )
        assert (result.hits <= result.attempts).all()
        assert (result.predicted <= result.attempts).all()
        assert (result.hits <= result.predicted).all()

    @given(data=st.lists(st.integers(0, 3), min_size=2, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_attempts_monotonically_decrease_with_horizon(self, data):
        result = evaluate_stream(
            data, lambda: PeriodicityPredictor(window_size=8), horizon=5
        )
        attempts = result.attempts.tolist()
        assert attempts == sorted(attempts, reverse=True)
        assert attempts[0] == len(data)
