"""Tests for the analysis layer (Table 1, Figures 1-4, extensions, ablations).

These use a very small run scale: the point is to verify structure and wiring
(labels, caching, rendering, paper-vs-measured bookkeeping), not the
full-fidelity numbers, which the benchmark harness regenerates.
"""

import pytest

from repro.analysis.ablations import (
    baseline_comparison,
    jitter_sensitivity,
    unordered_accuracy_study,
    window_size_sweep,
)
from repro.analysis.experiments import ExperimentContext
from repro.analysis.extensions import (
    credit_flow_experiment,
    memory_reduction_experiment,
    rendezvous_bypass_experiment,
)
from repro.analysis.figures_accuracy import figure3, figure4
from repro.analysis.figures_streams import figure1, figure2
from repro.analysis.table1 import PAPER_TABLE1, build_table1, render_table1


@pytest.fixture(scope="module")
def tiny_context():
    """A context with very small run scale, shared by the analysis tests."""
    return ExperimentContext(seed=11, scale=0.03)


@pytest.fixture(scope="module")
def bt_configs(tiny_context):
    """Only the BT configurations (cheapest subset that spans process counts)."""
    return [c for c in tiny_context.configurations() if c.workload == "bt"][:2]


class TestExperimentContext:
    def test_nineteen_configurations(self, tiny_context):
        assert len(tiny_context.configurations()) == 19

    def test_run_caching(self, tiny_context):
        config = tiny_context.configurations()[0]
        first = tiny_context.run(config)
        second = tiny_context.run(config)
        assert first is second

    def test_run_named_matches_label(self, tiny_context):
        run = tiny_context.run_named("bt", 4)
        assert run.label == "bt.4"
        assert run.representative_rank == 3

    def test_run_named_adhoc_configuration(self, tiny_context):
        run = tiny_context.run_named("ring-exchange", 4)
        assert run.configuration.workload == "ring-exchange"

    def test_clear(self):
        context = ExperimentContext(seed=1, scale=0.03)
        config = context.configurations()[4]  # a CG cell (cheap)
        context.run(config)
        context.clear()
        assert context._cache == {}


class TestTable1:
    def test_rows_cover_all_configurations(self, tiny_context):
        rows = build_table1(tiny_context)
        assert len(rows) == 19
        assert {row.label for row in rows} == set(PAPER_TABLE1)

    def test_paper_reference_attached(self, tiny_context):
        rows = build_table1(tiny_context)
        by_label = {row.label: row for row in rows}
        assert by_label["bt.9"].paper_p2p == 3651
        assert by_label["is.32"].paper_senders == 32

    def test_structural_shape_matches_paper(self, tiny_context):
        rows = {row.label: row for row in build_table1(tiny_context)}
        # CG is pure point-to-point; IS is collective-dominated.
        assert rows["cg.8"].collective_messages == 0
        assert rows["is.8"].collective_messages > rows["is.8"].p2p_messages
        # LU produces the most p2p messages of all applications at equal scale.
        assert rows["lu.4"].p2p_messages > rows["bt.4"].p2p_messages

    def test_render(self, tiny_context):
        text = render_table1(build_table1(tiny_context))
        assert "bt.9" in text and "paper" in text

    def test_total_messages_property(self, tiny_context):
        row = build_table1(tiny_context)[0]
        assert row.total_messages == row.p2p_messages + row.collective_messages


class TestFigures12:
    def test_figure1_periods(self, tiny_context):
        result = figure1(tiny_context)
        assert result.label == "bt.9"
        assert result.sender_period == 18
        assert result.size_period in (6, 18)
        assert result.distinct_sizes == (3240, 10240, 19440)

    def test_figure1_render(self, tiny_context):
        assert "Figure 1" in figure1(tiny_context).render()

    def test_figure2_same_multiset(self, tiny_context):
        result = figure2(tiny_context)
        assert sorted(result.logical_senders.tolist()) == sorted(
            result.physical_senders.tolist()
        )

    def test_figure2_mismatch_fraction_bounded(self, tiny_context):
        result = figure2(tiny_context)
        assert 0.0 <= result.mismatch_fraction < 0.5

    def test_figure2_render_marks_positions(self, tiny_context):
        assert "reordered positions" in figure2(tiny_context).render()


class TestFigures34:
    def test_figure3_structure(self, tiny_context, bt_configs):
        figure = figure3(tiny_context, configurations=bt_configs)
        assert figure.level == "logical"
        assert figure.labels() == [c.label for c in bt_configs]
        config = figure.config("bt.4")
        assert len(config.sender_accuracy) == 5
        assert all(0.0 <= v <= 100.0 for v in config.sender_accuracy)

    def test_figure4_structure(self, tiny_context, bt_configs):
        figure = figure4(tiny_context, configurations=bt_configs)
        assert figure.level == "physical"
        assert len(figure.configs) == len(bt_configs)

    def test_logical_not_worse_than_physical(self, tiny_context, bt_configs):
        logical = figure3(tiny_context, configurations=bt_configs)
        physical = figure4(tiny_context, configurations=bt_configs)
        assert logical.mean_accuracy("sender", 1) >= physical.mean_accuracy("sender", 1) - 1e-9

    def test_unknown_label_raises(self, tiny_context, bt_configs):
        figure = figure3(tiny_context, configurations=bt_configs)
        with pytest.raises(KeyError):
            figure.config("nope.3")

    def test_render_contains_bars(self, tiny_context, bt_configs):
        text = figure3(tiny_context, configurations=bt_configs).render()
        assert "sender prediction" in text
        assert "#" in text

    def test_custom_predictor_factory(self, tiny_context, bt_configs):
        from repro.core.baselines import LastValuePredictor

        figure = figure3(
            tiny_context, configurations=bt_configs, predictor_factory=LastValuePredictor
        )
        assert figure.configs  # runs without error


class TestExtensions:
    def test_memory_reduction_experiment(self):
        outcome = memory_reduction_experiment(
            workload_name="bt", nprocs=9, scale=0.05, seed=5
        )
        assert outcome["baseline_buffer_bytes_per_rank"] == 8 * 16 * 1024
        assert outcome["predictive_peak_buffer_bytes_per_rank"] < outcome[
            "baseline_buffer_bytes_per_rank"
        ]
        assert outcome["memory_reduction_factor"] > 1.0

    def test_credit_flow_experiment(self):
        outcome = credit_flow_experiment(nprocs=8, scale=0.5, seed=5)
        assert outcome["max_outstanding_credit_bytes"] <= outcome["credit_cap_bytes"]
        assert outcome["predictive_makespan"] > 0

    def test_rendezvous_bypass_experiment(self):
        outcome = rendezvous_bypass_experiment(
            workload_name="ring-exchange", nprocs=4, scale=0.6, seed=5
        )
        assert outcome["bypassed_long_messages"] > 0
        assert outcome["predictive_rendezvous_messages"] < outcome[
            "baseline_rendezvous_messages"
        ]
        assert outcome["speedup_vs_baseline"] > 1.0


class TestAblations:
    def test_window_size_sweep(self, tiny_context):
        rows = window_size_sweep(windows=(8, 32), context=tiny_context)
        assert [row["window_size"] for row in rows] == [8, 32]
        for row in rows:
            assert 0.0 <= row["logical_accuracy"] <= 100.0

    def test_jitter_sensitivity_monotone_reordering(self):
        rows = jitter_sensitivity(jitters=(0.0, 1.0), nprocs=4, scale=0.1, seed=5)
        assert rows[0]["reordered_fraction"] < 0.02
        assert rows[1]["reordered_fraction"] > 2 * rows[0]["reordered_fraction"]

    def test_baseline_comparison_contains_paper_predictor(self, tiny_context):
        rows = baseline_comparison(context=tiny_context, nprocs=9)
        names = {row["predictor"] for row in rows}
        assert "periodicity (paper)" in names
        assert "last-value" in names
        paper_row = next(r for r in rows if r["predictor"] == "periodicity (paper)")
        last_row = next(r for r in rows if r["predictor"] == "last-value")
        assert paper_row["accuracy_plus5"] >= last_row["accuracy_plus5"]

    def test_unordered_accuracy_study(self, tiny_context):
        rows = unordered_accuracy_study(configurations=(("bt", 9),), context=tiny_context)
        assert rows[0]["config"] == "bt.9"
        assert rows[0]["unordered_overlap"] >= rows[0]["ordered_accuracy"] - 1e-9
