"""Tests for the discrete-event simulation engine (repro.sim.engine)."""

import pytest

from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.sim.engine import Simulator
from repro.sim.errors import DeadlockError, ProgramError, SimulationError
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkConfig


def make_sim(nprocs=2, **kwargs):
    kwargs.setdefault("network", NetworkConfig.noiseless(seed=1))
    return Simulator(nprocs=nprocs, seed=1, **kwargs)


class TestBasicPingPong:
    def test_blocking_send_recv(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                yield comm.send(1, 100, tag=5)
            else:
                status = yield comm.recv(source=0, tag=5)
                assert status.source == 0
                assert status.nbytes == 100
                assert status.tag == 5

        result = make_sim().run([program])
        assert result.makespan > 0.0
        assert result.stats.messages_sent == 1

    def test_status_reports_kind_p2p(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                yield comm.send(1, 8)
            else:
                status = yield comm.recv(source=0)
                assert status.kind == "p2p"

        make_sim().run([program])

    def test_multiple_iterations(self):
        counts = {"recv": 0}

        def program(ctx):
            comm = ctx.comm
            other = 1 - ctx.rank
            for i in range(10):
                if ctx.rank == 0:
                    yield comm.send(other, 64, tag=i)
                    yield comm.recv(source=other, tag=i)
                    counts["recv"] += 1
                else:
                    yield comm.recv(source=other, tag=i)
                    yield comm.send(other, 64, tag=i)

        result = make_sim().run([program])
        assert counts["recv"] == 10
        assert result.stats.messages_sent == 20

    def test_wildcard_receive(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                status = yield comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
                assert status.source == 1
            else:
                yield comm.send(0, 32, tag=9)

        make_sim().run([program])


class TestNonBlocking:
    def test_isend_irecv_wait(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                req = yield comm.isend(1, 128, tag=1)
                yield comm.wait(req)
            else:
                req = yield comm.irecv(source=0, tag=1)
                status = yield comm.wait(req)
                assert status.nbytes == 128

        make_sim().run([program])

    def test_waitall_returns_statuses_in_order(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                for i in range(3):
                    yield comm.send(1, 10 * (i + 1), tag=i)
            else:
                reqs = []
                for i in range(3):
                    req = yield comm.irecv(source=0, tag=i)
                    reqs.append(req)
                statuses = yield comm.waitall(reqs)
                assert [s.nbytes for s in statuses] == [10, 20, 30]

        make_sim().run([program])

    def test_wait_on_send_request_returns_none(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                req = yield comm.isend(1, 8)
                outcome = yield comm.wait(req)
                assert outcome is None
            else:
                yield comm.recv(source=0)

        make_sim().run([program])


class TestComputeAndTime:
    def test_compute_advances_local_clock(self):
        def program(ctx):
            yield ctx.comm.compute(1.0)

        result = make_sim(nprocs=1).run([program])
        assert result.makespan == pytest.approx(1.0)
        assert result.rank_finish_times == [pytest.approx(1.0)]

    def test_negative_compute_rejected(self):
        def program(ctx):
            yield ctx.comm.compute(1.0)
            from repro.mpi.ops import ComputeOp

            yield ComputeOp(seconds=-1.0)

        with pytest.raises(ProgramError):
            make_sim(nprocs=1).run([program])

    def test_rank_finish_times_reflect_work(self):
        def program(ctx):
            yield ctx.comm.compute(1.0 if ctx.rank == 0 else 2.0)

        result = make_sim(nprocs=2).run([program])
        assert result.rank_finish_times[1] > result.rank_finish_times[0]

    def test_message_latency_positive(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                yield comm.send(1, 1024)
            else:
                yield comm.recv(source=0)

        result = make_sim().run([program])
        assert result.stats.eager_latency.mean > 0.0


class TestErrors:
    def test_deadlock_detection(self):
        def program(ctx):
            # Both ranks wait for a message that is never sent.
            yield ctx.comm.recv(source=1 - ctx.rank, tag=0)

        with pytest.raises(DeadlockError) as excinfo:
            make_sim().run([program])
        assert set(excinfo.value.blocked_ranks) == {0, 1}

    def test_partial_deadlock_lists_blocked_rank(self):
        def program(ctx):
            if ctx.rank == 0:
                yield ctx.comm.recv(source=1, tag=7)
            else:
                yield ctx.comm.compute(1e-6)

        with pytest.raises(DeadlockError) as excinfo:
            make_sim().run([program])
        assert excinfo.value.blocked_ranks == [0]

    def test_invalid_yield_raises_program_error(self):
        def program(ctx):
            yield "not an operation"

        with pytest.raises(ProgramError):
            make_sim(nprocs=1).run([program])

    def test_non_generator_factory_rejected(self):
        def program(ctx):
            return 42

        with pytest.raises(ProgramError):
            make_sim(nprocs=1).run([program])

    def test_wrong_number_of_programs(self):
        def program(ctx):
            yield ctx.comm.compute(0.0)

        with pytest.raises(ValueError):
            make_sim(nprocs=3).run([program, program])

    def test_max_events_guard(self):
        def program(ctx):
            for _ in range(1000):
                yield ctx.comm.compute(1e-9)

        with pytest.raises(SimulationError):
            make_sim(nprocs=1, max_events=50).run([program])

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            Simulator(nprocs=0)

    def test_application_exception_propagates(self):
        def program(ctx):
            yield ctx.comm.compute(0.0)
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            make_sim(nprocs=1).run([program])


class TestDeterminism:
    def _run(self, seed):
        def program(ctx):
            comm = ctx.comm
            other = 1 - ctx.rank
            for i in range(20):
                yield ctx.comm.compute(1e-6 * ctx.rng.lognormal_factor(0.2))
                if ctx.rank == 0:
                    yield comm.send(other, 64, tag=i)
                    yield comm.recv(source=other, tag=i)
                else:
                    yield comm.recv(source=other, tag=i)
                    yield comm.send(other, 64, tag=i)

        sim = Simulator(nprocs=2, seed=seed, network=NetworkConfig(seed=seed))
        return sim.run([program])

    def test_same_seed_same_makespan(self):
        assert self._run(11).makespan == self._run(11).makespan

    def test_different_seed_different_makespan(self):
        assert self._run(11).makespan != self._run(12).makespan


class TestSimulationResult:
    def test_trace_for_without_tracer_raises(self):
        def program(ctx):
            yield ctx.comm.compute(0.0)

        result = make_sim(nprocs=1, tracer=False).run([program])
        with pytest.raises(SimulationError):
            result.trace_for(0)

    def test_buffer_stats_present_per_rank(self):
        def program(ctx):
            yield ctx.comm.compute(0.0)

        result = make_sim(nprocs=3).run([program])
        assert len(result.buffer_stats) == 3

    def test_events_processed_positive(self):
        def program(ctx):
            yield ctx.comm.compute(0.0)

        result = make_sim(nprocs=1).run([program])
        assert result.events_processed > 0


class TestCollectivesThroughEngine:
    def test_barrier_synchronises(self):
        after = {}

        def program(ctx):
            yield ctx.comm.compute(0.001 * (ctx.rank + 1))
            yield from ctx.comm.barrier()
            after[ctx.rank] = True

        make_sim(nprocs=4).run([program])
        assert len(after) == 4

    def test_bcast_from_nonzero_root(self):
        def program(ctx):
            yield from ctx.comm.bcast(256, root=2)

        result = make_sim(nprocs=4).run([program])
        # Binomial broadcast among 4 ranks sends exactly 3 messages.
        assert result.stats.collective_messages == 3

    def test_allreduce_message_count(self):
        def program(ctx):
            yield from ctx.comm.allreduce(64)

        result = make_sim(nprocs=4).run([program])
        # reduce (3 messages) + broadcast (3 messages)
        assert result.stats.collective_messages == 6

    def test_alltoall_each_rank_receives_all_peers(self):
        def program(ctx):
            yield from ctx.comm.alltoall(32)

        result = make_sim(nprocs=4).run([program])
        assert result.stats.collective_messages == 4 * 3
        for rank in range(4):
            senders = {r.sender for r in result.trace_for(rank).physical}
            assert senders == {p for p in range(4) if p != rank}

    def test_rendezvous_collective_is_deadlock_free(self):
        def program(ctx):
            yield from ctx.comm.alltoall(64 * 1024)  # above the eager threshold

        result = make_sim(nprocs=3).run([program])
        assert result.stats.rendezvous_messages == 6
