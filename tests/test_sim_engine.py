"""Tests for the discrete-event simulation engine (repro.sim.engine)."""

import pytest

from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.sim.engine import Simulator
from repro.sim.errors import DeadlockError, ProgramError, SimulationError
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkConfig


def make_sim(nprocs=2, **kwargs):
    kwargs.setdefault("network", NetworkConfig.noiseless(seed=1))
    return Simulator(nprocs=nprocs, seed=1, **kwargs)


class TestBasicPingPong:
    def test_blocking_send_recv(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                yield comm.send(1, 100, tag=5)
            else:
                status = yield comm.recv(source=0, tag=5)
                assert status.source == 0
                assert status.nbytes == 100
                assert status.tag == 5

        result = make_sim().run([program])
        assert result.makespan > 0.0
        assert result.stats.messages_sent == 1

    def test_status_reports_kind_p2p(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                yield comm.send(1, 8)
            else:
                status = yield comm.recv(source=0)
                assert status.kind == "p2p"

        make_sim().run([program])

    def test_multiple_iterations(self):
        counts = {"recv": 0}

        def program(ctx):
            comm = ctx.comm
            other = 1 - ctx.rank
            for i in range(10):
                if ctx.rank == 0:
                    yield comm.send(other, 64, tag=i)
                    yield comm.recv(source=other, tag=i)
                    counts["recv"] += 1
                else:
                    yield comm.recv(source=other, tag=i)
                    yield comm.send(other, 64, tag=i)

        result = make_sim().run([program])
        assert counts["recv"] == 10
        assert result.stats.messages_sent == 20

    def test_wildcard_receive(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                status = yield comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
                assert status.source == 1
            else:
                yield comm.send(0, 32, tag=9)

        make_sim().run([program])


class TestNonBlocking:
    def test_isend_irecv_wait(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                req = yield comm.isend(1, 128, tag=1)
                yield comm.wait(req)
            else:
                req = yield comm.irecv(source=0, tag=1)
                status = yield comm.wait(req)
                assert status.nbytes == 128

        make_sim().run([program])

    def test_waitall_returns_statuses_in_order(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                for i in range(3):
                    yield comm.send(1, 10 * (i + 1), tag=i)
            else:
                reqs = []
                for i in range(3):
                    req = yield comm.irecv(source=0, tag=i)
                    reqs.append(req)
                statuses = yield comm.waitall(reqs)
                assert [s.nbytes for s in statuses] == [10, 20, 30]

        make_sim().run([program])

    def test_wait_on_send_request_returns_none(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                req = yield comm.isend(1, 8)
                outcome = yield comm.wait(req)
                assert outcome is None
            else:
                yield comm.recv(source=0)

        make_sim().run([program])


class TestComputeAndTime:
    def test_compute_advances_local_clock(self):
        def program(ctx):
            yield ctx.comm.compute(1.0)

        result = make_sim(nprocs=1).run([program])
        assert result.makespan == pytest.approx(1.0)
        assert result.rank_finish_times == [pytest.approx(1.0)]

    def test_negative_compute_rejected(self):
        def program(ctx):
            yield ctx.comm.compute(1.0)
            from repro.mpi.ops import ComputeOp

            yield ComputeOp(seconds=-1.0)

        with pytest.raises(ProgramError):
            make_sim(nprocs=1).run([program])

    def test_rank_finish_times_reflect_work(self):
        def program(ctx):
            yield ctx.comm.compute(1.0 if ctx.rank == 0 else 2.0)

        result = make_sim(nprocs=2).run([program])
        assert result.rank_finish_times[1] > result.rank_finish_times[0]

    def test_message_latency_positive(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                yield comm.send(1, 1024)
            else:
                yield comm.recv(source=0)

        result = make_sim().run([program])
        assert result.stats.eager_latency.mean > 0.0


class TestSingleUse:
    def test_second_run_raises(self):
        """Regression: a second run() used to silently reuse stale clock and
        transport state; it must fail loudly now."""

        def program(ctx):
            yield ctx.comm.compute(1.0)

        sim = make_sim(nprocs=1)
        first = sim.run([program])
        assert first.makespan == pytest.approx(1.0)
        with pytest.raises(SimulationError, match="single-use"):
            sim.run([program])

    def test_invalid_programs_list_does_not_consume_instance(self):
        """A wrong-length programs list is rejected before any state is
        consumed, so a corrected retry on the same instance must work."""

        def program(ctx):
            yield ctx.comm.compute(1.0)

        sim = make_sim(nprocs=2)
        with pytest.raises(ValueError, match="program factories"):
            sim.run([program, program, program])
        result = sim.run([program])
        assert result.makespan == pytest.approx(1.0)

    def test_failed_run_still_marks_instance_used(self):
        def bad_program(ctx):
            yield ctx.comm.compute(0.0)
            raise RuntimeError("boom")

        def good_program(ctx):
            yield ctx.comm.compute(0.0)

        sim = make_sim(nprocs=1)
        with pytest.raises(RuntimeError):
            sim.run([bad_program])
        with pytest.raises(SimulationError, match="single-use"):
            sim.run([good_program])


class TestBurstDelivery:
    def test_same_time_deliveries_reach_policy_as_burst(self):
        """Deliveries landing at one receiver at one timestamp arrive as a
        single on_burst_delivered call; lone deliveries keep the per-message
        hook."""
        from repro.runtime.protocol import StandardFlowControl

        class RecordingPolicy(StandardFlowControl):
            name = "recording"

            def __init__(self):
                self.single = []
                self.bursts = []

            def on_message_delivered(self, dst, src, nbytes, tag, kind, now):
                self.single.append((dst, src, nbytes))

            def on_burst_delivered(self, dst, messages, now):
                self.bursts.append((dst, list(messages)))

        policy = RecordingPolicy()
        # A noiseless, contention-free network delivers equal-size messages
        # posted at the same time at exactly the same timestamp.
        network = NetworkConfig.noiseless(seed=1)

        def program(ctx):
            if ctx.rank == 2:
                yield ctx.comm.recv(source=0, tag=0)
                yield ctx.comm.recv(source=1, tag=0)
            else:
                yield ctx.comm.send(2, 64, tag=0)

        sim = Simulator(nprocs=3, seed=1, network=network, policy=policy)
        sim.run([program])
        assert policy.bursts, "expected at least one coalesced burst"
        dst, messages = policy.bursts[0]
        assert dst == 2
        assert [(src, nbytes) for src, nbytes, _, _ in messages] == [(0, 64), (1, 64)]

    def test_burst_results_match_per_message_results(self):
        """The burst fast lane must not change any simulated output."""

        def program(ctx):
            comm = ctx.comm
            for _ in range(3):
                yield from comm.alltoall(512)
                yield from comm.allreduce(64)

        def run_once(force_fallback):
            sim = Simulator(nprocs=4, seed=7, network=NetworkConfig(seed=7))
            if force_fallback:
                # Disable typed delivery events: every delivery goes through
                # the legacy one-message closure path.
                sim.transport._schedule_delivery = None
            return sim.run([program])

        burst = run_once(force_fallback=False)
        fallback = run_once(force_fallback=True)
        assert burst.makespan == fallback.makespan
        assert burst.rank_finish_times == fallback.rank_finish_times
        assert burst.stats.summary() == fallback.stats.summary()


class TestErrors:
    def test_deadlock_detection(self):
        def program(ctx):
            # Both ranks wait for a message that is never sent.
            yield ctx.comm.recv(source=1 - ctx.rank, tag=0)

        with pytest.raises(DeadlockError) as excinfo:
            make_sim().run([program])
        assert set(excinfo.value.blocked_ranks) == {0, 1}

    def test_partial_deadlock_lists_blocked_rank(self):
        def program(ctx):
            if ctx.rank == 0:
                yield ctx.comm.recv(source=1, tag=7)
            else:
                yield ctx.comm.compute(1e-6)

        with pytest.raises(DeadlockError) as excinfo:
            make_sim().run([program])
        assert excinfo.value.blocked_ranks == [0]

    def test_invalid_yield_raises_program_error(self):
        def program(ctx):
            yield "not an operation"

        with pytest.raises(ProgramError):
            make_sim(nprocs=1).run([program])

    def test_non_generator_factory_rejected(self):
        def program(ctx):
            return 42

        with pytest.raises(ProgramError):
            make_sim(nprocs=1).run([program])

    def test_wrong_number_of_programs(self):
        def program(ctx):
            yield ctx.comm.compute(0.0)

        with pytest.raises(ValueError):
            make_sim(nprocs=3).run([program, program])

    def test_max_events_guard(self):
        def program(ctx):
            for _ in range(1000):
                yield ctx.comm.compute(1e-9)

        with pytest.raises(SimulationError, match="max_events"):
            make_sim(nprocs=1, max_events=50).run([program])

    def test_max_events_guard_zero_delay_livelock(self):
        """Zero-cost self-resumes ride the fast lane but still hit the guard."""

        def program(ctx):
            while True:
                yield ctx.comm.compute(0.0)

        with pytest.raises(SimulationError, match="max_events"):
            make_sim(nprocs=1, max_events=100).run([program])

    def test_time_backwards_event_rejected(self):
        """An event behind the global clock (only possible by bypassing the
        schedule_at clamp) aborts the simulation instead of corrupting it."""

        def program(ctx):
            yield ctx.comm.compute(1.0)

        sim = make_sim(nprocs=1)
        sim._queue.push(0.5, lambda: sim._queue.push(0.1, lambda: None))
        with pytest.raises(SimulationError, match="time went backwards"):
            sim.run([program])

    def test_deadlock_report_includes_pending_queues(self):
        def program(ctx):
            if ctx.rank == 0:
                yield ctx.comm.recv(source=1, tag=3)
            else:
                yield ctx.comm.compute(1e-6)

        with pytest.raises(DeadlockError, match="pending queues"):
            make_sim().run([program])

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            Simulator(nprocs=0)

    def test_application_exception_propagates(self):
        def program(ctx):
            yield ctx.comm.compute(0.0)
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            make_sim(nprocs=1).run([program])


class TestDeterminism:
    def _run(self, seed):
        def program(ctx):
            comm = ctx.comm
            other = 1 - ctx.rank
            for i in range(20):
                yield ctx.comm.compute(1e-6 * ctx.rng.lognormal_factor(0.2))
                if ctx.rank == 0:
                    yield comm.send(other, 64, tag=i)
                    yield comm.recv(source=other, tag=i)
                else:
                    yield comm.recv(source=other, tag=i)
                    yield comm.send(other, 64, tag=i)

        sim = Simulator(nprocs=2, seed=seed, network=NetworkConfig(seed=seed))
        return sim.run([program])

    def test_same_seed_same_makespan(self):
        assert self._run(11).makespan == self._run(11).makespan

    def test_different_seed_different_makespan(self):
        assert self._run(11).makespan != self._run(12).makespan


class TestSimulationResult:
    def test_trace_for_without_tracer_raises(self):
        def program(ctx):
            yield ctx.comm.compute(0.0)

        result = make_sim(nprocs=1, tracer=False).run([program])
        with pytest.raises(SimulationError):
            result.trace_for(0)

    def test_buffer_stats_present_per_rank(self):
        def program(ctx):
            yield ctx.comm.compute(0.0)

        result = make_sim(nprocs=3).run([program])
        assert len(result.buffer_stats) == 3

    def test_events_processed_positive(self):
        def program(ctx):
            yield ctx.comm.compute(0.0)

        result = make_sim(nprocs=1).run([program])
        assert result.events_processed > 0


class TestCollectivesThroughEngine:
    def test_barrier_synchronises(self):
        after = {}

        def program(ctx):
            yield ctx.comm.compute(0.001 * (ctx.rank + 1))
            yield from ctx.comm.barrier()
            after[ctx.rank] = True

        make_sim(nprocs=4).run([program])
        assert len(after) == 4

    def test_bcast_from_nonzero_root(self):
        def program(ctx):
            yield from ctx.comm.bcast(256, root=2)

        result = make_sim(nprocs=4).run([program])
        # Binomial broadcast among 4 ranks sends exactly 3 messages.
        assert result.stats.collective_messages == 3

    def test_allreduce_message_count(self):
        def program(ctx):
            yield from ctx.comm.allreduce(64)

        result = make_sim(nprocs=4).run([program])
        # reduce (3 messages) + broadcast (3 messages)
        assert result.stats.collective_messages == 6

    def test_alltoall_each_rank_receives_all_peers(self):
        def program(ctx):
            yield from ctx.comm.alltoall(32)

        result = make_sim(nprocs=4).run([program])
        assert result.stats.collective_messages == 4 * 3
        for rank in range(4):
            senders = {r.sender for r in result.trace_for(rank).physical}
            assert senders == {p for p in range(4) if p != rank}

    def test_rendezvous_collective_is_deadlock_free(self):
        def program(ctx):
            yield from ctx.comm.alltoall(64 * 1024)  # above the eager threshold

        result = make_sim(nprocs=3).run([program])
        assert result.stats.rendezvous_messages == 6


class TestDrainCancellation:
    """Same-cohort cancellation through the inlined run-loop drains.

    Both run loops pop record by record (scalar directly, vectorised via the
    cohort collector), so a callback cancelling a *later* record at the same
    timestamp keeps that record from ever executing or being counted — the
    engine never needs ``discount_cancelled`` (the ``pop_batch`` caveat is a
    queue-API contract, not an engine behaviour).
    """

    @staticmethod
    def _empty_program(ctx):
        if False:
            yield None

    def _plant(self, sim, fired):
        holder = {}

        def canceller():
            fired.append("canceller")
            sim._queue.cancel(holder["victim"])

        sim._queue.push(5.0, canceller)
        holder["victim"] = sim._queue.push(5.0, lambda: fired.append("victim"))

    def test_scalar_drain_skips_same_cohort_cancelled(self):
        fired = []
        sim = make_sim(nprocs=1, tracer=False)
        self._plant(sim, fired)
        result = sim.run([self._empty_program])
        assert fired == ["canceller"]
        # One step per rank plus the canceller; the victim is never counted.
        assert result.events_processed == 2

    def test_vectorised_drain_skips_same_cohort_cancelled(self):
        from repro.workloads.registry import create_workload

        workload = create_workload("bt", 4, scale=0.02)
        results = []
        for engine in ("scalar", "vectorised"):
            fired = []
            sim = Simulator(
                nprocs=4,
                seed=1,
                network=NetworkConfig.noiseless(seed=1),
                tracer=False,
                engine=engine,
            )
            self._plant(sim, fired)
            results.append(sim.run([workload.program_for]))
            assert fired == ["canceller"]
        scalar, vectorised = results
        assert vectorised.events_processed == scalar.events_processed
        assert vectorised.makespan == scalar.makespan
