"""Tests for the versioned shard snapshot format (repro.serve.snapshot).

The contract: snapshot → restore → bit-identical subsequent predictions
(shard level and whole-service level); every structural violation —
corruption, truncation, a future format version — raises a
:class:`SnapshotError` naming the file, the shard and the byte offset of
the damage; and writes are atomic (tmp + rename, manifest last).
"""

import json
import struct

import pytest

from repro.serve.service import MANIFEST_NAME, ServeService
from repro.serve.shard import Shard
from repro.serve.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    iter_snapshot_files,
    load_snapshot,
    write_snapshot,
)

SPEC = "periodicity:window=6,max_period=12,horizon=4"

#: A few streams with distinct periodic patterns (keys chosen to spread
#: over shards under CRC32 routing).
PATTERNS = {
    "alpha": [(1, 100), (2, 200)],
    "beta": [(3, 300), (4, 400), (5, 500)],
    "gamma": [(6, 64)],
}


def build_shard(**kwargs):
    shard = Shard(0, 1, SPEC, **kwargs)
    for key, pattern in PATTERNS.items():
        for _ in range(12):
            for sender, nbytes in pattern:
                shard.observe(key, sender, nbytes)
    return shard


def shard_answers(shard):
    return {
        key: (shard.predict(key), shard.expects(key, pattern[0][0]))
        for key, pattern in PATTERNS.items()
    }


class TestShardRoundTrip:
    def test_restore_is_bit_identical(self, tmp_path):
        shard = build_shard()
        before = shard_answers(shard)
        shard.snapshot(tmp_path / "shard-00.snap")
        restored = Shard.restore(tmp_path / "shard-00.snap")
        assert shard_answers(restored) == before

    def test_restore_then_continue_matches_uninterrupted(self, tmp_path):
        # The strong form: a restored shard fed more traffic stays in
        # lockstep with a shard that never stopped.
        original = build_shard()
        original.snapshot(tmp_path / "s.snap")
        restored = Shard.restore(tmp_path / "s.snap")
        for shard in (original, restored):
            for _ in range(5):
                for sender, nbytes in PATTERNS["alpha"]:
                    shard.observe("alpha", sender, nbytes)
        assert shard_answers(restored) == shard_answers(original)

    def test_counters_and_lru_order_survive(self, tmp_path):
        shard = build_shard(max_streams=16)
        shard.predict("alpha")  # touch: alpha becomes hottest
        shard.snapshot(tmp_path / "s.snap")
        restored = Shard.restore(tmp_path / "s.snap")
        assert restored.observations == shard.observations
        assert list(restored.table.keys()) == list(shard.table.keys())
        assert restored.table.streams_created == shard.table.streams_created
        assert restored.spec == shard.spec
        assert restored.table.max_streams == 16
        assert restored.table.resident_bytes > 0

    def test_snapshot_is_atomic(self, tmp_path):
        shard = build_shard()
        target = tmp_path / "s.snap"
        shard.snapshot(target)
        first = target.read_bytes()
        shard.observe("alpha", 1, 100)
        shard.snapshot(target)  # overwrite in place
        assert not (tmp_path / "s.snap.tmp").exists()
        assert target.read_bytes() != first
        Shard.restore(target)  # still structurally valid


class TestStructuralErrors:
    def snapshot_bytes(self, tmp_path):
        shard = build_shard()
        target = tmp_path / "shard-00.snap"
        shard.snapshot(target)
        return target, bytearray(target.read_bytes())

    def test_corrupted_blob_names_shard_and_offset(self, tmp_path):
        target, data = self.snapshot_bytes(tmp_path)
        # Flip one byte deep inside the first pickled predictor blob.
        data[len(data) // 2] ^= 0xFF
        target.write_bytes(data)
        with pytest.raises(SnapshotError) as excinfo:
            load_snapshot(target)
        error = excinfo.value
        assert error.shard == 0
        assert error.offset is not None and error.offset > 0
        assert "shard 0" in str(error)
        assert f"at offset {error.offset}" in str(error)
        assert "CRC mismatch" in str(error)

    def test_truncated_snapshot_names_shard_and_offset(self, tmp_path):
        target, data = self.snapshot_bytes(tmp_path)
        target.write_bytes(bytes(data[: len(data) // 2]))
        with pytest.raises(SnapshotError) as excinfo:
            load_snapshot(target)
        assert "truncated" in str(excinfo.value)
        assert excinfo.value.shard == 0
        assert excinfo.value.offset is not None

    def test_missing_trailer_rejected(self, tmp_path):
        target, data = self.snapshot_bytes(tmp_path)
        target.write_bytes(bytes(data[:-1]))  # trailer cut short
        with pytest.raises(SnapshotError, match="truncated|trailer"):
            load_snapshot(target)

    def test_trailing_garbage_rejected(self, tmp_path):
        target, data = self.snapshot_bytes(tmp_path)
        target.write_bytes(bytes(data) + b"junk")
        with pytest.raises(SnapshotError, match="trailing bytes"):
            load_snapshot(target)

    def test_future_version_rejected_cleanly(self, tmp_path):
        target, data = self.snapshot_bytes(tmp_path)
        struct.pack_into("<I", data, 12, SNAPSHOT_VERSION + 41)  # version field
        target.write_bytes(data)
        with pytest.raises(SnapshotError) as excinfo:
            load_snapshot(target)
        message = str(excinfo.value)
        assert f"version {SNAPSHOT_VERSION + 41}" in message
        assert f"supported version {SNAPSHOT_VERSION}" in message
        assert excinfo.value.offset == 12

    def test_bad_magic_rejected(self, tmp_path):
        target = tmp_path / "s.snap"
        target.write_bytes(b"NOTASNAPSHOT" + b"\x00" * 64)
        with pytest.raises(SnapshotError, match="bad magic"):
            load_snapshot(target)

    def test_missing_file_raises_snapshot_error(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot open"):
            load_snapshot(tmp_path / "absent.snap")

    def test_header_must_describe_a_shard(self, tmp_path):
        target = tmp_path / "s.snap"
        write_snapshot(target, {"not_a_shard": True}, [])
        with pytest.raises(SnapshotError, match="header does not describe a shard"):
            Shard.restore(target)


class TestServiceRoundTrip:
    def build_service(self):
        service = ServeService(SPEC, num_shards=3)
        for key, pattern in PATTERNS.items():
            for _ in range(12):
                for sender, nbytes in pattern:
                    service.observe(key, sender, nbytes)
        return service

    def answers(self, service):
        return {key: service.predict(key) for key in PATTERNS}

    def test_restore_reproduces_service(self, tmp_path):
        service = self.build_service()
        manifest = service.snapshot(tmp_path)
        assert manifest["streams"] == len(PATTERNS)
        assert len(list(iter_snapshot_files(tmp_path))) == 3
        restored = ServeService.restore(tmp_path)
        assert restored.num_shards == 3
        assert self.answers(restored) == self.answers(service)
        assert restored.stats()["observations"] == service.stats()["observations"]

    def test_manifest_written_last(self, tmp_path):
        self.build_service().snapshot(tmp_path)
        names = {p.name for p in tmp_path.iterdir()}
        assert MANIFEST_NAME in names
        assert not any(name.endswith(".tmp") for name in names)

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot open"):
            ServeService.restore(tmp_path)

    def test_wrong_manifest_format_rejected(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"format": "other"}))
        with pytest.raises(SnapshotError, match="not a repro-serve-manifest"):
            ServeService.restore(tmp_path)

    def test_future_manifest_version_rejected(self, tmp_path):
        service = self.build_service()
        service.snapshot(tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        manifest["version"] = 99
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="newer than the supported version"):
            ServeService.restore(tmp_path)

    def test_shard_count_mismatch_rejected(self, tmp_path):
        service = self.build_service()
        service.snapshot(tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        manifest["shards"] = manifest["shards"][:-1]
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="num_shards"):
            ServeService.restore(tmp_path)

    def test_shard_identity_mismatch_rejected(self, tmp_path):
        service = self.build_service()
        service.snapshot(tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        # Swap two shard files: their headers no longer match their position.
        manifest["shards"][0], manifest["shards"][1] = (
            manifest["shards"][1],
            manifest["shards"][0],
        )
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="does not match its manifest position"):
            ServeService.restore(tmp_path)
