"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import SeededRNG, derive_seed, spawn_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_different_keys_differ(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_different_base_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_key_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_non_negative_63_bit(self):
        for seed in (0, 1, 2**40, 123456789):
            value = derive_seed(seed, "x")
            assert 0 <= value < 2**63

    def test_no_keys(self):
        assert derive_seed(7) == derive_seed(7)


class TestSpawnRng:
    def test_returns_generator(self):
        assert isinstance(spawn_rng(3, "net"), np.random.Generator)

    def test_same_path_same_stream(self):
        a = spawn_rng(3, "net").random(5)
        b = spawn_rng(3, "net").random(5)
        assert np.allclose(a, b)

    def test_different_path_different_stream(self):
        a = spawn_rng(3, "net").random(5)
        b = spawn_rng(3, "other").random(5)
        assert not np.allclose(a, b)


class TestSeededRNG:
    def test_reproducible(self):
        a = SeededRNG(5, "x")
        b = SeededRNG(5, "x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_random_in_unit_interval(self):
        rng = SeededRNG(1)
        for _ in range(100):
            assert 0.0 <= rng.random() < 1.0

    def test_integers_range(self):
        rng = SeededRNG(1)
        values = {rng.integers(0, 5) for _ in range(200)}
        assert values <= {0, 1, 2, 3, 4}
        assert len(values) > 1

    def test_choice(self):
        rng = SeededRNG(1)
        assert rng.choice([42]) == 42
        assert rng.choice(["a", "b"]) in ("a", "b")

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            SeededRNG(1).choice([])

    def test_shuffle_preserves_elements(self):
        rng = SeededRNG(1)
        data = list(range(20))
        shuffled = list(data)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == data

    def test_jitter_non_negative(self):
        rng = SeededRNG(2)
        assert all(rng.jitter(1e-6) >= 0.0 for _ in range(100))

    def test_jitter_zero_scale(self):
        assert SeededRNG(2).jitter(0.0) == 0.0
        assert SeededRNG(2).jitter(-1.0) == 0.0

    def test_lognormal_factor_positive(self):
        rng = SeededRNG(2)
        assert all(rng.lognormal_factor(0.3) > 0.0 for _ in range(100))

    def test_lognormal_factor_zero_sigma_is_one(self):
        assert SeededRNG(2).lognormal_factor(0.0) == 1.0

    def test_exponential_zero_mean(self):
        assert SeededRNG(2).exponential(0.0) == 0.0

    def test_exponential_positive(self):
        rng = SeededRNG(2)
        assert all(rng.exponential(1.0) >= 0.0 for _ in range(50))

    def test_bernoulli_extremes(self):
        rng = SeededRNG(2)
        assert rng.bernoulli(1.0) is True
        assert rng.bernoulli(0.0) is False

    def test_bernoulli_probability(self):
        rng = SeededRNG(2)
        hits = sum(rng.bernoulli(0.5) for _ in range(2000))
        assert 800 < hits < 1200

    def test_child_is_independent_but_deterministic(self):
        parent = SeededRNG(9, "p")
        child_a = parent.child("c")
        child_b = SeededRNG(9, "p").child("c")
        assert child_a.random() == child_b.random()

    def test_normal(self):
        rng = SeededRNG(3)
        samples = [rng.normal(10.0, 0.1) for _ in range(100)]
        assert 9.5 < sum(samples) / len(samples) < 10.5
