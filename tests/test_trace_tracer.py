"""Tests for the two-level tracer (repro.trace.tracer)."""

import pytest

from repro.trace.tracer import TwoLevelTracer


class TestTracerHooks:
    def test_logical_records_follow_post_order(self):
        tracer = TwoLevelTracer(nprocs=1)
        # Post two receives, match them in reverse completion order: logical
        # stream must still follow posting order.
        tracer.on_recv_posted(0, req_id=10, time=0.0)
        tracer.on_recv_posted(0, req_id=11, time=0.1)
        tracer.on_recv_matched(0, req_id=11, sender=2, nbytes=200, tag=0, kind="p2p", time=0.5)
        tracer.on_recv_matched(0, req_id=10, sender=1, nbytes=100, tag=0, kind="p2p", time=0.6)
        trace = tracer.trace_for(0)
        assert [r.sender for r in trace.logical] == [1, 2]
        assert [r.seq for r in trace.logical] == [0, 1]

    def test_physical_records_follow_arrival_time(self):
        tracer = TwoLevelTracer(nprocs=1)
        tracer.on_message_arrival(0, sender=5, nbytes=10, tag=0, kind="p2p", time=2.0)
        tracer.on_message_arrival(0, sender=6, nbytes=10, tag=0, kind="p2p", time=1.0)
        trace = tracer.trace_for(0)
        assert [r.sender for r in trace.physical] == [6, 5]

    def test_unannounced_match_appended(self):
        tracer = TwoLevelTracer(nprocs=1)
        tracer.on_recv_matched(0, req_id=99, sender=3, nbytes=64, tag=1, kind="p2p", time=1.0)
        assert [r.sender for r in tracer.trace_for(0).logical] == [3]

    def test_collectives_can_be_excluded(self):
        tracer = TwoLevelTracer(nprocs=1, record_collectives=False)
        tracer.on_recv_posted(0, req_id=1, time=0.0)
        tracer.on_recv_matched(0, req_id=1, sender=1, nbytes=8, tag=0, kind="collective", time=0.1)
        tracer.on_message_arrival(0, sender=1, nbytes=8, tag=0, kind="collective", time=0.1)
        trace = tracer.trace_for(0)
        assert trace.logical == [] and trace.physical == []

    def test_unmatched_receives_counted(self):
        tracer = TwoLevelTracer(nprocs=2)
        tracer.on_recv_posted(1, req_id=1, time=0.0)
        assert tracer.unmatched_receives(1) == 1
        tracer.on_recv_matched(1, req_id=1, sender=0, nbytes=1, tag=0, kind="p2p", time=0.1)
        assert tracer.unmatched_receives(1) == 0

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            TwoLevelTracer(nprocs=0)

    def test_trace_for_invalid_rank(self):
        with pytest.raises(ValueError):
            TwoLevelTracer(nprocs=2).trace_for(2)

    def test_traces_property_returns_all(self):
        tracer = TwoLevelTracer(nprocs=3)
        assert [t.rank for t in tracer.traces] == [0, 1, 2]

    def test_finalize_idempotent(self):
        tracer = TwoLevelTracer(nprocs=1)
        tracer.on_message_arrival(0, sender=1, nbytes=1, tag=0, kind="p2p", time=1.0)
        tracer.finalize()
        tracer.finalize()
        assert len(tracer.trace_for(0).physical) == 1

    def test_hooks_after_finalize_raise(self):
        tracer = TwoLevelTracer(nprocs=1)
        tracer.on_recv_posted(0, req_id=1, time=0.0)
        tracer.on_recv_matched(0, req_id=1, sender=1, nbytes=8, tag=0, kind="p2p", time=0.1)
        tracer.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            tracer.on_recv_posted(0, req_id=2, time=0.2)
        with pytest.raises(RuntimeError, match="finalized"):
            tracer.on_recv_matched(0, req_id=2, sender=1, nbytes=8, tag=0, kind="p2p", time=0.3)
        with pytest.raises(RuntimeError, match="finalized"):
            tracer.on_message_arrival(0, sender=1, nbytes=8, tag=0, kind="p2p", time=0.3)
        # The already-recorded stream is untouched by the rejected calls.
        assert len(tracer.trace_for(0).logical) == 1

    def test_trace_for_seals_recording(self):
        tracer = TwoLevelTracer(nprocs=1)
        tracer.trace_for(0)  # implicit finalize
        with pytest.raises(RuntimeError, match="finalized"):
            tracer.on_message_arrival(0, sender=1, nbytes=1, tag=0, kind="p2p", time=1.0)

    def test_out_of_range_sender_or_tag_rejected(self):
        tracer = TwoLevelTracer(nprocs=1)
        with pytest.raises(ValueError, match="meta-column range"):
            tracer.on_message_arrival(
                0, sender=2**31, nbytes=1, tag=0, kind="p2p", time=1.0
            )
        with pytest.raises(ValueError, match="meta-column range"):
            tracer.on_recv_matched(
                0, req_id=9, sender=0, nbytes=1, tag=2**31, kind="p2p", time=1.0
            )


class TestColumnarStore:
    """The columnar store and its lazy record views agree with record lists."""

    def test_record_views_match_appended_data(self):
        tracer = TwoLevelTracer(nprocs=1)
        expected = []
        for i in range(20):
            sender = i % 3
            nbytes = 64 * (1 + i % 4)
            kind = "collective" if i % 5 == 0 else "p2p"
            arrival = 1.0 - i * 0.01  # reverse time order: sort() must fix it
            tracer.on_message_arrival(0, sender, nbytes, tag=i % 2, kind=kind, time=arrival)
            expected.append((sender, nbytes, i % 2, kind, arrival))
        trace = tracer.trace_for(0)
        # Canonical physical order is (time, sender, tag); seq is the
        # canonical stream position, not the insertion index.
        expected.sort(key=lambda t: t[4])
        expected = [rec + (pos,) for pos, rec in enumerate(expected)]
        assert [
            (r.sender, r.nbytes, r.tag, r.kind, r.time, r.seq) for r in trace.physical
        ] == expected
        assert all(r.receiver == 0 for r in trace.physical)

    def test_sequence_protocol(self):
        tracer = TwoLevelTracer(nprocs=1)
        for i in range(5):
            tracer.on_message_arrival(0, sender=i, nbytes=8, tag=0, kind="p2p", time=float(i))
        physical = tracer.trace_for(0).physical
        assert len(physical) == 5
        assert physical[0].sender == 0 and physical[-1].sender == 4
        assert [r.sender for r in physical[1:3]] == [1, 2]
        assert physical == list(physical)
        with pytest.raises(IndexError):
            physical[5]

    def test_records_list_is_callers_to_mutate(self):
        tracer = TwoLevelTracer(nprocs=1)
        tracer.on_message_arrival(0, sender=1, nbytes=8, tag=0, kind="p2p", time=1.0)
        tracer.on_message_arrival(0, sender=2, nbytes=8, tag=0, kind="p2p", time=2.0)
        physical = tracer.trace_for(0).physical
        view = physical.records()
        view.reverse()
        view.pop()
        # Caller mutations never leak back into the column store.
        assert [r.sender for r in physical] == [1, 2]
        assert physical[0].sender == 1

    def test_unknown_kind_rejected_with_clear_error(self):
        from repro.trace.columns import TraceColumns

        columns = TraceColumns(receiver=0)
        with pytest.raises(ValueError, match="unsupported record kind"):
            columns.append(1, 8, 0, "rma", 1.0, 0)

    def test_numpy_column_accessors(self):
        import numpy as np

        tracer = TwoLevelTracer(nprocs=1)
        tracer.on_message_arrival(0, sender=2, nbytes=100, tag=7, kind="collective", time=0.5)
        tracer.on_message_arrival(0, sender=1, nbytes=50, tag=3, kind="p2p", time=0.25)
        physical = tracer.trace_for(0).physical
        assert physical.sender_array().tolist() == [1, 2]
        assert physical.size_array().tolist() == [50, 100]
        assert physical.tag_array().tolist() == [3, 7]
        assert physical.kind_code_array().tolist() == [0, 1]
        assert np.allclose(physical.time_array(), [0.25, 0.5])
        # seq is the canonical (time-sorted) stream position.
        assert physical.seq_array().tolist() == [0, 1]


class TestTraceRecordsFromSimulation:
    def test_logical_matches_program_order(self, noiseless_bt4_run):
        workload, result = noiseless_bt4_run
        trace = result.trace_for(0)
        assert [r.seq for r in trace.logical] == sorted(r.seq for r in trace.logical)

    def test_physical_sorted_by_time(self, noiseless_bt4_run):
        _, result = noiseless_bt4_run
        trace = result.trace_for(0)
        times = [r.time for r in trace.physical]
        assert times == sorted(times)

    def test_same_multiset_at_both_levels(self, bt4_run):
        _, result = bt4_run
        for rank in range(4):
            trace = result.trace_for(rank)
            logical = sorted((r.sender, r.nbytes) for r in trace.logical)
            physical = sorted((r.sender, r.nbytes) for r in trace.physical)
            assert logical == physical

    def test_receiver_field_is_rank(self, bt4_run):
        _, result = bt4_run
        for rank in range(4):
            assert all(r.receiver == rank for r in result.trace_for(rank).logical)
