"""Tests for the two-level tracer (repro.trace.tracer)."""

import pytest

from repro.trace.tracer import TwoLevelTracer


class TestTracerHooks:
    def test_logical_records_follow_post_order(self):
        tracer = TwoLevelTracer(nprocs=1)
        # Post two receives, match them in reverse completion order: logical
        # stream must still follow posting order.
        tracer.on_recv_posted(0, req_id=10, time=0.0)
        tracer.on_recv_posted(0, req_id=11, time=0.1)
        tracer.on_recv_matched(0, req_id=11, sender=2, nbytes=200, tag=0, kind="p2p", time=0.5)
        tracer.on_recv_matched(0, req_id=10, sender=1, nbytes=100, tag=0, kind="p2p", time=0.6)
        trace = tracer.trace_for(0)
        assert [r.sender for r in trace.logical] == [1, 2]
        assert [r.seq for r in trace.logical] == [0, 1]

    def test_physical_records_follow_arrival_time(self):
        tracer = TwoLevelTracer(nprocs=1)
        tracer.on_message_arrival(0, sender=5, nbytes=10, tag=0, kind="p2p", time=2.0)
        tracer.on_message_arrival(0, sender=6, nbytes=10, tag=0, kind="p2p", time=1.0)
        trace = tracer.trace_for(0)
        assert [r.sender for r in trace.physical] == [6, 5]

    def test_unannounced_match_appended(self):
        tracer = TwoLevelTracer(nprocs=1)
        tracer.on_recv_matched(0, req_id=99, sender=3, nbytes=64, tag=1, kind="p2p", time=1.0)
        assert [r.sender for r in tracer.trace_for(0).logical] == [3]

    def test_collectives_can_be_excluded(self):
        tracer = TwoLevelTracer(nprocs=1, record_collectives=False)
        tracer.on_recv_posted(0, req_id=1, time=0.0)
        tracer.on_recv_matched(0, req_id=1, sender=1, nbytes=8, tag=0, kind="collective", time=0.1)
        tracer.on_message_arrival(0, sender=1, nbytes=8, tag=0, kind="collective", time=0.1)
        trace = tracer.trace_for(0)
        assert trace.logical == [] and trace.physical == []

    def test_unmatched_receives_counted(self):
        tracer = TwoLevelTracer(nprocs=2)
        tracer.on_recv_posted(1, req_id=1, time=0.0)
        assert tracer.unmatched_receives(1) == 1
        tracer.on_recv_matched(1, req_id=1, sender=0, nbytes=1, tag=0, kind="p2p", time=0.1)
        assert tracer.unmatched_receives(1) == 0

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            TwoLevelTracer(nprocs=0)

    def test_trace_for_invalid_rank(self):
        with pytest.raises(ValueError):
            TwoLevelTracer(nprocs=2).trace_for(2)

    def test_traces_property_returns_all(self):
        tracer = TwoLevelTracer(nprocs=3)
        assert [t.rank for t in tracer.traces] == [0, 1, 2]

    def test_finalize_idempotent(self):
        tracer = TwoLevelTracer(nprocs=1)
        tracer.on_message_arrival(0, sender=1, nbytes=1, tag=0, kind="p2p", time=1.0)
        tracer.finalize()
        tracer.finalize()
        assert len(tracer.trace_for(0).physical) == 1


class TestTraceRecordsFromSimulation:
    def test_logical_matches_program_order(self, noiseless_bt4_run):
        workload, result = noiseless_bt4_run
        trace = result.trace_for(0)
        assert [r.seq for r in trace.logical] == sorted(r.seq for r in trace.logical)

    def test_physical_sorted_by_time(self, noiseless_bt4_run):
        _, result = noiseless_bt4_run
        trace = result.trace_for(0)
        times = [r.time for r in trace.physical]
        assert times == sorted(times)

    def test_same_multiset_at_both_levels(self, bt4_run):
        _, result = bt4_run
        for rank in range(4):
            trace = result.trace_for(rank)
            logical = sorted((r.sender, r.nbytes) for r in trace.logical)
            physical = sorted((r.sender, r.nbytes) for r in trace.physical)
            assert logical == physical

    def test_receiver_field_is_rank(self, bt4_run):
        _, result = bt4_run
        for rank in range(4):
            assert all(r.receiver == rank for r in result.trace_for(rank).logical)
