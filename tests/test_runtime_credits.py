"""Tests for credit bookkeeping (repro.runtime.credits)."""

import pytest

from repro.runtime.credits import CreditManager


class TestCreditManager:
    def test_grant_and_available(self):
        manager = CreditManager()
        manager.grant(0, 1, 1000)
        assert manager.available(0, 1) == 1000
        assert manager.available(1, 0) == 0

    def test_consume_reduces_available(self):
        manager = CreditManager()
        manager.grant(0, 1, 1000)
        assert manager.try_consume(0, 1, 400) is True
        assert manager.available(0, 1) == 600

    def test_consume_without_credit_denied(self):
        manager = CreditManager()
        assert manager.try_consume(0, 1, 10) is False
        assert manager.account(0, 1).denials == 1

    def test_consume_more_than_available_denied(self):
        manager = CreditManager()
        manager.grant(0, 1, 100)
        assert manager.try_consume(0, 1, 200) is False
        assert manager.available(0, 1) == 100

    def test_multiple_grants_accumulate(self):
        manager = CreditManager()
        manager.grant(0, 1, 100)
        manager.grant(0, 1, 200)
        account = manager.account(0, 1)
        assert account.granted_bytes == 300
        assert account.grants == 2

    def test_total_granted_filtered_by_receiver(self):
        manager = CreditManager()
        manager.grant(0, 1, 100)
        manager.grant(2, 1, 50)
        assert manager.total_granted_bytes() == 150
        assert manager.total_granted_bytes(receiver=0) == 100

    def test_accounts_sorted(self):
        manager = CreditManager()
        manager.grant(2, 0, 1)
        manager.grant(0, 1, 1)
        keys = [(a.receiver, a.sender) for a in manager.accounts()]
        assert keys == sorted(keys)

    def test_negative_grant_rejected(self):
        with pytest.raises(ValueError):
            CreditManager().grant(0, 1, -5)

    def test_account_is_stable_object(self):
        manager = CreditManager()
        assert manager.account(0, 1) is manager.account(0, 1)

    def test_zero_byte_consume_always_succeeds_with_account(self):
        manager = CreditManager()
        assert manager.try_consume(0, 1, 0) is True
