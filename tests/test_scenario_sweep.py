"""Tests for the sweep engine: expansion, TOML loading, sharded execution."""

from pathlib import Path

import pytest

from repro.scenario import ScenarioSpec, Sweep, load_sweep

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


class TestExpansion:
    def test_grid_is_row_major_cartesian(self):
        sweep = Sweep(
            base={"workload": "bt.4:scale=0.02", "seed": 3},
            grid={
                "workload.nprocs": [4, 9],
                "network.overrides.jitter_sigma": [0.0, 0.2],
            },
        )
        cells = sweep.expand()
        assert [
            (spec.workload.nprocs, dict(spec.network.overrides)["jitter_sigma"])
            for spec in cells
        ] == [(4, 0.0), (4, 0.2), (9, 0.0), (9, 0.2)]
        # Grid patches don't leak between cells.
        assert cells[0].seed == cells[3].seed == 3

    def test_patch_cells_merge_over_base(self):
        sweep = Sweep(
            base={"workload": "bt.4:scale=0.02", "seed": 3, "policy": "credit"},
            cells=[{"workload": "cg:nprocs=4,scale=0.02"}],
        )
        (cell,) = sweep.expand()
        assert cell.workload.name == "cg"
        assert cell.policy.kind == "credit"  # inherited from base
        assert cell.seed == 3

    def test_full_spec_cells_without_base(self):
        sweep = Sweep(cells=[ScenarioSpec(workload="bt.4"), "cg.8"])
        labels = [spec.label for spec in sweep.expand()]
        assert labels == ["bt.4", "cg.8"]

    def test_base_alone_is_one_cell(self):
        sweep = Sweep(base={"workload": "bt.4"})
        assert [spec.label for spec in sweep.expand()] == ["bt.4"]

    def test_grid_after_cells_ordering(self):
        sweep = Sweep(
            base={"workload": "bt.4:scale=0.02"},
            grid={"seed": [1, 2]},
            cells=[{"workload": "cg:nprocs=4,scale=0.02"}],
        )
        labels = [(spec.label, spec.seed) for spec in sweep.expand()]
        assert labels == [("bt.4", 1), ("bt.4", 2), ("cg.4", 2003)]

    def test_grid_without_base_rejected(self):
        with pytest.raises(ValueError, match="needs a base"):
            Sweep(grid={"seed": [1]})

    def test_empty_grid_values_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            Sweep(base={"workload": "bt.4"}, grid={"seed": []})

    def test_shared_trace_path_rejected(self, tmp_path):
        # A base trace.path inherited by every grid cell would make the
        # cells overwrite (or race on) one file.
        sweep = Sweep(
            base={"workload": "bt.4", "trace": str(tmp_path / "t.jsonl")},
            grid={"seed": [1, 2]},
        )
        with pytest.raises(ValueError, match="share a trace save path"):
            sweep.expand()

    def test_distinct_trace_paths_allowed(self, tmp_path):
        sweep = Sweep(
            cells=[
                {"workload": "bt.4", "trace": str(tmp_path / "a.jsonl")},
                {"workload": "cg.4", "trace": str(tmp_path / "b.jsonl")},
            ]
        )
        assert len(sweep.expand()) == 2

    def test_grid_path_through_scalar_rejected(self):
        # Validation happens at construction now, not at expand().
        with pytest.raises(ValueError, match="scalar field 'seed'"):
            Sweep(base={"workload": "bt.4"}, grid={"seed.sub": [1]})

    def test_grid_path_typo_suggests_nearest(self):
        with pytest.raises(ValueError, match="jitter_sigma"):
            Sweep(
                base={"workload": "bt.4"},
                grid={"network.overrides.jitter_sgima": [0.1]},
            )

    def test_grid_path_unknown_head_rejected(self):
        with pytest.raises(ValueError, match="did you mean 'network'"):
            Sweep(base={"workload": "bt.4"}, grid={"netwrok.latency": [1e-6]})

    def test_grid_path_too_deep_rejected(self):
        with pytest.raises(ValueError, match="too deep"):
            Sweep(
                base={"workload": "bt.4"},
                grid={"network.overrides.latency.extra": [1]},
            )

    def test_grid_flat_config_field_and_param_paths_accepted(self):
        sweep = Sweep(
            base={"workload": "bt.4"},
            grid={
                "network.latency": [1e-6, 2e-6],
                "faults.drop_rate": [0.0, 0.01],
                "workload.scale": [0.05],
                "policy.params.horizon": [5],
                "seed": [1, 2],
            },
        )
        assert len(sweep.expand()) == 8


class TestTomlLoading:
    def test_sweep_toml(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text(
            'name = "t"\n'
            "[base]\n"
            'workload = "bt.4:scale=0.02"\n'
            "seed = 3\n"
            "[grid]\n"
            '"network.overrides.jitter_sigma" = [0.0, 0.2]\n'
            "[[cells]]\n"
            'workload = "cg:nprocs=4,scale=0.02"\n',
            encoding="utf-8",
        )
        sweep = load_sweep(path)
        assert sweep.name == "t"
        assert [spec.label for spec in sweep.expand()] == ["bt.4", "bt.4", "cg.4"]

    def test_single_scenario_toml_becomes_one_cell(self, tmp_path):
        path = tmp_path / "one.toml"
        path.write_text('workload = "bt.9:scale=0.05"\nseed = 7\n', encoding="utf-8")
        sweep = load_sweep(path)
        (spec,) = sweep.expand()
        assert spec == ScenarioSpec(workload="bt.9:scale=0.05", seed=7)

    def test_unknown_sweep_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep keys"):
            Sweep.from_dict({"base": {"workload": "bt.4"}, "grd": {}})

    def test_shipped_example_expands(self):
        sweep = load_sweep(EXAMPLES_DIR / "sweep_paper_subset.toml")
        cells = sweep.expand()
        assert len(cells) == 4
        assert [spec.label for spec in cells] == ["bt.4", "bt.4", "cg.4", "is.4"]
        assert cells[3].policy.kind == "credit"


class TestRunAll:
    @pytest.fixture(scope="class")
    def sweep(self):
        return Sweep(
            base={"workload": "bt.4:scale=0.02", "seed": 3},
            grid={"network.overrides.jitter_sigma": [0.0, 0.2]},
            cells=[{"workload": "cg:nprocs=4,scale=0.02"}],
        )

    def test_sequential_results_in_expansion_order(self, sweep):
        results = sweep.run_all()
        assert [r.label for r in results] == ["bt.4", "bt.4", "cg.4"]
        # The zero-jitter cell really ran a different network.
        assert results[0].makespan != results[1].makespan

    def test_sharded_bit_identical_to_sequential(self, sweep):
        sequential = sweep.run_all()
        sharded = sweep.run_all(jobs=2)
        for seq, par in zip(sequential, sharded):
            assert seq.spec == par.spec
            assert seq.makespan == par.makespan
            assert seq.stats.summary() == par.stats.summary()
            assert (
                seq.trace().logical.time_array().tolist()
                == par.trace().logical.time_array().tolist()
            )
            assert (
                seq.trace().physical.time_array().tolist()
                == par.trace().physical.time_array().tolist()
            )

    def test_empty_sweep(self):
        assert Sweep().run_all() == []


class TestParallelSweepKnobs:
    def test_cost_hint_discounts_parallel_width(self):
        base = ScenarioSpec(workload="bt.9:scale=0.03")
        par = base.with_overrides(engine="parallel", engine_jobs=4)
        assert par.cost_hint() == pytest.approx(base.cost_hint() / 4)
        # Engine width only matters when the parallel engine can use it.
        vec = base.with_overrides(engine="vectorised", engine_jobs=4)
        assert vec.cost_hint() == base.cost_hint()

    def test_pool_capped_when_oversubscribed(self, monkeypatch):
        import repro.scenario.sweep as sweep_mod

        monkeypatch.setattr(sweep_mod.os, "cpu_count", lambda: 4)
        sweep = Sweep(
            base={"workload": "bt.4:scale=0.02", "seed": 1}, grid={"seed": [1, 2]}
        )
        with pytest.warns(RuntimeWarning, match="oversubscribe"):
            results = sweep.run_all(jobs=2, engine="parallel", engine_jobs=4)
        assert len(results) == 2
        assert all(not isinstance(r, Exception) for r in results)

    def test_no_cap_within_cpu_budget(self, monkeypatch):
        import warnings

        import repro.scenario.sweep as sweep_mod

        monkeypatch.setattr(sweep_mod.os, "cpu_count", lambda: 64)
        sweep = Sweep(base={"workload": "bt.4:scale=0.02", "seed": 1})
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            results = sweep.run_all(jobs=2, engine="parallel", engine_jobs=4)
        assert len(results) == 1


class TestAccuracyTable:
    """sweep_accuracy_table over finished sweeps (and the CLI flag)."""

    def test_paper_subset_rows(self):
        from repro.scenario import sweep_accuracy_table

        sweep = load_sweep(EXAMPLES_DIR / "sweep_paper_subset.toml")
        results = sweep.run_all()
        rows = sweep_accuracy_table(results)
        assert len(rows) == len(results)
        assert [row["cell"] for row in rows] == list(range(len(results)))
        for row, outcome in zip(rows, results):
            assert row["status"] == "ok"
            assert row["label"] == outcome.spec.label
            assert row["policy"] == outcome.spec.policy.kind
            assert row["stream_length"] > 0
            # One percentage per prediction horizon, +1 first; all in [0, 100].
            assert len(row["accuracy_pct"]) == outcome.spec.predictor.horizon
            assert all(0.0 <= pct <= 100.0 for pct in row["accuracy_pct"])
            assert 0.0 <= row["coverage_pct"] <= 100.0
            # Consistent with calling predict() on the cell directly.
            accuracy = outcome.predict(kind="sender", level="logical")
            assert row["accuracy_pct"][0] == round(accuracy.as_percentages()[0], 2)

    def test_untraced_cell_keeps_slot_without_metrics(self):
        from repro.scenario import sweep_accuracy_table

        sweep = Sweep(
            base={
                "workload": "bt.4:scale=0.03",
                "seed": 5,
                "trace": {"enabled": False},
            }
        )
        (row,) = sweep_accuracy_table(sweep.run_all())
        assert row["status"] == "untraced"
        assert row["accuracy_pct"] is None
        assert row["coverage_pct"] is None

    def test_cli_accuracy_table_flag(self, capsys):
        from repro.cli import main

        code = main(
            [
                "sweep",
                str(EXAMPLES_DIR / "sweep_paper_subset.toml"),
                "--accuracy-table",
                "--engine",
                "vectorised",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sender prediction accuracy" in out
        assert "+1" in out and "coverage" in out
