"""End-to-end integration tests: simulate, trace, predict, evaluate.

These tie the whole pipeline together at moderate scale and assert the
paper's headline qualitative results:

* the logical streams of the benchmark skeletons are highly predictable;
* physical-level accuracy is lower than (or equal to) logical-level accuracy;
* IS (collective fan-in) is the hardest case at the physical level;
* the prediction-driven runtime policies produce the promised effects.
"""

import pytest

from repro.core.evaluation import evaluate_stream, evaluate_unordered
from repro.core.predictor import PeriodicityPredictor
from repro.trace.streams import sender_stream, size_stream
from repro.workloads.registry import create_workload
from repro.workloads.runner import run_workload


def paper_predictor():
    return PeriodicityPredictor(window_size=24, max_period=256)


def accuracy(records, horizon=5):
    stream = sender_stream(records)
    return evaluate_stream(stream, paper_predictor, horizon=horizon).accuracy(1)


class TestLogicalPredictability:
    @pytest.mark.parametrize(
        "fixture_name",
        ["bt9_run", "cg8_run", "lu4_run", "sweep3d6_run"],
    )
    def test_sender_streams_highly_predictable(self, fixture_name, request):
        workload, result = request.getfixturevalue(fixture_name)
        records = result.trace_for(workload.representative_rank()).logical
        assert accuracy(records) > 0.85

    @pytest.mark.parametrize("fixture_name", ["bt9_run", "cg8_run", "lu4_run"])
    def test_size_streams_highly_predictable(self, fixture_name, request):
        workload, result = request.getfixturevalue(fixture_name)
        records = result.trace_for(workload.representative_rank()).logical
        stream = size_stream(records)
        assert evaluate_stream(stream, paper_predictor, horizon=5).accuracy(1) > 0.85

    def test_multi_step_accuracy_stays_high(self, bt9_run):
        workload, result = bt9_run
        stream = sender_stream(result.trace_for(3).logical)
        evaluation = evaluate_stream(stream, paper_predictor, horizon=5)
        assert evaluation.accuracy(5) > 0.85
        # The periodicity predictor does not degrade with the horizon.
        assert abs(evaluation.accuracy(5) - evaluation.accuracy(1)) < 0.05


class TestPhysicalVsLogical:
    @pytest.mark.parametrize("fixture_name", ["bt9_run", "cg8_run", "lu4_run", "is8_run"])
    def test_physical_not_more_predictable_than_logical(self, fixture_name, request):
        workload, result = request.getfixturevalue(fixture_name)
        rank = workload.representative_rank()
        logical = accuracy(result.trace_for(rank).logical)
        physical = accuracy(result.trace_for(rank).physical)
        assert physical <= logical + 0.02

    def test_is_physical_sender_prediction_is_hard(self, is8_run):
        workload, result = is8_run
        logical = accuracy(result.trace_for(0).logical)
        physical = accuracy(result.trace_for(0).physical)
        assert physical < 0.6
        assert logical > physical

    def test_unordered_prediction_recovers_accuracy_at_physical_level(self, bt9_run):
        workload, result = bt9_run
        stream = sender_stream(result.trace_for(3).physical)
        ordered = evaluate_stream(stream, paper_predictor, horizon=5).accuracy(1)
        unordered = evaluate_unordered(stream, paper_predictor, horizon=5).mean_overlap
        assert unordered >= ordered - 1e-9

    def test_random_wildcard_stream_is_unpredictable(self):
        workload = create_workload("random-sender", nprocs=6, messages_per_rank=40)
        result = run_workload(workload, seed=9)
        stream = sender_stream(result.trace_for(0).physical)
        assert evaluate_stream(stream, paper_predictor, horizon=5).accuracy(1) < 0.5


class TestScalingBehaviour:
    def test_longer_runs_improve_accuracy(self):
        short = run_workload(create_workload("bt", nprocs=4, scale=0.05), seed=3)
        long = run_workload(create_workload("bt", nprocs=4, scale=0.25), seed=3)
        accuracy_short = accuracy(short.trace_for(3).logical)
        accuracy_long = accuracy(long.trace_for(3).logical)
        assert accuracy_long > accuracy_short

    def test_message_counts_scale_linearly_with_iterations(self):
        small = create_workload("bt", nprocs=4, iterations=5)
        large = create_workload("bt", nprocs=4, iterations=10)
        count_small = len(
            [r for r in run_workload(small, seed=1).trace_for(3).logical if r.kind == "p2p"]
        )
        count_large = len(
            [r for r in run_workload(large, seed=1).trace_for(3).logical if r.kind == "p2p"]
        )
        assert count_large == 2 * count_small


class TestRuntimeIntegration:
    def test_simulation_results_consistent_across_ranks(self, bt9_run):
        _, result = bt9_run
        assert result.nprocs == 9
        assert len(result.rank_finish_times) == 9
        assert result.makespan == pytest.approx(max(result.rank_finish_times))
        assert result.events_processed > 0

    def test_protocol_mix_reflects_message_sizes(self, bt9_run):
        _, result = bt9_run
        # BT sends 19 KB backward-sweep blocks (rendezvous) and 10 KB faces
        # (eager), so both protocols must be exercised.
        assert result.stats.eager_messages > 0
        assert result.stats.rendezvous_messages > 0

    def test_buffer_stats_report_preallocation(self, bt9_run):
        _, result = bt9_run
        for stats in result.buffer_stats:
            assert stats.preallocated_bytes == 8 * 16 * 1024
