"""Tests for the serve wire protocol (repro.serve.protocol).

The contract: one JSON object per line, ``op`` defaulting to ``observe``,
strict key validation, and malformed lines rejected with a pointed
``line N: ...`` error carrying the 1-based line number — the same shape as
:class:`repro.trace.import_dumpi.DumpiParseError`.
"""

import json

import pytest

from repro.serve.protocol import (
    OPS,
    ServeEvent,
    ServeProtocolError,
    encode_event,
    encode_response,
    parse_event_line,
)


class TestParseEventLine:
    def test_observe_is_the_default_op(self):
        event = parse_event_line('{"receiver": 3, "sender": 1, "nbytes": 4096}')
        assert event == ServeEvent(op="observe", receiver="3", sender=1, nbytes=4096)

    def test_int_and_string_receivers_share_a_key_space(self):
        by_int = parse_event_line('{"receiver": 7, "sender": 0, "nbytes": 1}')
        by_str = parse_event_line('{"receiver": "7", "sender": 0, "nbytes": 1}')
        assert by_int.receiver == by_str.receiver == "7"

    def test_predict_with_optional_horizon(self):
        event = parse_event_line('{"op": "predict", "receiver": "cam-1", "horizon": 3}')
        assert event.op == "predict"
        assert event.receiver == "cam-1"
        assert event.horizon == 3
        assert parse_event_line('{"op": "predict", "receiver": "cam-1"}').horizon is None

    def test_all_ops_parse_with_required_keys_only(self):
        samples = {
            "observe": '{"op": "observe", "receiver": 0, "sender": 1, "nbytes": 2}',
            "predict": '{"op": "predict", "receiver": 0}',
            "expects": '{"op": "expects", "receiver": 0, "sender": 1}',
            "stats": '{"op": "stats"}',
            "flush": '{"op": "flush"}',
            "snapshot": '{"op": "snapshot", "dir": "/tmp/x"}',
            "shutdown": '{"op": "shutdown"}',
        }
        assert sorted(samples) == sorted(OPS)
        for op, line in samples.items():
            assert parse_event_line(line).op == op

    @pytest.mark.parametrize(
        "line, fragment",
        [
            ("not json at all", "invalid JSON"),
            ("[1, 2, 3]", "must be a JSON object"),
            ('{"op": "bogus"}', "unknown op 'bogus'"),
            ('{"op": "observe", "receiver": 0}', "requires"),
            ('{"op": "stats", "receiver": 0}', "does not take receiver"),
            ('{"op": "observe", "receiver": true, "sender": 0, "nbytes": 0}', "receiver"),
            ('{"op": "observe", "receiver": "", "sender": 0, "nbytes": 0}', "must not be empty"),
            ('{"op": "observe", "receiver": 0, "sender": -1, "nbytes": 0}', "sender must be >= 0"),
            ('{"op": "observe", "receiver": 0, "sender": 0, "nbytes": 1.5}', "nbytes"),
            ('{"op": "predict", "receiver": 0, "horizon": 0}', "horizon must be >= 1"),
            ('{"op": "snapshot", "dir": ""}', "dir must be a non-empty string"),
            ("", "empty event line"),
        ],
    )
    def test_malformed_lines_are_rejected(self, line, fragment):
        with pytest.raises(ServeProtocolError) as excinfo:
            parse_event_line(line, line_number=12)
        assert fragment in str(excinfo.value)

    def test_error_carries_dumpi_style_line_number(self):
        # Mirrors DumpiParseError: "line N: ..." message plus a .line_number.
        with pytest.raises(ServeProtocolError) as excinfo:
            parse_event_line("garbage", line_number=41)
        assert str(excinfo.value).startswith("line 41: ")
        assert excinfo.value.line_number == 41
        assert isinstance(excinfo.value, ValueError)


class TestEncoding:
    def test_encode_event_round_trips(self):
        line = encode_event(receiver="cam-1", sender=2, nbytes=512)
        assert parse_event_line(line) == ServeEvent(
            op="observe", receiver="cam-1", sender=2, nbytes=512
        )

    def test_encode_event_drops_none_values(self):
        line = encode_event(op="predict", receiver=0, horizon=None)
        assert json.loads(line) == {"op": "predict", "receiver": 0}

    def test_encode_response_is_deterministic(self):
        a = encode_response({"b": 1, "a": 2})
        b = encode_response({"a": 2, "b": 1})
        assert a == b == '{"a":2,"b":1}'
        assert "\n" not in a
