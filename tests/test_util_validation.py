"""Tests for repro.util.validation."""

import pytest

from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_rank,
    check_type,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3) == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_accepts_positive(self):
        assert check_non_negative("x", 1.5) == 1.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="x"):
            check_non_negative("x", -0.1)


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_probability("p", 1.1)
        with pytest.raises(ValueError):
            check_probability("p", -0.1)


class TestCheckRank:
    def test_accepts_valid(self):
        assert check_rank("r", 3, 4) == 3

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_rank("r", 4, 4)
        with pytest.raises(ValueError):
            check_rank("r", -1, 4)

    def test_rejects_bool_and_non_int(self):
        with pytest.raises(TypeError):
            check_rank("r", True, 4)
        with pytest.raises(TypeError):
            check_rank("r", 1.5, 4)


class TestCheckType:
    def test_accepts_instance(self):
        assert check_type("x", 3, int) == 3

    def test_accepts_tuple_of_types(self):
        assert check_type("x", 3.0, (int, float)) == 3.0

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="x"):
            check_type("x", "s", int)
