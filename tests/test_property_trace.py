"""Property-based tests (hypothesis) for the columnar trace store.

The contract under test: a :class:`repro.trace.columns.TraceColumns` store
must be observationally identical to the plain record list it replaces —
after any append sequence and after sorting — and the vectorised stream
summaries must match the per-record reference implementation bit for bit
(including the tie-breaking order of the frequent-value lists).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.columns import TraceColumns
from repro.trace.records import TraceRecord
from repro.trace.streams import sender_stream, size_stream, summarize_stream
from repro.trace.tracer import ProcessTrace

record_tuples = st.tuples(
    st.integers(min_value=0, max_value=40),        # sender
    st.integers(min_value=0, max_value=1 << 20),   # nbytes
    st.integers(min_value=0, max_value=1 << 22),   # tag (collective range)
    st.sampled_from(["p2p", "collective"]),        # kind
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False, width=64),  # time
)


def _as_records(tuples, receiver=0):
    return [
        TraceRecord(receiver, sender, nbytes, tag, kind, time, seq)
        for seq, (sender, nbytes, tag, kind, time) in enumerate(tuples)
    ]


class TestColumnsAgreeWithRecordLists:
    @given(data=st.lists(record_tuples, max_size=80))
    @settings(max_examples=60)
    def test_views_and_sort_match_reference(self, data):
        """Columnar views == record lists, before and after sort()."""
        trace = ProcessTrace(rank=0)
        reference_logical = _as_records(data)
        for record in reference_logical:
            trace.logical.append(
                record.sender, record.nbytes, record.tag, record.kind,
                record.time, record.seq,
            )
            trace.physical.append(
                record.sender, record.nbytes, record.tag, record.kind, record.time
            )
        assert list(trace.logical) == reference_logical

        trace.sort()
        reference_logical.sort(key=lambda r: r.seq)
        # Physical order is canonical: (time, sender, tag, kind, nbytes),
        # with seq re-materialised as the canonical position — engine- and
        # insertion-order-independent (see TraceColumns.sort_by_arrival).
        reference_physical = [
            record._replace(seq=position)
            for position, record in enumerate(
                sorted(
                    reference_logical,
                    key=lambda r: (
                        r.time, r.sender, r.tag, r.kind == "collective", r.nbytes
                    ),
                )
            )
        ]
        assert list(trace.logical) == reference_logical
        assert list(trace.physical) == reference_physical
        assert trace.logical == reference_logical  # sequence equality protocol

    @given(data=st.lists(record_tuples, max_size=80))
    @settings(max_examples=60)
    def test_streams_match_reference(self, data):
        """Vectorised streams/summaries == per-record reference paths."""
        records = _as_records(data)
        columns = TraceColumns(receiver=0)
        for record in records:
            columns.append(
                record.sender, record.nbytes, record.tag, record.kind,
                record.time, record.seq,
            )
        for kinds in (None, ["p2p"], ["collective"]):
            assert sender_stream(columns, kinds=kinds).tolist() == sender_stream(
                records, kinds=kinds
            ).tolist()
            assert size_stream(columns, kinds=kinds).tolist() == size_stream(
                records, kinds=kinds
            ).tolist()
        for coverage in (0.4, 0.98, 1.0):
            assert summarize_stream(columns, coverage=coverage) == summarize_stream(
                records, coverage=coverage
            )
