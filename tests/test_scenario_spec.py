"""Tests for the declarative spec tree (repro.scenario.spec + shorthand)."""

import pickle

import pytest

from repro.predictive.credit_policy import PredictiveCreditPolicy
from repro.runtime.protocol import AlwaysRendezvousFlowControl, StandardFlowControl
from repro.scenario.shorthand import coerce_scalar, parse_params, split_shorthand
from repro.scenario.spec import (
    MachineSpec,
    NetworkSpec,
    PolicySpec,
    PredictorSpec,
    ScenarioSpec,
    TraceSpec,
    WorkloadSpec,
)
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkConfig
from repro.workloads.bt import BTWorkload


class TestShorthand:
    def test_scalar_coercion(self):
        assert coerce_scalar("24") == 24
        assert coerce_scalar("0.2") == 0.2
        assert coerce_scalar("1e-6") == 1e-6
        assert coerce_scalar("true") is True
        assert coerce_scalar("Off") is False
        assert coerce_scalar("none") is None
        assert coerce_scalar("periodicity") == "periodicity"

    def test_parse_params(self):
        assert parse_params("a=1, b=x,c=0.5") == {"a": 1, "b": "x", "c": 0.5}
        assert parse_params("") == {}

    def test_parse_params_rejects_malformed(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_params("novalue")
        with pytest.raises(ValueError, match="duplicate"):
            parse_params("a=1,a=2")

    def test_split_shorthand(self):
        assert split_shorthand("credit:horizon=5") == ("credit", {"horizon": 5})
        assert split_shorthand("standard") == ("standard", {})
        with pytest.raises(ValueError):
            split_shorthand(":horizon=5")


class TestWorkloadSpec:
    def test_label_form(self):
        spec = WorkloadSpec.from_shorthand("bt.9:scale=0.2")
        assert spec == WorkloadSpec(name="bt", nprocs=9, scale=0.2)
        assert spec.label == "bt.9"

    def test_sweep3d_label_alias(self):
        spec = WorkloadSpec.from_shorthand("sw.32")
        assert spec.name == "sweep3d" and spec.nprocs == 32
        assert spec.label == "sw.32"

    def test_explicit_form(self):
        spec = WorkloadSpec.from_shorthand("bt:nprocs=9,scale=0.2")
        assert spec == WorkloadSpec(name="bt", nprocs=9, scale=0.2)

    def test_nprocs_twice_rejected(self):
        with pytest.raises(ValueError, match="nprocs twice"):
            WorkloadSpec.from_shorthand("bt.9:nprocs=4")

    def test_missing_nprocs_rejected_at_build(self):
        # A bare name parses to the nprocs=0 sentinel (trace replay resolves
        # it from the file); workloads needing a real count reject it at
        # build time instead of parse time.
        spec = WorkloadSpec.from_shorthand("bt")
        assert spec.nprocs == 0
        with pytest.raises(ValueError, match="nprocs"):
            spec.build()

    def test_build_uses_registry_and_defaults(self):
        workload = WorkloadSpec(name="bt", nprocs=9, scale=0.1).build()
        assert isinstance(workload, BTWorkload)
        assert workload.nprocs == 9 and workload.scale == 0.1
        # Unset fields fall back to the workload class defaults.
        default = BTWorkload(nprocs=9, scale=0.1)
        assert workload.compute_time == default.compute_time
        assert workload.iterations == default.iterations

    def test_extra_keys_become_params(self):
        spec = WorkloadSpec.from_dict(
            {"name": "periodic", "nprocs": 4, "pattern_length": 6}
        )
        assert dict(spec.params) == {"pattern_length": 6}

    def test_from_workload_round_trip(self):
        original = BTWorkload(nprocs=9, scale=0.1)
        rebuilt = WorkloadSpec.from_workload(original).build()
        assert type(rebuilt) is type(original)
        assert rebuilt.nprocs == original.nprocs
        assert rebuilt.iterations == original.iterations

    def test_dict_round_trip(self):
        spec = WorkloadSpec(name="bt", nprocs=9, scale=0.2, params={"k": 1})
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec


class TestMachineSpec:
    def test_default_builds_default_config(self):
        assert MachineSpec().build() == MachineConfig()

    def test_shorthand_overrides(self):
        spec = MachineSpec.coerce("default:eager_threshold=1024")
        assert spec.build().eager_threshold == 1024

    def test_flat_dict_form(self):
        spec = MachineSpec.coerce({"send_overhead": 1e-6})
        assert spec.build().send_overhead == 1e-6

    def test_coerce_from_config(self):
        config = MachineConfig(eager_threshold=2048)
        spec = MachineSpec.coerce(config)
        assert dict(spec.overrides) == {"eager_threshold": 2048}
        assert spec.build() == config

    def test_unknown_preset_fails_at_build(self):
        spec = MachineSpec(preset="fat-tree")
        with pytest.raises(KeyError, match="machine preset"):
            spec.build()


class TestNetworkSpec:
    def test_unpinned_seed_derives_from_run_seed(self):
        assert NetworkSpec().build(7) == NetworkConfig(seed=7)

    def test_pinned_seed_wins(self):
        assert NetworkSpec(seed=3).build(7).seed == 3

    def test_seed_in_overrides_normalises_to_field(self):
        spec = NetworkSpec.coerce({"jitter_sigma": 0.1, "seed": 5})
        assert spec.seed == 5
        assert dict(spec.overrides) == {"jitter_sigma": 0.1}

    def test_conflicting_seeds_rejected(self):
        with pytest.raises(ValueError, match="seed twice"):
            NetworkSpec(seed=1, overrides={"seed": 2})

    def test_noiseless_preset(self):
        config = NetworkSpec.coerce("noiseless").build(7)
        assert config.jitter_sigma == 0.0 and config.contention is False

    def test_from_config_round_trip(self):
        config = NetworkConfig(jitter_sigma=0.5, contention=False, seed=11)
        spec = NetworkSpec.from_config(config)
        assert spec.build(999) == config  # pinned seed survives

    def test_from_config_keeps_seed_derivable(self):
        config = NetworkConfig(jitter_sigma=0.5)
        assert NetworkSpec.from_config(config).build(7).seed == 7


class TestPolicyAndPredictorSpecs:
    def test_default_policy_is_standard(self):
        assert isinstance(PolicySpec().build(), StandardFlowControl)

    def test_alias_and_params(self):
        policy = PolicySpec.coerce("credit:horizon=3").build()
        assert isinstance(policy, PredictiveCreditPolicy)
        assert policy.horizon == 3

    def test_rendezvous_alias(self):
        assert isinstance(
            PolicySpec.coerce("rendezvous").build(), AlwaysRendezvousFlowControl
        )

    def test_unknown_policy_fails_at_build(self):
        with pytest.raises(KeyError, match="policy"):
            PolicySpec(kind="nope").build()

    def test_predictor_defaults_are_paper_configuration(self):
        predictor = PredictorSpec().factory()()
        # The registry pre-sets the paper's evaluation parameters.
        assert predictor._dpd.window_size == 24
        assert predictor._dpd.max_period == 256

    def test_predictor_window_alias(self):
        spec = PredictorSpec.coerce("periodicity:window=16,horizon=3")
        assert spec.horizon == 3
        assert spec.factory()()._dpd.window_size == 16

    def test_factory_returns_fresh_instances(self):
        factory = PredictorSpec().factory()
        assert factory() is not factory()


class TestTraceSpec:
    def test_coercions(self):
        assert TraceSpec.coerce(False) == TraceSpec(enabled=False)
        assert TraceSpec.coerce("out.jsonl") == TraceSpec(path="out.jsonl")
        assert TraceSpec.coerce(None) == TraceSpec()

    def test_path_with_disabled_tracing_rejected(self):
        with pytest.raises(ValueError, match="disabled"):
            TraceSpec(enabled=False, path="out.jsonl")


class TestScenarioSpec:
    def test_string_fields_coerce_on_construction(self):
        spec = ScenarioSpec(
            workload="bt.9:scale=0.2",
            policy="credit:horizon=3",
            network="noiseless",
            predictor="periodicity:window=16",
        )
        assert spec.workload == WorkloadSpec("bt", 9, scale=0.2)
        assert spec.policy.kind == "credit"
        assert spec.network.preset == "noiseless"
        assert spec.label == "bt.9"

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown scenario spec keys"):
            ScenarioSpec.from_dict({"workload": "bt.4", "wrokload": "typo"})

    def test_from_dict_requires_workload(self):
        with pytest.raises(ValueError, match="workload"):
            ScenarioSpec.from_dict({"seed": 1})

    def test_dict_round_trip(self):
        spec = ScenarioSpec(
            workload="bt.9:scale=0.2",
            seed=7,
            policy="credit:horizon=3",
            network={"overrides": {"jitter_sigma": 0.1}},
            name="my-cell",
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_from_toml(self, tmp_path):
        path = tmp_path / "scenario.toml"
        path.write_text(
            'seed = 7\nworkload = "bt.4:scale=0.05"\npolicy = "credit"\n',
            encoding="utf-8",
        )
        spec = ScenarioSpec.from_toml(path)
        assert spec.seed == 7
        assert spec.workload.label == "bt.4"
        assert spec.policy.kind == "credit"

    def test_with_overrides_recoerces(self):
        spec = ScenarioSpec(workload="bt.4")
        changed = spec.with_overrides(policy="rendezvous", seed=9)
        assert changed.policy.kind == "rendezvous" and changed.seed == 9
        assert spec.policy.kind == "standard"  # original untouched

    def test_cost_hint_weights_lu(self):
        lu = ScenarioSpec(workload="lu.8:scale=0.5")
        bt = ScenarioSpec(workload="bt.9:scale=0.5")
        assert lu.cost_hint() > bt.cost_hint()

    def test_specs_are_hashable_and_picklable(self):
        spec = ScenarioSpec(workload="bt.9:scale=0.2", policy="credit:horizon=3")
        assert hash(spec) == hash(ScenarioSpec.from_dict(spec.to_dict()))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
