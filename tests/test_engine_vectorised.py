"""Equivalence of the vectorised cohort engine and the scalar run loop.

The contract of the engine knob: which drain processes the event queue is an
implementation detail.  For every registry workload, under every flow-control
policy, with and without fault injection, a ``engine="vectorised"`` run must
be **bit-identical** to an ``engine="scalar"`` run — same makespan, same
per-rank finish times, same processed-event count, same runtime statistics,
same fault counters, and the same trace records at both levels — and sweeps
sharded over worker processes must behave identically under an engine
override.
"""

from pathlib import Path

import pytest

from repro.scenario import Scenario, ScenarioSpec, Sweep, WorkloadSpec
from repro.workloads.registry import create_workload, workload_names

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    HAVE_HYPOTHESIS = False

#: The committed sample trace (also the CLI quickstart's replay input).
SAMPLE_TRACE = str(Path(__file__).resolve().parent.parent / "examples" / "sample_trace.jsonl")

#: (workload, nprocs, extra kwargs) — the full registry at smoke scales.
REGISTRY_CELLS = [
    ("bt", 9, {"scale": 0.03}),
    ("cg", 8, {"scale": 0.1}),
    ("lu", 4, {"scale": 0.01}),
    ("is", 8, {"scale": 0.2}),
    ("sweep3d", 6, {"scale": 0.1}),
    ("periodic-pattern", 4, {"scale": 0.2}),
    ("ring-exchange", 4, {"scale": 0.2}),
    ("random-sender", 4, {"messages_per_rank": 10}),
    ("collective-storm", 4, {"scale": 0.2}),
    ("collective-mix", 4, {"scale": 0.2}),
    ("replay", 4, {"file": SAMPLE_TRACE}),
]

#: Policy shorthands (the spec layer builds a fresh instance per run).
POLICIES = ["standard", "predictive-buffers", "predictive-credits", "predictive-rendezvous"]

FAULT_PRESETS = [None, "chaos"]


def fingerprint(result):
    """Everything a simulation exposes to the analysis layer, comparable."""
    traces = []
    if result.tracer is not None:
        for rank in range(result.nprocs):
            trace = result.trace_for(rank)
            traces.append((list(trace.logical), list(trace.physical)))
    return (
        result.makespan,
        result.rank_finish_times,
        result.events_processed,
        result.stats.summary(),
        result.fault_stats,
        traces,
    )


def run_cell(
    name, nprocs, kwargs, policy, faults, engine, seed=23, network=None, engine_jobs=2
):
    workload = create_workload(name, nprocs=nprocs, **kwargs)
    spec_kwargs = dict(
        workload=WorkloadSpec.from_workload(workload),
        seed=seed,
        policy=policy,
        faults=faults,
        engine=engine,
        engine_jobs=engine_jobs,
    )
    if network is not None:
        spec_kwargs["network"] = network
    spec = ScenarioSpec(**spec_kwargs)
    return Scenario(spec, workload=workload).run().result


class TestRegistryEquivalence:
    """Full registry x all four policies x fault presets, scalar vs vectorised."""

    @pytest.mark.parametrize("faults", FAULT_PRESETS)
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("name,nprocs,kwargs", REGISTRY_CELLS)
    def test_bit_identical_outputs(self, name, nprocs, kwargs, policy, faults):
        scalar = run_cell(name, nprocs, kwargs, policy, faults, engine="scalar")
        vectorised = run_cell(name, nprocs, kwargs, policy, faults, engine="vectorised")
        assert fingerprint(vectorised) == fingerprint(scalar)

    def test_registry_cells_cover_the_registry(self):
        assert sorted(name for name, _, _ in REGISTRY_CELLS) == workload_names()


class TestVectorisedPathEngages:
    """The forced/auto knobs actually reach the batch dispatch."""

    def _count_batches(self, monkeypatch):
        # _exec_cohort is the vectorised drain's dispatch entry (the scalar
        # loop never calls it); the queue-level batch pushes are inlined in
        # the engine, so count at this seam instead.
        from repro.sim.engine import Simulator

        calls = {"step": 0}
        original = Simulator._exec_cohort

        def counting(self, states):
            calls["step"] += 1
            return original(self, states)

        monkeypatch.setattr(Simulator, "_exec_cohort", counting)
        return calls

    def test_forced_vectorised_batches_cohorts(self, monkeypatch):
        from repro.analysis.scaling import lockstep_scale_configs
        from repro.workloads.runner import run_workload

        calls = self._count_batches(monkeypatch)
        machine, network = lockstep_scale_configs()
        result = run_workload(
            create_workload("bt", 16, iterations=2, compute_noise=0.0),
            seed=5,
            machine=machine,
            network=network,
            tracer=False,
            engine="vectorised",
        )
        assert result.events_processed > 0
        assert calls["step"] > 0, "vectorised engine never batched a step cohort"

    def test_auto_selects_vectorised_at_scale(self, monkeypatch):
        # 16 compiled ranks is the auto threshold (_VECTOR_MIN_RANKS).
        from repro.analysis.scaling import lockstep_scale_configs
        from repro.workloads.runner import run_workload

        calls = self._count_batches(monkeypatch)
        machine, network = lockstep_scale_configs()
        run_workload(
            create_workload("bt", 16, iterations=2, compute_noise=0.0),
            seed=5,
            machine=machine,
            network=network,
            tracer=False,
            engine="auto",
        )
        assert calls["step"] > 0

    def test_scalar_never_batches(self, monkeypatch):
        from repro.workloads.runner import run_workload

        calls = self._count_batches(monkeypatch)
        run_workload(
            create_workload("bt", 9, scale=0.03),
            seed=5,
            tracer=False,
            engine="scalar",
        )
        assert calls["step"] == 0


#: Deterministic positive-latency network: the parallel engine's eligibility
#: gate (it derives its lookahead from the minimum link latency).  The
#: default jittered/contended network must *fall back* instead.
PARALLEL_NETWORK = "noiseless:latency=25e-6"

#: Vectorised baselines for the parallel matrix, computed once per cell.
_parallel_baselines: dict = {}


def _baseline(name, nprocs, kwargs, faults):
    key = (name, nprocs, tuple(sorted(kwargs.items())), faults)
    if key not in _parallel_baselines:
        _parallel_baselines[key] = fingerprint(
            run_cell(
                name, nprocs, kwargs, "standard", faults,
                engine="vectorised", network=PARALLEL_NETWORK,
            )
        )
    return _parallel_baselines[key]


class TestParallelEquivalence:
    """Full registry x fault presets x {2, 3} partitions, parallel vs vectorised."""

    @pytest.mark.parametrize("jobs", [2, 3])
    @pytest.mark.parametrize("faults", FAULT_PRESETS)
    @pytest.mark.parametrize("name,nprocs,kwargs", REGISTRY_CELLS)
    def test_bit_identical_outputs(self, name, nprocs, kwargs, faults, jobs):
        parallel = run_cell(
            name, nprocs, kwargs, "standard", faults,
            engine="parallel", network=PARALLEL_NETWORK, engine_jobs=jobs,
        )
        assert fingerprint(parallel) == _baseline(name, nprocs, kwargs, faults)

    def test_engaged_run_reports_partition_info(self):
        result = run_cell(
            "bt", 9, {"scale": 0.03}, "standard", None,
            engine="parallel", network=PARALLEL_NETWORK, engine_jobs=3,
        )
        info = result.parallel_info
        assert info is not None and "fallback" not in info
        assert info["partitions"] == 3
        assert info["windows"] > 0
        assert info["lookahead"] == pytest.approx(25e-6)
        assert info["engine_jobs"] == 3

    def test_default_network_falls_back_with_reason(self):
        # Jitter makes arrival computation order-sensitive across partitions,
        # so the default network is ineligible — the run must complete
        # in-process (bit-identically) and say why.
        parallel = run_cell(
            "bt", 9, {"scale": 0.03}, "standard", None, engine="parallel"
        )
        assert parallel.parallel_info is not None
        assert "fallback" in parallel.parallel_info
        baseline = run_cell(
            "bt", 9, {"scale": 0.03}, "standard", None, engine="vectorised"
        )
        assert fingerprint(parallel) == fingerprint(baseline)

    def test_partition_unsafe_policy_falls_back(self):
        result = run_cell(
            "bt", 9, {"scale": 0.03}, "predictive-credits", None,
            engine="parallel", network=PARALLEL_NETWORK,
        )
        assert "fallback" in result.parallel_info

    def test_single_job_falls_back(self):
        result = run_cell(
            "bt", 9, {"scale": 0.03}, "standard", None,
            engine="parallel", network=PARALLEL_NETWORK, engine_jobs=1,
        )
        assert "fallback" in result.parallel_info


class TestEngineJobsAuto:
    """engine_jobs=0 auto-tunes to the machine's CPU count."""

    def test_zero_resolves_to_cpu_count(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 3)
        result = run_cell(
            "bt", 9, {"scale": 0.03}, "standard", None,
            engine="parallel", network=PARALLEL_NETWORK, engine_jobs=0,
        )
        info = result.parallel_info
        assert "fallback" not in info
        assert info["engine_jobs"] == 3
        assert info["partitions"] == 3

    def test_resolved_value_lands_in_fallback_info_too(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        # One CPU resolves to one worker: ineligible, and the info says so
        # with the *resolved* count, not the 0 sentinel.
        result = run_cell(
            "bt", 9, {"scale": 0.03}, "standard", None,
            engine="parallel", network=PARALLEL_NETWORK, engine_jobs=0,
        )
        info = result.parallel_info
        assert "fallback" in info
        assert info["engine_jobs"] == 1

    def test_negative_engine_jobs_rejected(self):
        from repro.sim.engine import Simulator

        with pytest.raises(ValueError, match="engine_jobs"):
            Simulator(nprocs=2, engine_jobs=-1)
        with pytest.raises(ValueError, match="engine_jobs"):
            ScenarioSpec(workload="bt.4", engine_jobs=-1)

    def test_auto_resolution_is_bit_identical(self, monkeypatch):
        import os

        baseline = _baseline("bt", 9, {"scale": 0.03}, None)
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        auto = run_cell(
            "bt", 9, {"scale": 0.03}, "standard", None,
            engine="parallel", network=PARALLEL_NETWORK, engine_jobs=0,
        )
        assert fingerprint(auto) == baseline

    def test_sweep_pool_caps_for_auto_jobs(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        sweep = Sweep(
            base={
                "workload": "bt.4:scale=0.03",
                "seed": 17,
                "network": PARALLEL_NETWORK,
            },
            cells=[{}, {"seed": 18}],
        )
        with pytest.warns(RuntimeWarning, match="oversubscribe"):
            outcomes = sweep.run_all(jobs=2, engine="parallel", engine_jobs=0)
        assert len(outcomes) == 2
        assert all(not isinstance(o, Exception) for o in outcomes)


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestParallelPartitionProperty:
    """Any contiguous cut of the rank space yields bit-identical outputs."""

    @settings(max_examples=6, deadline=None)
    @given(cuts=st.sets(st.integers(min_value=1, max_value=8), max_size=3))
    def test_random_partition_boundaries(self, cuts):
        from repro.sim.engine import Simulator
        from repro.sim.network import NetworkConfig, NetworkModel

        nprocs = 9
        bounds = [0, *sorted(cuts), nprocs]
        blocks = [
            list(range(lo, hi)) for lo, hi in zip(bounds, bounds[1:]) if hi > lo
        ]
        if len(blocks) < 2:
            blocks = [list(range(0, 4)), list(range(4, nprocs))]

        def run(engine, partitioner=None):
            workload = create_workload("bt", nprocs=nprocs, scale=0.03)
            network = NetworkModel(
                NetworkConfig(latency=25e-6, jitter_sigma=0.0, contention=False),
                nprocs,
            )
            sim = Simulator(
                nprocs=nprocs,
                network=network,
                tracer=True,
                seed=23,
                engine=engine,
                engine_jobs=len(blocks),
                partitioner=partitioner,
            )
            return sim.run([workload.program_for])

        parallel = run("parallel", partitioner=lambda n, jobs: blocks)
        assert parallel.parallel_info == {
            "partitions": len(blocks),
            "windows": parallel.parallel_info["windows"],
            "lookahead": 25e-6,
            "engine_jobs": len(blocks),
        }
        assert fingerprint(parallel) == fingerprint(run("vectorised"))


class TestShardedSweepEquivalence:
    """run_all(jobs=2) with an engine override is bit-identical to sequential."""

    def _sweep(self):
        return Sweep(
            base={"workload": "bt.4:scale=0.03", "seed": 17},
            grid={"network.overrides.jitter_sigma": [0.0, 0.2]},
            cells=[{"workload": "cg.4:scale=0.1"}],
        )

    def test_engine_override_and_sharding(self):
        sequential = self._sweep().run_all(engine="scalar")
        sharded = self._sweep().run_all(jobs=2, engine="vectorised")
        assert [cell.label for cell in sequential] == [cell.label for cell in sharded]
        for seq_cell, par_cell in zip(sequential, sharded):
            assert fingerprint(par_cell.result) == fingerprint(seq_cell.result)

    def test_engine_override_reaches_every_spec(self):
        sweep = self._sweep()
        specs = [spec.with_overrides(engine="vectorised") for spec in sweep.expand()]
        assert all(spec.engine == "vectorised" for spec in specs)
        # The engine knob cannot change results, so it is deliberately
        # excluded from the spec identity (sweep summaries are byte-identical
        # across engines).
        for spec in specs:
            assert "engine" not in spec.to_dict()
            assert spec.content_hash() == spec.with_overrides(engine="scalar").content_hash()


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestEquivalenceProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        cell=st.sampled_from([("bt", 4, {"scale": 0.02}), ("ring-exchange", 4, {"scale": 0.2})]),
        policy=st.sampled_from(POLICIES),
    )
    def test_any_seed_any_policy(self, seed, cell, policy):
        name, nprocs, kwargs = cell
        scalar = run_cell(name, nprocs, kwargs, policy, None, engine="scalar", seed=seed)
        vectorised = run_cell(name, nprocs, kwargs, policy, None, engine="vectorised", seed=seed)
        assert fingerprint(vectorised) == fingerprint(scalar)
