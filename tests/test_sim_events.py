"""Tests for repro.sim.events."""

import pytest

from repro.sim.events import EventQueue


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("b"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(3.0, lambda: order.append("c"))
        while True:
            event = queue.pop()
            if event is None:
                break
            event.callback()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        order = []
        for name in "abc":
            queue.push(1.0, lambda n=name: order.append(n))
        while (event := queue.pop()) is not None:
            event.callback()
        assert order == ["a", "b", "c"]

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        assert len(queue) == 0
        queue.push(0.0, lambda: None)
        assert queue
        assert len(queue) == 1

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancel()
        assert queue.pop() is None
        assert len(queue) == 0

    def test_events_processed_counts_only_real_pops(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        cancelled = queue.push(2.0, lambda: None)
        cancelled.cancel()
        queue.pop()
        queue.pop()
        assert queue.events_processed == 1

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(5.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.peek_time() == 2.0

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 2.0

    def test_clear(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert queue.pop() is None
