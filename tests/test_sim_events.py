"""Tests for repro.sim.events (typed records, batching, fast lane)."""

import pytest

from repro.sim.events import (
    EV_A,
    EV_B,
    EV_CANCELLED,
    EV_KIND,
    EV_SEQ,
    EV_TIME,
    EVENT_CALLBACK,
    EVENT_DELIVER,
    EVENT_DELIVER_BATCH,
    EVENT_STEP,
    EVENT_STEP_BATCH,
    EventQueue,
)


def drain(queue):
    """Pop every record, firing callback events, and return the records."""
    records = []
    while (record := queue.pop()) is not None:
        if record[EV_KIND] == EVENT_CALLBACK:
            record[EV_A]()
        records.append(record)
    return records


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("b"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(3.0, lambda: order.append("c"))
        drain(queue)
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        order = []
        for name in "abc":
            queue.push(1.0, lambda n=name: order.append(n))
        drain(queue)
        assert order == ["a", "b", "c"]

    def test_len_and_bool_maintained_counter(self):
        queue = EventQueue()
        assert not queue
        assert len(queue) == 0
        queue.push(0.0, lambda: None)
        assert queue
        assert len(queue) == 1
        record = queue.push(1.0, lambda: None)
        assert len(queue) == 2
        queue.cancel(record)
        assert len(queue) == 1
        queue.pop()
        assert len(queue) == 0
        assert not queue

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        record = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.cancel(record)
        queue.cancel(record)  # double-cancel must not corrupt the counter
        assert len(queue) == 1

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        record = queue.push(1.0, lambda: None)
        queue.cancel(record)
        assert queue.pop() is None
        assert len(queue) == 0

    def test_events_processed_counts_only_real_pops(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        cancelled = queue.push(2.0, lambda: None)
        queue.cancel(cancelled)
        queue.pop()
        queue.pop()
        assert queue.events_processed == 1

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(5.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.peek_time() == 2.0

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.cancel(first)
        assert queue.peek_time() == 2.0

    def test_peek_skips_cancelled_run(self):
        queue = EventQueue()
        records = [queue.push(float(i), lambda: None) for i in range(4)]
        for record in records[:3]:
            queue.cancel(record)
        assert queue.peek_time() == 3.0
        assert queue.pop() is records[3]

    def test_clear(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert queue.pop() is None
        assert len(queue) == 0


class TestTypedRecords:
    def test_push_typed_step_record(self):
        queue = EventQueue()
        state = object()
        record = queue.push_typed(1.5, EVENT_STEP, state, "value")
        assert record[EV_TIME] == 1.5
        assert record[EV_KIND] == EVENT_STEP
        assert record[EV_A] is state
        assert record[EV_B] == "value"
        assert queue.pop() is record

    def test_push_typed_deliver_record(self):
        queue = EventQueue()
        message, posted = object(), object()
        record = queue.push_typed(1.0, EVENT_DELIVER, message, posted)
        assert record[EV_A] is message
        assert record[EV_B] is posted

    def test_sequence_numbers_monotonic(self):
        queue = EventQueue()
        records = [queue.push_typed(1.0, EVENT_CALLBACK, None) for _ in range(5)]
        seqs = [r[EV_SEQ] for r in records]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5


class TestPopBatch:
    def test_batch_groups_equal_timestamps(self):
        queue = EventQueue()
        for _ in range(3):
            queue.push_typed(1.0, EVENT_CALLBACK, None)
        queue.push_typed(2.0, EVENT_CALLBACK, None)
        first = queue.pop_batch()
        assert len(first) == 3
        assert [r[EV_TIME] for r in first] == [1.0, 1.0, 1.0]
        second = queue.pop_batch()
        assert len(second) == 1
        assert queue.pop_batch() == []

    def test_batch_preserves_seq_order(self):
        queue = EventQueue()
        records = [queue.push_typed(1.0, EVENT_CALLBACK, i) for i in range(10)]
        batch = queue.pop_batch()
        assert batch == records

    def test_batch_skips_cancelled(self):
        queue = EventQueue()
        keep_a = queue.push_typed(1.0, EVENT_CALLBACK, "a")
        dead = queue.push_typed(1.0, EVENT_CALLBACK, "dead")
        keep_b = queue.push_typed(1.0, EVENT_CALLBACK, "b")
        queue.cancel(dead)
        batch = queue.pop_batch()
        assert batch == [keep_a, keep_b]
        assert queue.events_processed == 2

    def test_same_time_push_during_batch_forms_next_batch(self):
        # Events scheduled at the cohort's own timestamp while it executes
        # must run after it (their seq is larger) — they form the next batch.
        queue = EventQueue()
        queue.push_typed(1.0, EVENT_CALLBACK, None)
        batch = queue.pop_batch()
        assert len(batch) == 1
        queue.push_typed(1.0, EVENT_CALLBACK, "late")
        late = queue.pop_batch()
        assert len(late) == 1
        assert late[0][EV_A] == "late"

    def test_discount_cancelled_adjusts_processed_count(self):
        queue = EventQueue()
        queue.push_typed(1.0, EVENT_CALLBACK, None)
        queue.pop()
        assert queue.events_processed == 1
        queue.discount_cancelled()
        assert queue.events_processed == 0

    def test_same_cohort_cancellation_contract(self):
        # The documented pop_batch caveat: the whole cohort is popped before
        # any record executes, so a callback cancelling a *later* record of
        # the same cohort is too late to keep it out of the returned list.
        # The driver contract is to re-check EV_CANCELLED per record and
        # discount the skipped ones.
        queue = EventQueue()
        fired = []
        holder = {}
        queue.push_typed(1.0, EVENT_CALLBACK, lambda: queue.cancel(holder["victim"]))
        holder["victim"] = queue.push_typed(
            1.0, EVENT_CALLBACK, lambda: fired.append("victim")
        )
        batch = queue.pop_batch()
        assert len(batch) == 2  # victim is already popped and counted
        assert queue.events_processed == 2
        executed = 0
        for record in batch:
            if record[EV_CANCELLED]:
                queue.discount_cancelled()
                continue
            record[EV_A]()
            executed += 1
        assert executed == 1
        assert fired == []  # the canceller ran; the victim never did
        assert queue.events_processed == 1  # matches one-pop-at-a-time drain


class TestIterCohort:
    def test_yields_cohort_in_order_then_stops(self):
        queue = EventQueue()
        records = [queue.push_typed(1.0, EVENT_CALLBACK, i) for i in range(4)]
        later = queue.push_typed(2.0, EVENT_CALLBACK, "later")
        assert list(queue.iter_cohort()) == records
        assert list(queue.iter_cohort()) == [later]
        assert list(queue.iter_cohort()) == []

    def test_same_cohort_cancellation_is_safe_by_construction(self):
        # iter_cohort pops lazily, so a record cancelled by an earlier record
        # of the same cohort is skipped and never counted — no
        # discount_cancelled bookkeeping needed.
        queue = EventQueue()
        fired = []
        holder = {}
        queue.push_typed(1.0, EVENT_CALLBACK, lambda: queue.cancel(holder["victim"]))
        holder["victim"] = queue.push_typed(
            1.0, EVENT_CALLBACK, lambda: fired.append("victim")
        )
        survivor = queue.push_typed(1.0, EVENT_CALLBACK, lambda: fired.append("ok"))
        for record in queue.iter_cohort():
            record[EV_A]()
        assert fired == ["ok"]
        assert survivor[EV_CANCELLED] is False
        assert queue.events_processed == 2  # canceller + survivor, not the victim

    def test_same_time_push_during_iteration_joins_cohort(self):
        queue = EventQueue()
        fired = []
        queue.push_typed(
            1.0, EVENT_CALLBACK, lambda: queue.push(1.0, lambda: fired.append("late"))
        )
        for record in queue.iter_cohort():
            record[EV_A]()
        assert fired == ["late"]

    def test_empty_queue_yields_nothing(self):
        queue = EventQueue()
        assert list(queue.iter_cohort()) == []
        assert list(queue.iter_cohort(until=1.0)) == []
        assert queue.events_processed == 0

    def test_fully_cancelled_cohort_terminates_cleanly(self):
        # A head run of cancelled records — including an entirely cancelled
        # cohort — must neither yield nor count, bounded or not.
        queue = EventQueue()
        doomed = [queue.push_typed(1.0, EVENT_CALLBACK, i) for i in range(3)]
        survivor = queue.push_typed(2.0, EVENT_CALLBACK, "ok")
        for record in doomed:
            queue.cancel(record)
        assert list(queue.iter_cohort(until=1.5)) == []
        assert queue.events_processed == 0
        assert list(queue.iter_cohort()) == [survivor]
        assert queue.events_processed == 1

    def test_until_bound_leaves_cohort_untouched(self):
        queue = EventQueue()
        records = [queue.push_typed(2.0, EVENT_CALLBACK, i) for i in range(3)]
        assert list(queue.iter_cohort(until=2.0)) == []  # t >= until: excluded
        assert len(queue) == 3  # nothing popped, nothing counted
        assert queue.events_processed == 0
        assert list(queue.iter_cohort(until=2.5)) == records  # t < until: full cohort
        assert queue.events_processed == 3

    def test_live_counter_consistent_after_bounded_and_cancelled_drains(self):
        # Regression: the live counter must stay exact through the partial
        # pops iter_cohort performs (bounded windows, cancelled purges).
        queue = EventQueue()
        first = [queue.push_typed(1.0, EVENT_CALLBACK, i) for i in range(2)]
        queue.push_typed(2.0, EVENT_CALLBACK, "later")
        queue.cancel(first[1])
        assert len(queue) == 2
        assert list(queue.iter_cohort(until=1.5)) == [first[0]]
        assert len(queue) == 1
        assert bool(queue)
        assert list(queue.iter_cohort(until=1.5)) == []
        assert len(queue) == 1
        assert [r[EV_A] for r in queue.iter_cohort()] == ["later"]
        assert len(queue) == 0
        assert not queue


class TestBatchRecords:
    def test_step_batch_counts_as_len_states(self):
        queue = EventQueue()
        states = [object(), object(), object()]
        record = queue.push_step_batch(1.0, states)
        assert record[EV_KIND] == EVENT_STEP_BATCH
        assert record[EV_A] is states
        assert len(queue) == 3
        assert queue.pop() is record
        assert len(queue) == 0
        assert queue.events_processed == 3

    def test_deliver_batch_counts_as_len_items(self):
        queue = EventQueue()
        items = [(object(), None), (object(), None)]
        record = queue.push_deliver_batch(2.0, items)
        assert record[EV_KIND] == EVENT_DELIVER_BATCH
        assert record[EV_A] is items
        assert len(queue) == 2
        assert queue.pop() is record
        assert queue.events_processed == 2

    def test_batch_advances_seq_by_batch_size(self):
        # Later pushes must sort after the whole batch, exactly as if its
        # events had been pushed one by one.
        queue = EventQueue()
        batch = queue.push_step_batch(1.0, [object()] * 5)
        single = queue.push_typed(1.0, EVENT_CALLBACK, None)
        assert single[EV_SEQ] == batch[EV_SEQ] + 5

    def test_cancel_batch_discounts_all_members(self):
        queue = EventQueue()
        record = queue.push_deliver_batch(1.0, [(object(), None)] * 4)
        assert len(queue) == 4
        queue.cancel(record)
        assert len(queue) == 0
        queue.cancel(record)  # idempotent
        assert len(queue) == 0
        assert queue.pop() is None

    def test_batch_interleaves_with_singles_by_seq(self):
        queue = EventQueue()
        first = queue.push_typed(1.0, EVENT_CALLBACK, "a")
        batch = queue.push_step_batch(1.0, [object(), object()])
        last = queue.push_typed(1.0, EVENT_CALLBACK, "b")
        assert [queue.pop() for _ in range(3)] == [first, batch, last]
        assert queue.events_processed == 4


class TestZeroDelayFastLane:
    def test_same_time_pushes_take_fast_lane(self):
        queue = EventQueue()
        queue.push_typed(1.0, EVENT_CALLBACK, None)
        queue.pop()  # drain point is now t=1.0
        record = queue.push_typed(1.0, EVENT_CALLBACK, None)
        assert not queue._heap  # bypassed the heap
        assert queue._fast[0] is record
        assert queue.pop() is record

    def test_fast_lane_orders_against_heap_by_seq(self):
        queue = EventQueue()
        queue.push_typed(1.0, EVENT_CALLBACK, "warm")
        queue.pop()
        # Heap gets a later-time event first, then a zero-delay event: the
        # zero-delay event (earlier time) must still pop first.
        later = queue.push_typed(2.0, EVENT_CALLBACK, "later")
        fastlane = queue.push_typed(1.0, EVENT_CALLBACK, "now")
        assert queue.pop() is fastlane
        assert queue.pop() is later

    def test_fast_lane_respects_pending_heap_seq_at_same_time(self):
        queue = EventQueue()
        queue.push_typed(1.0, EVENT_CALLBACK, None)
        first_heap = queue.push_typed(1.0, EVENT_CALLBACK, "heap-first")
        queue.pop()  # drain point t=1.0; "heap-first" still pending in heap
        lane = queue.push_typed(1.0, EVENT_CALLBACK, "lane-second")
        # Both pending at t=1.0: the heap record has the smaller seq.
        assert queue.pop() is first_heap
        assert queue.pop() is lane

    def test_cancelled_fast_lane_event_skipped(self):
        queue = EventQueue()
        queue.push_typed(1.0, EVENT_CALLBACK, None)
        queue.pop()
        record = queue.push_typed(1.0, EVENT_CALLBACK, None)
        survivor = queue.push_typed(1.0, EVENT_CALLBACK, "ok")
        queue.cancel(record)
        assert queue.pop() is survivor
        assert queue.peek_time() is None
