"""Tests for the accuracy evaluation harness (repro.core.evaluation)."""

import pytest

from repro.core.baselines import LastValuePredictor
from repro.core.evaluation import evaluate_stream, evaluate_unordered
from repro.core.predictor import BasePredictor, PeriodicityPredictor


class PerfectOracle(BasePredictor):
    """Test helper: predicts a fixed constant, for controllable accuracy."""

    def __init__(self, value=1):
        self.value = value

    def observe(self, value):
        pass

    def predict(self, horizon=1):
        return [self.value] * horizon

    def reset(self):
        pass


class TestEvaluateStream:
    def test_perfect_predictions_on_constant_stream(self):
        result = evaluate_stream([1] * 50, lambda: PerfectOracle(1), horizon=3)
        assert result.accuracies() == [1.0, 1.0, 1.0]
        assert result.as_percentages() == [100.0, 100.0, 100.0]

    def test_all_wrong(self):
        result = evaluate_stream([2] * 50, lambda: PerfectOracle(1), horizon=2)
        assert result.accuracies() == [0.0, 0.0]

    def test_attempts_shrink_with_horizon(self):
        result = evaluate_stream([1] * 10, lambda: PerfectOracle(1), horizon=5)
        assert result.attempts.tolist() == [10, 9, 8, 7, 6]

    def test_none_predictions_count_as_misses_but_not_coverage(self):
        class Silent(BasePredictor):
            def observe(self, value):
                pass

            def predict(self, horizon=1):
                return [None] * horizon

            def reset(self):
                pass

        result = evaluate_stream([1, 2, 3, 4], Silent, horizon=1)
        assert result.accuracy(1) == 0.0
        assert result.coverage(1) == 0.0

    def test_coverage_reflects_predictions_made(self):
        result = evaluate_stream([1] * 10, lambda: PerfectOracle(1), horizon=1)
        assert result.coverage(1) == 1.0

    def test_warmup_excludes_initial_positions(self):
        # Last-value predictor on an alternating stream is always wrong ...
        stream = [1, 2] * 10
        full = evaluate_stream(stream, LastValuePredictor, horizon=1)
        # ... but a constant tail makes the post-warmup accuracy perfect.
        stream2 = [1, 2, 3, 4] + [7] * 20
        warm = evaluate_stream(stream2, LastValuePredictor, horizon=1, warmup=5)
        assert full.accuracy(1) == 0.0
        assert warm.accuracy(1) == 1.0

    def test_periodicity_predictor_high_accuracy_on_periodic_stream(self):
        stream = [1, 2, 3, 4, 5, 6] * 100
        result = evaluate_stream(
            stream, lambda: PeriodicityPredictor(window_size=12), horizon=5
        )
        for k in range(1, 6):
            assert result.accuracy(k) > 0.95

    def test_stream_length_recorded(self):
        result = evaluate_stream([1, 2, 3], lambda: PerfectOracle(), horizon=1)
        assert result.stream_length == 3

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            evaluate_stream([1], lambda: PerfectOracle(), horizon=0)

    def test_invalid_warmup(self):
        with pytest.raises(ValueError):
            evaluate_stream([1], lambda: PerfectOracle(), warmup=-1)

    def test_accuracy_horizon_bounds(self):
        result = evaluate_stream([1, 2], lambda: PerfectOracle(), horizon=2)
        with pytest.raises(ValueError):
            result.accuracy(0)
        with pytest.raises(ValueError):
            result.accuracy(3)

    def test_empty_stream(self):
        result = evaluate_stream([], lambda: PerfectOracle(), horizon=2)
        assert result.accuracy(1) == 0.0
        assert result.attempts.tolist() == [0, 0]

    def test_misbehaving_predictor_rejected(self):
        class Short(BasePredictor):
            def observe(self, value):
                pass

            def predict(self, horizon=1):
                return [1]  # always one prediction regardless of horizon

            def reset(self):
                pass

        with pytest.raises(ValueError):
            evaluate_stream([1, 2, 3], Short, horizon=3)

    @pytest.mark.parametrize("warmup", [0, 3, 17, 100])
    def test_vectorised_scoring_matches_reference_loop(self, warmup):
        """The pre-sized scoring arrays must reproduce the naive protocol."""
        import numpy as np

        rng = np.random.default_rng(9)
        stream = ([1, 2, 3, 4] * 12)[:40]
        stream[rng.integers(0, 40)] = 9  # one perturbed sample
        horizon = 4
        factory = lambda: PeriodicityPredictor(window_size=8, max_period=8)
        result = evaluate_stream(stream, factory, horizon=horizon, warmup=warmup)

        # Straight-line reference implementation of the scoring protocol.
        predictor = factory()
        hits = [0] * horizon
        attempts = [0] * horizon
        predicted = [0] * horizon
        n = len(stream)
        for t in range(n):
            if t >= warmup:
                predictions = predictor.predict(horizon)
                for k in range(1, horizon + 1):
                    target = t + k - 1
                    if target >= n:
                        break
                    attempts[k - 1] += 1
                    if predictions[k - 1] is None:
                        continue
                    predicted[k - 1] += 1
                    if int(predictions[k - 1]) == stream[target]:
                        hits[k - 1] += 1
            predictor.observe(stream[t])

        assert result.hits.tolist() == hits
        assert result.attempts.tolist() == attempts
        assert result.predicted.tolist() == predicted
        assert result.stream_length == n


class TestEvaluateUnordered:
    def test_perfect_overlap_on_constant_stream(self):
        result = evaluate_unordered([1] * 30, lambda: PerfectOracle(1), horizon=5)
        assert result.mean_overlap == pytest.approx(1.0)

    def test_zero_overlap(self):
        result = evaluate_unordered([2] * 30, lambda: PerfectOracle(1), horizon=5)
        assert result.mean_overlap == 0.0

    def test_reordering_hurts_unordered_score_less(self):
        # A periodic stream with random local reorderings (the physical-level
        # noise of the paper): exact-order accuracy collapses, but the
        # multiset of the next few values is preserved much more often — the
        # Section 5.3 argument for buffer pre-allocation.
        import numpy as np

        rng = np.random.default_rng(0)
        swapped = [1, 2, 3, 4] * 100
        for i in range(len(swapped) - 1):
            if rng.random() < 0.15:
                swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
        factory = lambda: PeriodicityPredictor(window_size=8, max_period=16)
        ordered = evaluate_stream(swapped, factory, horizon=4)
        unordered = evaluate_unordered(swapped, factory, horizon=4)
        assert unordered.mean_overlap > ordered.accuracy(1) + 0.1

    def test_positions_counted(self):
        result = evaluate_unordered([1] * 10, lambda: PerfectOracle(1), horizon=5)
        assert result.positions == 6

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            evaluate_unordered([1], lambda: PerfectOracle(), horizon=0)
        with pytest.raises(ValueError):
            evaluate_unordered([1], lambda: PerfectOracle(), warmup=-2)
