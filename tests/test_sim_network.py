"""Tests for repro.sim.network."""

import pytest

from repro.sim.network import NetworkConfig, NetworkModel


class TestNetworkConfig:
    def test_defaults_valid(self):
        config = NetworkConfig()
        assert config.latency > 0
        assert config.bandwidth > 0

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            NetworkConfig(latency=-1.0e-6)

    def test_zero_latency_ideal_network(self):
        # latency=0 models the ideal network used by the scaling benchmarks
        # (lockstep clocks -> wide timestamp cohorts); it must validate and
        # produce exact arrival times.
        config = NetworkConfig(
            latency=0.0, bandwidth=float("inf"), jitter_sigma=0.0, contention=False
        )
        model = NetworkModel(config)
        assert model.deterministic
        assert model.arrival_time(0, 1, 1024, 5.0) == 5.0

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            NetworkConfig(bandwidth=-1.0)

    def test_invalid_jitter(self):
        with pytest.raises(ValueError):
            NetworkConfig(jitter_sigma=-0.1)

    def test_invalid_drop_probability(self):
        with pytest.raises(ValueError):
            NetworkConfig(drop_probability=1.5)

    def test_noiseless_factory(self):
        config = NetworkConfig.noiseless()
        assert config.jitter_sigma == 0.0
        assert config.contention is False
        assert config.drop_probability == 0.0

    def test_noiseless_accepts_overrides(self):
        config = NetworkConfig.noiseless(latency=1e-3)
        assert config.latency == 1e-3

    def test_with_overrides(self):
        config = NetworkConfig().with_overrides(latency=1e-3)
        assert config.latency == 1e-3


class TestNetworkModel:
    def test_serialization_time(self):
        model = NetworkModel(NetworkConfig.noiseless(bandwidth=100.0))
        assert model.serialization_time(200) == pytest.approx(2.0)

    def test_base_transfer_time(self):
        config = NetworkConfig.noiseless(latency=1.0, bandwidth=100.0)
        model = NetworkModel(config)
        assert model.base_transfer_time(100) == pytest.approx(2.0)

    def test_noiseless_arrival_is_deterministic(self):
        config = NetworkConfig.noiseless(latency=1.0, bandwidth=1000.0)
        model = NetworkModel(config)
        assert model.arrival_time(0, 1, 1000, 0.0) == pytest.approx(2.0)

    def test_jitter_never_reduces_latency(self):
        model = NetworkModel(NetworkConfig(jitter_sigma=0.5, contention=False, seed=1))
        base = model.base_transfer_time(100)
        for _ in range(100):
            assert model.arrival_time(0, 1, 100, 0.0) >= base

    def test_same_seed_same_arrivals(self):
        a = NetworkModel(NetworkConfig(seed=7))
        b = NetworkModel(NetworkConfig(seed=7))
        arrivals_a = [a.arrival_time(0, 1, 64, float(i)) for i in range(20)]
        arrivals_b = [b.arrival_time(0, 1, 64, float(i)) for i in range(20)]
        assert arrivals_a == arrivals_b

    def test_different_seed_different_arrivals(self):
        a = NetworkModel(NetworkConfig(seed=7))
        b = NetworkModel(NetworkConfig(seed=8))
        arrivals_a = [a.arrival_time(0, 1, 64, float(i)) for i in range(20)]
        arrivals_b = [b.arrival_time(0, 1, 64, float(i)) for i in range(20)]
        assert arrivals_a != arrivals_b

    def test_contention_serialises_same_destination(self):
        config = NetworkConfig.noiseless(latency=1e-6, bandwidth=1e6, contention=True)
        model = NetworkModel(config)
        # Two large messages injected simultaneously to the same destination:
        # the second cannot finish before the first has drained.
        first = model.arrival_time(0, 2, 10_000, 0.0)
        second = model.arrival_time(1, 2, 10_000, 0.0)
        assert second >= first + model.serialization_time(10_000) * 0.99

    def test_contention_does_not_affect_other_destination(self):
        config = NetworkConfig.noiseless(latency=1e-6, bandwidth=1e6, contention=True)
        model = NetworkModel(config)
        model.arrival_time(0, 2, 10_000, 0.0)
        other = model.arrival_time(1, 3, 10_000, 0.0)
        assert other == pytest.approx(model.base_transfer_time(10_000))

    def test_drop_probability_adds_penalty(self):
        config = NetworkConfig(
            jitter_sigma=0.0,
            contention=False,
            drop_probability=1.0,
            retransmit_penalty=0.5,
            seed=1,
        )
        model = NetworkModel(config)
        assert model.arrival_time(0, 1, 10, 0.0) >= 0.5

    def test_counters(self):
        model = NetworkModel(NetworkConfig(seed=1))
        model.arrival_time(0, 1, 100, 0.0)
        model.arrival_time(0, 1, 200, 0.0)
        assert model.messages_timed == 2
        assert model.total_bytes == 300

    def test_reset_clears_counters_and_links(self):
        model = NetworkModel(NetworkConfig(seed=1))
        model.arrival_time(0, 1, 100, 0.0)
        model.reset()
        assert model.messages_timed == 0
        assert model.total_bytes == 0

    def test_negative_bytes_rejected(self):
        model = NetworkModel(NetworkConfig(seed=1))
        with pytest.raises(ValueError):
            model.arrival_time(0, 1, -5, 0.0)

    def test_negative_inject_time_rejected(self):
        model = NetworkModel(NetworkConfig(seed=1))
        with pytest.raises(ValueError):
            model.arrival_time(0, 1, 5, -1.0)

    def test_seed_override_argument(self):
        model = NetworkModel(NetworkConfig(seed=1), seed=99)
        assert model.config.seed == 99
