"""Behavioural tests of the transport protocols via small simulations."""

import pytest

from repro.runtime.protocol import AlwaysRendezvousFlowControl, StandardFlowControl
from repro.runtime.stats import LatencyAccumulator, RuntimeStats
from repro.sim.engine import Simulator
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkConfig


def run(program, nprocs=2, machine=None, policy=None, network=None):
    sim = Simulator(
        nprocs=nprocs,
        machine=machine or MachineConfig(),
        network=network or NetworkConfig.noiseless(seed=1),
        policy=policy,
        seed=1,
    )
    return sim.run([program])


class TestProtocolSelection:
    def test_small_message_uses_eager(self):
        def program(ctx):
            if ctx.rank == 0:
                yield ctx.comm.send(1, 1024)
            else:
                yield ctx.comm.recv(source=0)

        result = run(program)
        assert result.stats.eager_messages == 1
        assert result.stats.rendezvous_messages == 0
        assert result.stats.control_messages == 0

    def test_large_message_uses_rendezvous(self):
        def program(ctx):
            if ctx.rank == 0:
                yield ctx.comm.send(1, 1024 * 1024)
            else:
                yield ctx.comm.recv(source=0)

        result = run(program)
        assert result.stats.rendezvous_messages == 1
        assert result.stats.control_messages == 2  # RTS + CTS

    def test_threshold_boundary(self):
        machine = MachineConfig(eager_threshold=1000)

        def program(ctx):
            if ctx.rank == 0:
                yield ctx.comm.send(1, 1000, tag=0)
                yield ctx.comm.send(1, 1001, tag=1)
            else:
                yield ctx.comm.recv(source=0, tag=0)
                yield ctx.comm.recv(source=0, tag=1)

        result = run(program, machine=machine)
        assert result.stats.eager_messages == 1
        assert result.stats.rendezvous_messages == 1

    def test_always_rendezvous_policy(self):
        def program(ctx):
            if ctx.rank == 0:
                yield ctx.comm.send(1, 8)
            else:
                yield ctx.comm.recv(source=0)

        result = run(program, policy=AlwaysRendezvousFlowControl())
        assert result.stats.rendezvous_messages == 1
        assert result.stats.forced_rendezvous == 1

    def test_rendezvous_latency_exceeds_eager(self):
        def program(ctx):
            if ctx.rank == 0:
                yield ctx.comm.send(1, 1024, tag=0)      # eager
                yield ctx.comm.send(1, 64 * 1024, tag=1)  # rendezvous
            else:
                yield ctx.comm.recv(source=0, tag=0)
                yield ctx.comm.recv(source=0, tag=1)

        result = run(program)
        assert result.stats.rendezvous_latency.mean > result.stats.eager_latency.mean


class TestUnexpectedMessages:
    def test_unexpected_eager_is_buffered_then_matched(self):
        def program(ctx):
            if ctx.rank == 0:
                yield ctx.comm.send(1, 512)
                yield ctx.comm.compute(0.0)
            else:
                # Delay posting the receive so the message arrives unexpected.
                yield ctx.comm.compute(0.01)
                status = yield ctx.comm.recv(source=0)
                assert status.nbytes == 512

        result = run(program)
        assert result.stats.unexpected_deliveries == 1
        assert result.stats.expected_deliveries == 0

    def test_expected_when_receive_preposted(self):
        def program(ctx):
            if ctx.rank == 0:
                yield ctx.comm.compute(0.01)
                yield ctx.comm.send(1, 512)
            else:
                yield ctx.comm.recv(source=0)

        result = run(program)
        assert result.stats.expected_deliveries == 1
        assert result.stats.unexpected_deliveries == 0

    def test_unexpected_overflow_goes_to_heap(self):
        machine = MachineConfig(eager_threshold=16 * 1024, eager_buffer_bytes=1024)

        def program(ctx):
            if ctx.rank == 0:
                for i in range(5):
                    yield ctx.comm.send(1, 1000, tag=i)
            else:
                yield ctx.comm.compute(0.05)
                for i in range(5):
                    yield ctx.comm.recv(source=0, tag=i)

        result = run(program, machine=machine)
        assert result.stats.unexpected_heap_stores >= 1

    def test_late_rendezvous_receive_completes(self):
        def program(ctx):
            if ctx.rank == 0:
                yield ctx.comm.send(1, 256 * 1024)
            else:
                yield ctx.comm.compute(0.01)
                status = yield ctx.comm.recv(source=0)
                assert status.nbytes == 256 * 1024

        result = run(program)
        assert result.stats.rendezvous_messages == 1


class TestOrderingSemantics:
    def test_fifo_between_same_pair(self):
        """Messages from one sender with the same tag are received in order."""

        def program(ctx):
            if ctx.rank == 0:
                for i in range(20):
                    yield ctx.comm.send(1, 100 + i, tag=7)
            else:
                sizes = []
                for _ in range(20):
                    status = yield ctx.comm.recv(source=0, tag=7)
                    sizes.append(status.nbytes)
                assert sizes == [100 + i for i in range(20)]

        run(program, network=NetworkConfig(jitter_sigma=1.0, seed=3))

    def test_tag_selective_matching(self):
        def program(ctx):
            if ctx.rank == 0:
                yield ctx.comm.send(1, 111, tag=1)
                yield ctx.comm.send(1, 222, tag=2)
            else:
                status_b = yield ctx.comm.recv(source=0, tag=2)
                status_a = yield ctx.comm.recv(source=0, tag=1)
                assert status_b.nbytes == 222
                assert status_a.nbytes == 111

        run(program)

    def test_self_send_rejected(self):
        def program(ctx):
            yield ctx.comm.compute(0.0)
            if ctx.rank == 0:
                from repro.mpi.ops import SendOp

                yield SendOp(dest=0, nbytes=10)

        with pytest.raises(ValueError):
            run(program, nprocs=1)


class TestBufferAccounting:
    def test_default_preallocates_all_peers(self):
        def program(ctx):
            yield ctx.comm.compute(0.0)

        result = run(program, nprocs=5)
        for stats in result.buffer_stats:
            assert stats.peers_with_buffer == 4
            assert stats.preallocated_bytes == 4 * MachineConfig().eager_buffer_bytes

    def test_preallocation_disabled_by_machine_config(self):
        machine = MachineConfig(preallocate_all_peers=False)

        def program(ctx):
            yield ctx.comm.compute(0.0)

        result = run(program, nprocs=5, machine=machine)
        for stats in result.buffer_stats:
            assert stats.peers_with_buffer == 0


class TestRuntimeStats:
    def test_latency_accumulator(self):
        acc = LatencyAccumulator()
        assert acc.mean == 0.0
        acc.add(1.0)
        acc.add(3.0)
        assert acc.mean == pytest.approx(2.0)
        assert acc.maximum == 3.0
        assert acc.count == 2

    def test_record_send_categories(self):
        stats = RuntimeStats()
        stats.record_send(10, "p2p", "eager", forced=False, bypass=False)
        stats.record_send(20, "collective", "rendezvous", forced=True, bypass=False)
        stats.record_send(30, "p2p", "eager", forced=False, bypass=True)
        assert stats.messages_sent == 3
        assert stats.bytes_sent == 60
        assert stats.p2p_messages == 2
        assert stats.collective_messages == 1
        assert stats.forced_rendezvous == 1
        assert stats.eager_bypass_large == 1

    def test_summary_keys(self):
        summary = RuntimeStats(nprocs=4).summary()
        assert summary["nprocs"] == 4
        assert "mean_eager_latency" in summary
        assert "unexpected_heap_stores" in summary

    def test_delivery_counters(self):
        stats = RuntimeStats()
        stats.record_delivery(expected=True)
        stats.record_delivery(expected=False, storage="heap")
        stats.record_delivery(expected=False, storage="buffer")
        assert stats.expected_deliveries == 1
        assert stats.unexpected_deliveries == 2
        assert stats.unexpected_heap_stores == 1


class TestConservation:
    def test_sent_equals_received_across_traces(self):
        def program(ctx):
            comm = ctx.comm
            for _ in range(5):
                yield from comm.alltoall(128)
                yield from comm.allreduce(16)

        result = run(program, nprocs=4, network=NetworkConfig(seed=5))
        total_logical = sum(len(result.trace_for(r).logical) for r in range(4))
        total_physical = sum(len(result.trace_for(r).physical) for r in range(4))
        assert total_logical == result.stats.messages_sent
        assert total_physical == result.stats.messages_sent

    def test_no_unmatched_receives(self):
        def program(ctx):
            yield from ctx.comm.alltoall(64)

        result = run(program, nprocs=3)
        for rank in range(3):
            assert result.tracer.unmatched_receives(rank) == 0


class TestRequestFreelist:
    """Blocking-op request handles are recycled through the transport pool."""

    def test_blocking_ops_populate_the_pool(self):
        def program(ctx):
            other = 1 - ctx.rank
            for i in range(10):
                if ctx.rank == 0:
                    yield ctx.comm.send(other, 64, tag=i)
                else:
                    yield ctx.comm.recv(source=other, tag=i)

        sim = Simulator(nprocs=2, network=NetworkConfig.noiseless(seed=1), seed=1)
        sim.run([program])
        # 10 blocking sends + 10 blocking receives were executed; their
        # handles were engine-internal and must have been recycled.
        assert len(sim.transport._request_pool) > 0

    def test_reused_requests_get_fresh_ids(self):
        from repro.mpi.ops import RecvOp
        from repro.mpi.request import Request
        from repro.runtime.transport import Transport
        from repro.sim.machine import MachineConfig
        from repro.sim.network import NetworkModel

        transport = Transport(
            nprocs=2,
            machine=MachineConfig(),
            network=NetworkModel(NetworkConfig.noiseless(seed=1)),
        )
        done = Request("send", 0)
        done._complete(1.0)
        old_id = done.req_id
        transport.release_request(done)
        request = transport.post_recv(1, RecvOp(source=0, tag=0), now=0.0)
        assert request is done  # the pooled object was handed out again
        assert request.op_kind == "recv"
        assert request.rank == 1
        assert not request.completed
        assert request.status is None
        assert request.req_id > old_id  # fresh identity for per-request keys

    def test_nonblocking_requests_are_never_recycled(self):
        held = []

        def program(ctx):
            other = 1 - ctx.rank
            if ctx.rank == 0:
                req = yield ctx.comm.isend(other, 64)
            else:
                req = yield ctx.comm.irecv(source=other)
            yield ctx.comm.wait(req)
            held.append(req)

        sim = Simulator(nprocs=2, network=NetworkConfig.noiseless(seed=1), seed=1)
        sim.run([program])
        # Program-held handles keep their completed state forever: they were
        # not reinitialised by any pool reuse during the run.
        assert all(req.completed for req in held)
        assert len({id(req) for req in held}) == 2
        assert all(req not in sim.transport._request_pool for req in held)
