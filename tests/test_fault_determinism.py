"""Property tests for the fault-injection determinism contract.

Two guarantees, checked across the whole workload registry and the main
flow-control policies:

* **Zero-rate equivalence** — a spec whose fault configuration cannot fire
  (all rates zero) is bit-identical to one with no fault configuration at
  all: same makespan, same statistics, same physical message streams.
* **Seeded reproducibility** — identical specs (fault seed included)
  produce identical traces, summaries and fault counters, whether the cells
  run sequentially or sharded over a process pool.
"""

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenario import Scenario, ScenarioSpec, Sweep, cell_record
from repro.workloads.registry import workload_names

POLICIES = ["standard", "always-rendezvous", "predictive-credits", "predictive-buffers"]

#: The committed sample trace — trace replay has no generator of its own.
SAMPLE_TRACE = str(Path(__file__).resolve().parent.parent / "examples" / "sample_trace.jsonl")


def _workload_table(name):
    """A smoke-scale spec table for any registry workload."""
    if name == "replay":
        return {"name": name, "nprocs": 4, "params": {"file": SAMPLE_TRACE}}
    return {"name": name, "nprocs": 4, "scale": 0.02}

#: Explicitly zero-rate (rather than the default "none" preset) so the
#: equivalence test exercises the is_null path, not spec equality.
ZERO_RATE_FAULTS = {"drop_rate": 0.0, "degrade_factor": 1.0, "stall_rate": 0.0}


def _fingerprint(result):
    """Everything determinism promises: timing, stats, and both streams."""
    return (
        result.makespan,
        result.stats.summary(),
        list(result.stream("sender", level="logical")),
        list(result.stream("sender", level="physical")),
        list(result.stream("size", level="physical")),
        result.result.fault_stats,
    )


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("workload", workload_names())
def test_zero_rate_faults_bit_identical_to_baseline(workload, policy):
    base = dict(
        workload=_workload_table(workload),
        seed=2003,
        policy=policy,
    )
    baseline = Scenario(ScenarioSpec(**base)).run()
    zero_rate = Scenario(ScenarioSpec(**base, faults=ZERO_RATE_FAULTS)).run()
    assert baseline.result.fault_stats is None
    assert zero_rate.result.fault_stats is None  # no injector was built
    assert _fingerprint(zero_rate) == _fingerprint(baseline)


@pytest.mark.parametrize("policy", POLICIES)
def test_faulted_run_reproducible_from_seed(policy):
    spec = ScenarioSpec(
        workload="bt.4:scale=0.05", seed=7, policy=policy, faults="chaos"
    )
    first, second = Scenario(spec).run(), Scenario(spec).run()
    assert first.result.fault_stats == second.result.fault_stats
    assert _fingerprint(first) == _fingerprint(second)


def test_faulted_sweep_sequential_matches_sharded():
    sweep = Sweep(
        base={"workload": "bt.4:scale=0.05", "seed": 11},
        grid={"faults.drop_rate": [0.0, 0.02]},
        cells=[
            {"workload": "cg:nprocs=4,scale=0.05", "faults": "chaos"},
            {"workload": "is:nprocs=4,scale=0.1", "faults": "stall:rate=0.01"},
        ],
    )
    sequential = sweep.run_all()
    sharded = sweep.run_all(jobs=2)
    assert [cell_record(cell) for cell in sequential] == [
        cell_record(cell) for cell in sharded
    ]
    # The zero-rate grid column really ran without an injector.
    assert "fault_stats" not in cell_record(sequential[0])
    assert cell_record(sequential[1])["fault_stats"]["messages_dropped"] > 0


def test_fault_seed_pinning_decouples_fault_schedule():
    # Pinning the fault seed holds the fault schedule fixed while the run
    # seed varies the rest (jitter, compute noise): the drop decisions (a
    # pure function of the drop stream) stay identical.
    records = []
    for run_seed in (1, 2):
        spec = ScenarioSpec(
            workload="bt.4:scale=0.05",
            seed=run_seed,
            faults="drop:rate=0.05,seed=123",
        )
        records.append(Scenario(spec).run().result.fault_stats)
    assert records[0] == records[1]


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    drop_rate=st.floats(min_value=0.0, max_value=0.2),
)
def test_property_fault_runs_reproducible(seed, drop_rate):
    spec = ScenarioSpec(
        workload="ring-exchange:nprocs=4,scale=0.05",
        seed=seed,
        faults={"drop_rate": drop_rate},
    )
    first, second = Scenario(spec).run(), Scenario(spec).run()
    assert _fingerprint(first) == _fingerprint(second)
    if drop_rate == 0.0:
        assert first.result.fault_stats is None
