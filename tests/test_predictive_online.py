"""Tests for the online per-receiver message predictor (repro.predictive.online)."""

import pytest

from repro.predictive.online import OnlineMessagePredictor, PredictedMessage


def feed_pattern(predictor, receiver, pattern, repetitions):
    for _ in range(repetitions):
        for sender, nbytes in pattern:
            predictor.observe(receiver, sender, nbytes)


class TestOnlineMessagePredictor:
    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            OnlineMessagePredictor(nprocs=0)
        with pytest.raises(ValueError):
            OnlineMessagePredictor(nprocs=2, horizon=0)

    def test_no_predictions_before_learning(self):
        predictor = OnlineMessagePredictor(nprocs=4)
        assert all(not p.complete for p in predictor.predict(0))
        assert predictor.predicted_senders(0) == set()

    def test_learns_periodic_pattern(self):
        predictor = OnlineMessagePredictor(nprocs=4, horizon=4)
        pattern = [(1, 100), (2, 200), (3, 300), (1, 100)]
        feed_pattern(predictor, 0, pattern, 20)
        predictions = predictor.predict(0)
        assert [p.sender for p in predictions] == [1, 2, 3, 1]
        assert [p.nbytes for p in predictions] == [100, 200, 300, 100]
        assert all(p.complete for p in predictions)

    def test_receivers_are_independent(self):
        predictor = OnlineMessagePredictor(nprocs=4, horizon=2)
        feed_pattern(predictor, 0, [(1, 10)], 30)
        assert predictor.predicted_senders(0) == {1}
        assert predictor.predicted_senders(1) == set()

    def test_predicted_senders_set(self):
        predictor = OnlineMessagePredictor(nprocs=4, horizon=4)
        feed_pattern(predictor, 2, [(1, 10), (3, 20)], 20)
        assert predictor.predicted_senders(2) == {1, 3}

    def test_predicted_bytes_from(self):
        predictor = OnlineMessagePredictor(nprocs=4, horizon=4)
        feed_pattern(predictor, 0, [(1, 100), (2, 200)], 20)
        assert predictor.predicted_bytes_from(0, 1) == 200  # appears twice in horizon 4
        assert predictor.predicted_bytes_from(0, 3) == 0

    def test_expects_message_with_and_without_size(self):
        predictor = OnlineMessagePredictor(nprocs=4, horizon=3)
        feed_pattern(predictor, 0, [(1, 100), (2, 200), (3, 300)], 20)
        assert predictor.expects_message(0, 1)
        assert predictor.expects_message(0, 1, 100)
        assert not predictor.expects_message(0, 1, 999)
        assert not predictor.expects_message(0, 3, horizon=2)

    def test_horizon_override(self):
        predictor = OnlineMessagePredictor(nprocs=4, horizon=2)
        feed_pattern(predictor, 0, [(1, 10), (2, 20), (3, 30)], 20)
        assert len(predictor.predict(0, horizon=6)) == 6

    def test_observation_counter(self):
        predictor = OnlineMessagePredictor(nprocs=2)
        feed_pattern(predictor, 0, [(1, 10)], 5)
        assert predictor.observations == 5

    def test_predicted_message_dataclass(self):
        complete = PredictedMessage(sender=1, nbytes=10)
        partial = PredictedMessage(sender=1, nbytes=None)
        assert complete.complete and not partial.complete

    def test_observe_batch_matches_sequential(self):
        pattern = [(1, 100), (2, 200), (3, 300)]
        sequential = OnlineMessagePredictor(nprocs=2)
        feed_pattern(sequential, 0, pattern, 20)
        batched = OnlineMessagePredictor(nprocs=2)
        pairs = pattern * 20
        batched.observe_batch(0, [s for s, _ in pairs], [b for _, b in pairs])
        assert batched.observations == sequential.observations
        assert batched.predict(0) == sequential.predict(0)

    def test_observe_batch_length_mismatch(self):
        predictor = OnlineMessagePredictor(nprocs=2)
        with pytest.raises(ValueError):
            predictor.observe_batch(0, [1, 2], [10])

    def test_observe_batch_empty(self):
        predictor = OnlineMessagePredictor(nprocs=2)
        predictor.observe_batch(0, [], [])
        assert predictor.observations == 0
