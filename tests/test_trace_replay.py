"""Round-trip and importer tests for the trace-driven replay workload.

The replay contract (:mod:`repro.workloads.replay`): running any workload,
saving its traces, and replaying the file reproduces every receiver's
logical ``(sender, tag, nbytes)`` sequence exactly — on every engine, on
both the generator and compiled paths, deterministically.  The DUMPI-style
text importer (:mod:`repro.trace.import_dumpi`) feeds the same pipeline and
rejects malformed input with pointed, line-numbered errors.
"""

import os
from pathlib import Path

import pytest

from repro.scenario import Scenario, ScenarioSpec, WorkloadSpec
from repro.trace.import_dumpi import DumpiParseError, load_dumpi, parse_dumpi
from repro.workloads.compile import compile_info, compile_rank_lanes
from repro.workloads.registry import create_workload
from repro.workloads.replay import ReplayWorkload

#: Deterministic network used everywhere (positive latency so the parallel
#: engine engages rather than falling back).
NETWORK = "noiseless:latency=25e-6"

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
SAMPLE_V2 = EXAMPLES / "sample_trace.jsonl"
SAMPLE_DUMPI = EXAMPLES / "sample_trace.dumpi"


def run_scenario(workload, *, engine="scalar", compiled=False, seed=7, engine_jobs=2):
    spec = ScenarioSpec(
        workload=WorkloadSpec.from_workload(workload),
        seed=seed,
        network=NETWORK,
        engine=engine,
        engine_jobs=engine_jobs,
        compiled=compiled,
    )
    return Scenario(spec, workload=workload).run()


def logical_streams(result):
    """Per-rank logical ``(sender, tag, nbytes)`` sequences."""
    streams = {}
    for rank in range(result.nprocs):
        logical = result.trace_for(rank).logical
        streams[rank] = [
            (r.sender, r.tag, r.nbytes) for r in logical if r.sender >= 0
        ]
    return streams


def fingerprint(result):
    traces = [
        (list(result.trace_for(r).logical), list(result.trace_for(r).physical))
        for r in range(result.nprocs)
    ]
    return (
        result.makespan,
        result.rank_finish_times,
        result.events_processed,
        result.stats.summary(),
        traces,
    )


# ----------------------------------------------------------------------
# v2 round trips: registry workload -> save -> replay:file=
# ----------------------------------------------------------------------
ROUND_TRIP_CELLS = [
    ("ring-exchange", {"nprocs": 4, "iterations": 3}),
    ("collective-mix", {"nprocs": 4, "iterations": 2}),
    ("random-sender", {"nprocs": 5, "iterations": 4}),
]


class TestV2RoundTrip:
    @pytest.mark.parametrize(
        "name,params", ROUND_TRIP_CELLS, ids=[c[0] for c in ROUND_TRIP_CELLS]
    )
    def test_replay_reproduces_logical_streams(self, tmp_path, name, params):
        source = create_workload(name, **params)
        run = run_scenario(source)
        recorded = logical_streams(run.result)
        path = tmp_path / "trace.jsonl"
        assert run.save_traces(path) > 0

        replay = create_workload("replay", nprocs=0, file=str(path))
        assert replay.nprocs == source.nprocs
        replayed = logical_streams(run_scenario(replay).result)
        assert replayed == recorded

    def test_structure_only_replay_keeps_the_streams(self, tmp_path):
        source = create_workload("ring-exchange", nprocs=4, iterations=3)
        run = run_scenario(source)
        path = tmp_path / "trace.jsonl"
        run.save_traces(path)
        replay = create_workload("replay", nprocs=0, file=str(path), time_scale=0)
        result = run_scenario(replay).result
        assert logical_streams(result) == logical_streams(run.result)
        # Collapsed timeline: no recorded pacing, so the replay is faster.
        assert result.makespan <= run.result.makespan

    def test_extra_ranks_replay_empty_programs(self, tmp_path):
        source = create_workload("ring-exchange", nprocs=3, iterations=2)
        run = run_scenario(source)
        path = tmp_path / "trace.jsonl"
        run.save_traces(path)
        replay = create_workload("replay", nprocs=5, file=str(path))
        result = run_scenario(replay).result
        assert result.nprocs == 5
        streams = logical_streams(result)
        assert streams[3] == [] and streams[4] == []
        assert {r: s for r, s in streams.items() if r < 3} == logical_streams(run.result)


# ----------------------------------------------------------------------
# Replay programs land on the op-array fast lane, on every engine
# ----------------------------------------------------------------------
class TestReplayExecution:
    def test_replay_compiles(self):
        replay = create_workload("replay", nprocs=0, file=str(SAMPLE_V2))
        for rank in range(replay.nprocs):
            assert compile_rank_lanes(replay, rank) is not None
        info = compile_info(replay, 0)
        assert info["compiled"] is True and info["ops"] > 0

    def test_compiled_matches_generator(self):
        replay = create_workload("replay", nprocs=0, file=str(SAMPLE_V2))
        generator = run_scenario(replay, compiled=False).result
        compiled = run_scenario(replay, compiled=True).result
        assert fingerprint(compiled) == fingerprint(generator)

    @pytest.mark.parametrize("engine", ["vectorised", "parallel"])
    def test_engines_match_scalar(self, engine):
        replay = create_workload("replay", nprocs=0, file=str(SAMPLE_V2))
        baseline = fingerprint(run_scenario(replay, engine="scalar", compiled=True).result)
        result = run_scenario(replay, engine=engine, compiled=True).result
        assert fingerprint(result) == baseline

    def test_two_runs_are_identical(self):
        replay = create_workload("replay", nprocs=0, file=str(SAMPLE_V2))
        first = fingerprint(run_scenario(replay).result)
        second = fingerprint(run_scenario(replay).result)
        assert first == second

    def test_shorthand_spec_round_trips(self):
        spec = WorkloadSpec.from_shorthand(f"replay:file={SAMPLE_V2}")
        assert spec.name == "replay" and spec.nprocs == 0
        workload = spec.build()
        assert isinstance(workload, ReplayWorkload)
        assert workload.nprocs == workload.trace_nprocs == 4
        # The digest pins the schedule-cache identity to the file content.
        assert len(workload.parameters()["digest"]) == 64


# ----------------------------------------------------------------------
# Replay construction errors
# ----------------------------------------------------------------------
class TestReplayErrors:
    def test_file_is_required(self):
        with pytest.raises(ValueError, match="needs a trace file"):
            ReplayWorkload(nprocs=4)

    def test_missing_file(self):
        with pytest.raises(FileNotFoundError):
            ReplayWorkload(file="no/such/trace.jsonl")

    def test_nprocs_below_trace_count(self):
        with pytest.raises(ValueError, match="smaller than the trace's process count"):
            ReplayWorkload(nprocs=2, file=str(SAMPLE_V2))

    def test_negative_time_scale(self):
        with pytest.raises(ValueError, match="time_scale must be non-negative"):
            ReplayWorkload(file=str(SAMPLE_V2), time_scale=-1)

    def test_empty_file_reports_no_events(self, tmp_path):
        path = tmp_path / "empty.dumpi"
        path.write_text("# only a comment\n\n")
        with pytest.raises(DumpiParseError, match="no events"):
            ReplayWorkload(file=str(path))


# ----------------------------------------------------------------------
# DUMPI importer
# ----------------------------------------------------------------------
class TestDumpiImporter:
    def test_sample_file_parses(self):
        nprocs, receives = load_dumpi(SAMPLE_DUMPI)
        assert nprocs == 3
        assert sorted(receives) == [0, 2]
        assert len(receives[0]) == 4 and len(receives[2]) == 2
        first = receives[0][0]
        assert (first.sender, first.nbytes, first.tag) == (1, 1024, 7)
        assert [event.seq for event in receives[0]] == [0, 1, 2, 3]

    def test_sample_file_replays(self):
        replay = create_workload("replay", nprocs=0, file=str(SAMPLE_DUMPI))
        assert replay.nprocs == 3
        result = run_scenario(replay).result
        streams = logical_streams(result)
        assert streams[0] == [(1, 7, 1024), (2, 7, 2048)] * 2
        assert streams[2] == [(1, 9, 256)] * 2

    def test_meta_nprocs_widens_the_job(self, tmp_path):
        path = tmp_path / "wide.dumpi"
        path.write_text("meta nprocs 6\n0 0.1 MPI_Recv src=1 tag=0 bytes=8\n")
        nprocs, receives = load_dumpi(path)
        assert nprocs == 6 and list(receives) == [0]

    @pytest.mark.parametrize(
        "lines,line_number,pattern",
        [
            (["0 0.1"], 1, "truncated event line"),
            (["x 0.1 MPI_Recv src=1 tag=0 bytes=8"], 1, "not an integer"),
            (["0 huh MPI_Recv src=1 tag=0 bytes=8"], 1, "not a number"),
            (["0 -0.5 MPI_Recv src=1 tag=0 bytes=8"], 1, "must be non-negative"),
            (["0 0.1 MPI_Recv tag=0 bytes=8"], 1, "missing required src="),
            (["0 0.1 MPI_Isend tag=0 bytes=8"], 1, "missing required dest="),
            (["0 0.1 MPI_Recv src=1 tag=0 bytes=8 tag=2"], 1, "duplicate argument"),
            (["0 0.1 MPI_Recv src=1 tag=0 bogus"], 1, "expected key=value"),
            (["0 0.1 Compute src=1 tag=0 bytes=8"], 1, "does not start with 'MPI_'"),
            (["0 0.1 MPI_Barrier", "meta nprocs 2"], 2, "meta header after the first event"),
            (["meta ranks 2"], 1, "unrecognised meta line"),
            (["meta nprocs 0"], 1, "meta nprocs must be positive"),
            (["# nothing"], 1, "no events"),
            (["meta nprocs 2", "", "0 0.1 MPI_Recv src=5 tag=0 bytes=8"], 1,
             "meta nprocs 2 but trace references rank 5"),
        ],
        ids=[
            "truncated", "bad-rank", "bad-time", "negative-time", "missing-src",
            "missing-dest", "duplicate-kv", "bare-token", "non-mpi-call",
            "meta-after-event", "bad-meta", "zero-nprocs", "empty", "rank-overflow",
        ],
    )
    def test_malformed_input_raises_with_line_number(self, lines, line_number, pattern):
        with pytest.raises(DumpiParseError, match=pattern) as excinfo:
            parse_dumpi(lines)
        assert excinfo.value.line_number == line_number
        assert f"line {line_number}:" in str(excinfo.value)

    def test_non_replayable_calls_are_skipped(self):
        nprocs, receives = parse_dumpi(
            [
                "0 0.0 MPI_Init",
                "1 0.1 MPI_Isend dest=0 tag=4 bytes=64",
                "0 0.2 MPI_Recv src=1 tag=4 bytes=64",
                "0 0.3 MPI_Waitall",
                "0 0.4 MPI_Finalize",
            ]
        )
        assert nprocs == 2
        assert [tuple(e) for e in receives[0]] == [(1, 64, 4, 0, 0.2, 0)]
