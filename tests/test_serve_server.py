"""End-to-end tests for the asyncio serve front end (repro.serve.server).

A real TCP server runs on an ephemeral port inside a background event-loop
thread; the blocking :class:`repro.serve.client.ServeClient` drives it from
the test thread.  The contract: batched, backpressured ingestion is
invisible in the responses (bit-identical to a direct service drive),
responses come back in request order, malformed lines answer with a
line-numbered error without killing the connection, and snapshot → restart →
identical responses works over the wire.
"""

import asyncio
import io
import json
import socket
import threading

import pytest

from repro.serve.client import ServeClient, ServeResponseError
from repro.serve.server import ServeServer, run_stdin
from repro.serve.service import ServeService

SPEC = "periodicity:window=6,max_period=12,horizon=4"

PATTERNS = {
    "alpha": [(1, 100), (2, 200)],
    "beta": [(3, 300), (4, 400), (5, 500)],
}


def make_service(num_shards=2, **kwargs):
    return ServeService(SPEC, num_shards=num_shards, **kwargs)


class ServerThread:
    """A ServeServer running in its own event-loop thread."""

    def __init__(self, service, **server_kwargs):
        self.service = service
        self.server_kwargs = server_kwargs
        self.port = None
        self._started = threading.Event()
        self._failure = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            server = ServeServer(self.service, port=0, **self.server_kwargs)
            await server.start()
            self.port = server.port
            self._started.set()
            await server.serve_until_shutdown()

        try:
            asyncio.run(main())
        except BaseException as error:  # surface crashes to the test thread
            self._failure = error
            self._started.set()

    def __enter__(self):
        self._thread.start()
        assert self._started.wait(timeout=10), "server did not start"
        if self._failure is not None:
            raise self._failure
        return self

    def __exit__(self, *exc_info):
        if self._thread.is_alive():
            try:
                with ServeClient.connect(port=self.port, timeout=5) as client:
                    client.shutdown()
            except OSError:
                pass
        self._thread.join(timeout=10)
        assert not self._thread.is_alive(), "server thread did not stop"
        if self._failure is not None and exc_info == (None, None, None):
            raise self._failure


def ingest_patterns(client, repetitions=12):
    for _ in range(repetitions):
        for key, pattern in PATTERNS.items():
            for sender, nbytes in pattern:
                client.observe(key, sender, nbytes)
    client.flush()


def offline_responses():
    """What a direct (loop-free) service drive answers for the same feed."""
    service = make_service()
    for _ in range(12):
        for key, pattern in PATTERNS.items():
            for sender, nbytes in pattern:
                service.observe(key, sender, nbytes)
    from repro.serve.protocol import ServeEvent

    return {
        key: service.handle(ServeEvent(op="predict", receiver=key))
        for key in PATTERNS
    }


class TestTCPServer:
    def test_ingest_and_query_matches_direct_drive(self):
        with ServerThread(make_service()) as server:
            with ServeClient.connect(port=server.port) as client:
                ingest_patterns(client)
                served = {key: client.predict(key) for key in PATTERNS}
        assert served == offline_responses()

    def test_tiny_batches_are_invisible(self):
        # batch_size=1 defeats all coalescing; queue_depth=2 forces constant
        # backpressure. Responses must be bit-identical regardless.
        with ServerThread(make_service(), batch_size=1, queue_depth=2) as server:
            with ServeClient.connect(port=server.port) as client:
                ingest_patterns(client)
                served = {key: client.predict(key) for key in PATTERNS}
        assert served == offline_responses()

    def test_flush_is_a_barrier(self):
        with ServerThread(make_service()) as server:
            with ServeClient.connect(port=server.port) as client:
                for _ in range(50):
                    client.observe("alpha", 1, 100)
                assert client.flush() == {"op": "flush", "ok": True}
                assert client.stats()["observations"] == 50

    def test_expects_and_unknown_receivers(self):
        with ServerThread(make_service()) as server:
            with ServeClient.connect(port=server.port) as client:
                ingest_patterns(client)
                known = client.expects("alpha", 1)
                assert known["known"] is True
                unknown = client.predict("never-seen")
                assert unknown == {
                    "op": "predict",
                    "receiver": "never-seen",
                    "known": False,
                    "predictions": [],
                }

    def test_malformed_line_answers_error_and_connection_survives(self):
        with ServerThread(make_service()) as server:
            with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
                reader = sock.makefile("r", encoding="utf-8", newline="\n")
                sock.sendall(
                    b'{"receiver": "alpha", "sender": 1, "nbytes": 100}\n'
                    b"this is not json\n"
                    b'{"op": "bogus"}\n'
                    b'{"op": "stats"}\n'
                )
                responses = [json.loads(reader.readline()) for _ in range(3)]
        # Line numbers are per-connection and 1-based: the garbage was line 2,
        # the unknown op line 3; both answered, neither killed the socket.
        assert responses[0]["line"] == 2
        assert responses[0]["error"].startswith("line 2: invalid JSON")
        assert responses[1]["line"] == 3
        assert "unknown op 'bogus'" in responses[1]["error"]
        assert responses[2]["op"] == "stats"
        assert responses[2]["parse_errors"] == 2
        assert responses[2]["observations"] == 1

    def test_client_raises_on_error_response(self):
        with ServerThread(make_service()) as server:
            with ServeClient.connect(port=server.port) as client:
                client.send_raw('{"op": "snapshot", "dir": "/proc/version/nope"}')
                with pytest.raises(ServeResponseError):
                    client.flush()  # reads the snapshot error response

    def test_responses_come_back_in_request_order(self):
        with ServerThread(make_service()) as server:
            with ServeClient.connect(port=server.port) as client:
                ingest_patterns(client)
                # Burst of pipelined queries over both shards, read in order.
                for _ in range(20):
                    client.send_raw('{"op": "predict", "receiver": "alpha"}')
                    client.send_raw('{"op": "predict", "receiver": "beta"}')
                client.flush_io()
                for _ in range(20):
                    assert json.loads(client._reader.readline())["receiver"] == "alpha"
                    assert json.loads(client._reader.readline())["receiver"] == "beta"

    def test_snapshot_restart_identical_responses(self, tmp_path):
        snap_dir = tmp_path / "snap"
        with ServerThread(make_service()) as server:
            with ServeClient.connect(port=server.port) as client:
                ingest_patterns(client)
                before = {key: client.predict(key) for key in PATTERNS}
                written = client.snapshot(snap_dir)
                assert written == {
                    "op": "snapshot",
                    "dir": str(snap_dir),
                    "shards": 2,
                    "streams": 2,
                }
        with ServerThread(ServeService.restore(snap_dir)) as server:
            with ServeClient.connect(port=server.port) as client:
                after = {key: client.predict(key) for key in PATTERNS}
        assert after == before

    def test_shutdown_op_stops_the_server(self):
        with ServerThread(make_service()) as server:
            with ServeClient.connect(port=server.port) as client:
                assert client.shutdown() == {"op": "shutdown", "ok": True}
            server._thread.join(timeout=10)
            assert not server._thread.is_alive()

    def test_two_connections_share_the_service(self):
        with ServerThread(make_service()) as server:
            with ServeClient.connect(port=server.port) as writer_client:
                ingest_patterns(writer_client)
            with ServeClient.connect(port=server.port) as reader_client:
                assert reader_client.predict("alpha")["known"] is True


class TestServerValidation:
    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            ServeServer(make_service(), queue_depth=0)
        with pytest.raises(ValueError):
            ServeServer(make_service(), batch_size=0)


class TestStdinTransport:
    def test_pipe_mode_matches_direct_drive(self):
        lines = []
        for _ in range(12):
            for key, pattern in PATTERNS.items():
                for sender, nbytes in pattern:
                    lines.append(json.dumps({"receiver": key, "sender": sender, "nbytes": nbytes}))
        for key in PATTERNS:
            lines.append(json.dumps({"op": "predict", "receiver": key}))
        out = io.StringIO()
        rejected = run_stdin(make_service(), io.StringIO("\n".join(lines) + "\n"), out)
        assert rejected == 0
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert {r["receiver"]: r for r in responses} == offline_responses()

    def test_pipe_mode_counts_rejected_lines(self):
        feed = 'garbage\n\n{"op": "flush"}\n'
        out = io.StringIO()
        service = make_service()
        rejected = run_stdin(service, io.StringIO(feed), out)
        assert rejected == 1
        assert service.parse_errors == 1
        first, second = [json.loads(line) for line in out.getvalue().splitlines()]
        assert first == {"error": "line 1: invalid JSON: Expecting value", "line": 1}
        assert second == {"op": "flush", "ok": True}
