"""Tests for repro.sim.machine."""

import pytest

from repro.sim.machine import MachineConfig


class TestMachineConfig:
    def test_defaults(self):
        config = MachineConfig()
        assert config.eager_threshold == 16 * 1024
        assert config.eager_buffer_bytes == 16 * 1024
        assert config.preallocate_all_peers is True

    def test_protocol_for_size(self):
        config = MachineConfig(eager_threshold=100)
        assert config.protocol_for_size(100) == "eager"
        assert config.protocol_for_size(101) == "rendezvous"

    def test_with_overrides(self):
        config = MachineConfig().with_overrides(eager_threshold=1)
        assert config.eager_threshold == 1
        # original untouched (frozen dataclass semantics)
        assert MachineConfig().eager_threshold == 16 * 1024

    def test_invalid_overheads(self):
        with pytest.raises(ValueError):
            MachineConfig(send_overhead=-1.0)
        with pytest.raises(ValueError):
            MachineConfig(recv_overhead=-1.0)

    def test_invalid_buffer(self):
        with pytest.raises(ValueError):
            MachineConfig(eager_buffer_bytes=0)

    def test_invalid_copy_bandwidth(self):
        with pytest.raises(ValueError):
            MachineConfig(unexpected_copy_bandwidth=0.0)

    def test_frozen(self):
        config = MachineConfig()
        with pytest.raises(Exception):
            config.eager_threshold = 1  # type: ignore[misc]
