"""Tests for the memory-bounded LRU stream table (repro.serve.table).

The contract: deterministic least-recently-used eviction under either cap,
an eviction counter that never resets, and resident-bytes accounting that
tracks the summed per-stream state size — so a serve process's memory
plateaus once a cap is reached, no matter how many distinct streams pass
through.
"""

import pytest

from repro.predictive.online import OnlineMessagePredictor
from repro.predictive.state import state_nbytes
from repro.serve.table import StreamEntry, StreamTable


def make_table(**kwargs):
    return StreamTable(lambda: OnlineMessagePredictor(nprocs=1, horizon=3), **kwargs)


def feed(table, key, count=1):
    entry = table.get(key, create=True)
    for _ in range(count):
        entry.predictor.observe(0, 1, 64)
    table.note_observations(entry, count)
    return entry


class TestLRUOrder:
    def test_get_touches_recency(self):
        table = make_table()
        for key in ("a", "b", "c"):
            feed(table, key)
        assert list(table.keys()) == ["a", "b", "c"]
        table.get("a")  # a plain lookup is a touch
        assert list(table.keys()) == ["b", "c", "a"]

    def test_get_without_create_never_builds_state(self):
        table = make_table()
        assert table.get("ghost") is None
        assert len(table) == 0
        assert table.streams_created == 0

    def test_pop_coldest_order(self):
        table = make_table()
        for key in ("a", "b", "c"):
            feed(table, key)
        table.get("a")
        assert table.pop_coldest()[0] == "b"
        assert table.pop_coldest()[0] == "c"
        assert table.pop_coldest()[0] == "a"
        assert table.pop_coldest() is None
        assert table.evictions == 3


class TestMaxStreams:
    def test_eviction_is_lru_and_counted(self):
        table = make_table(max_streams=2)
        feed(table, "a")
        feed(table, "b")
        feed(table, "c")  # evicts a
        assert list(table.keys()) == ["b", "c"]
        assert table.evictions == 1
        assert table.streams_created == 3
        table.get("b")  # touch b so d evicts c
        feed(table, "d")
        assert list(table.keys()) == ["b", "d"]
        assert table.evictions == 2

    def test_evicted_stream_recreated_fresh(self):
        table = make_table(max_streams=1)
        feed(table, "a", count=10)
        feed(table, "b")  # evicts a and its 10 observations
        entry = table.get("a", create=True)
        assert entry.observations == 0

    def test_eviction_determinism(self):
        # Same operation sequence -> same eviction victims, every time.
        def run():
            table = make_table(max_streams=3)
            victims = []
            before = set()
            for i in range(20):
                key = f"s{i % 7}"
                feed(table, key)
                now = set(table.keys())
                victims.extend(sorted(before - now))
                before = now
            return victims, list(table.keys()), table.evictions

        assert run() == run() == run()


class TestResidentBytes:
    def test_accounting_matches_entry_sizes(self):
        table = make_table()
        for key in ("a", "b", "c"):
            feed(table, key)
        expected = sum(entry.nbytes for _, entry in table.items())
        assert table.resident_bytes == expected
        assert expected >= 3 * 1000  # predictor state is a few KB per stream

    def test_eviction_releases_bytes(self):
        table = make_table()
        feed(table, "a")
        feed(table, "b")
        before = table.resident_bytes
        _, evicted = table.pop_coldest()
        assert table.resident_bytes == before - evicted.nbytes

    def test_max_bytes_plateau(self):
        # Measure one stream's state size, cap the table at ~4 streams'
        # worth, then pour 50 distinct streams through: residency plateaus.
        probe = make_table()
        feed(probe, "probe")
        per_stream = probe.resident_bytes
        table = make_table(max_bytes=per_stream * 4)
        high_water = 0
        for i in range(50):
            feed(table, f"s{i}")
            high_water = max(high_water, table.resident_bytes)
        assert high_water <= per_stream * 4
        assert len(table) <= 4
        assert table.evictions >= 46

    def test_max_bytes_keeps_at_least_one_stream(self):
        table = make_table(max_bytes=1)  # absurdly small cap
        feed(table, "a")
        assert len(table) == 1  # the hot stream is never evicted from under us
        feed(table, "b")
        assert list(table.keys()) == ["b"]

    def test_refresh_interval_refreshes_estimate(self):
        table = make_table(refresh_interval=4)
        entry = table.get("a", create=True)
        entry.nbytes = 0  # pretend the estimate went stale
        table.resident_bytes = 0
        for _ in range(4):
            entry.predictor.observe(0, 1, 64)
        table.note_observations(entry, 4)
        assert entry.nbytes == state_nbytes(entry.predictor)
        assert table.resident_bytes == entry.nbytes


class TestRestoredEntries:
    def test_insert_restored_is_accounted_and_hot(self):
        table = make_table()
        feed(table, "a")
        restored = StreamEntry(OnlineMessagePredictor(nprocs=1, horizon=3))
        restored.refresh_nbytes()
        table.insert_restored("z", restored)
        assert list(table.keys()) == ["a", "z"]
        assert table.resident_bytes == sum(e.nbytes for _, e in table.items())

    def test_insert_restored_replaces_existing(self):
        table = make_table()
        feed(table, "a", count=5)
        fresh = StreamEntry(OnlineMessagePredictor(nprocs=1, horizon=3))
        fresh.refresh_nbytes()
        table.insert_restored("a", fresh)
        assert len(table) == 1
        assert table.get("a").observations == 0
        assert table.resident_bytes == fresh.nbytes


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [{"max_streams": 0}, {"max_bytes": 0}, {"refresh_interval": 0}],
    )
    def test_bad_bounds_rejected(self, kwargs):
        with pytest.raises(ValueError):
            make_table(**kwargs)

    def test_stats_shape(self):
        table = make_table(max_streams=8)
        feed(table, "a")
        stats = table.stats()
        assert stats["streams"] == 1
        assert stats["streams_created"] == 1
        assert stats["evictions"] == 0
        assert stats["max_streams"] == 8
        assert stats["resident_bytes"] == stats["resident_bytes_per_stream"]
