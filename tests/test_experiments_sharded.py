"""Tests for the sharded experiment runner (ExperimentContext.run_all(jobs=N)).

The contract: sharding the 19 paper cells over worker processes must be an
implementation detail — every analysis input (traces at both levels, runtime
statistics, makespans, and therefore Table 1 and the Figure 1-4 streams) is
bit-identical to a sequential run.
"""

import pytest

from repro.analysis.experiments import ExperimentContext
from repro.analysis.figures_streams import figure1, figure2
from repro.analysis.table1 import build_table1, render_table1

SCALE = 0.02
SEED = 17


@pytest.fixture(scope="module")
def sequential_context():
    context = ExperimentContext(seed=SEED, scale=SCALE)
    context.run_all()
    return context


@pytest.fixture(scope="module")
def sharded_context():
    context = ExperimentContext(seed=SEED, scale=SCALE)
    context.run_all(jobs=2)
    return context


class TestShardedEquivalence:
    def test_all_cells_present_in_order(self, sharded_context):
        runs = sharded_context.run_all(jobs=2)  # cached: no pool spin-up
        assert [run.label for run in runs] == [
            c.label for c in sharded_context.configurations()
        ]

    def test_traces_bit_identical(self, sequential_context, sharded_context):
        for seq_run, par_run in zip(
            sequential_context.run_all(), sharded_context.run_all()
        ):
            assert seq_run.label == par_run.label
            rank = seq_run.representative_rank
            assert par_run.representative_rank == rank
            assert seq_run.logical_records() == par_run.logical_records()
            assert seq_run.physical_records() == par_run.physical_records()

    def test_stats_and_makespans_identical(self, sequential_context, sharded_context):
        for seq_run, par_run in zip(
            sequential_context.run_all(), sharded_context.run_all()
        ):
            assert seq_run.result.makespan == par_run.result.makespan
            assert seq_run.result.rank_finish_times == par_run.result.rank_finish_times
            assert seq_run.result.stats.summary() == par_run.result.stats.summary()
            assert seq_run.result.events_processed == par_run.result.events_processed

    def test_table1_identical(self, sequential_context, sharded_context):
        assert render_table1(build_table1(sequential_context)) == render_table1(
            build_table1(sharded_context)
        )

    def test_figure_streams_identical(self, sequential_context, sharded_context):
        seq_fig1 = figure1(sequential_context)
        par_fig1 = figure1(sharded_context)
        assert seq_fig1.senders.tolist() == par_fig1.senders.tolist()
        assert seq_fig1.sizes.tolist() == par_fig1.sizes.tolist()
        assert seq_fig1.sender_period == par_fig1.sender_period
        seq_fig2 = figure2(sequential_context)
        par_fig2 = figure2(sharded_context)
        assert seq_fig2.logical_senders.tolist() == par_fig2.logical_senders.tolist()
        assert seq_fig2.physical_senders.tolist() == par_fig2.physical_senders.tolist()


class TestShardedCaching:
    def test_cached_cells_are_not_resubmitted(self):
        context = ExperimentContext(seed=SEED, scale=SCALE)
        config = context.configurations()[4]  # a CG cell (cheap)
        warm = context.run(config)
        runs = context.run_all(jobs=2)
        # The pre-warmed run object itself is returned (same identity): the
        # pool only simulated the missing cells.
        assert any(run is warm for run in runs)

    def test_jobs_one_is_sequential(self, sequential_context):
        # jobs=1 takes the in-process path (no pool); cached cells make this
        # a pure wiring check.
        runs = sequential_context.run_all(jobs=1)
        assert len(runs) == 19
