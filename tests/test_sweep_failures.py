"""Tests for fault-tolerant sweep execution: isolation, retries, resume.

The acceptance bar: a sweep with k failing cells returns the n-k healthy
results plus k structured failure records; a worker process dying mid-cell
does not poison the batch; ``resume`` re-runs only the cells that have not
completed.
"""

import os

import pytest

from repro.scenario import (
    CachedCell,
    CellFailure,
    Scenario,
    ScenarioResult,
    ScenarioSpec,
    Sweep,
    SweepAborted,
    cell_record,
)
import repro.scenario.sweep as sweep_module
from repro.workloads.base import Workload
from repro.workloads.registry import WORKLOAD_CLASSES


class _SuicideWorkload(Workload):
    """A workload whose rank program kills its process outright.

    Pool workers are forked while the registration fixture is active, so
    they inherit it and the crash happens inside a worker, not the parent.
    """

    name = "test-suicide"

    def default_iterations(self):
        return 1

    def program(self, ctx):
        os._exit(13)
        yield  # pragma: no cover

    def program_for(self, ctx):
        return self.program(ctx)


@pytest.fixture(autouse=True)
def _suicide_workload_registered():
    WORKLOAD_CLASSES[_SuicideWorkload.name] = _SuicideWorkload
    yield
    WORKLOAD_CLASSES.pop(_SuicideWorkload.name, None)


def _mixed_sweep():
    """Two healthy cells around one cell that raises at build time."""
    return Sweep(
        base={"workload": "bt.4", "seed": 7},
        cells=[
            {"workload": "bt.4:scale=0.05"},
            {"workload": {"name": "nosuch", "nprocs": 4}},
            {"workload": "cg.4:scale=0.05"},
        ],
    )


class TestCellIsolation:
    @pytest.mark.parametrize("jobs", [None, 2])
    def test_raising_cell_yields_failure_record(self, jobs):
        outcomes = _mixed_sweep().run_all(jobs=jobs)
        assert [type(o) for o in outcomes] == [
            ScenarioResult, CellFailure, ScenarioResult,
        ]
        failure = outcomes[1]
        assert failure.error_type == "KeyError"
        assert "nosuch" in failure.error_message
        assert failure.attempts == 1  # deterministic errors are not retried
        record = failure.record()
        assert record["spec"]["workload"]["name"] == "nosuch"
        assert record["spec_hash"] == failure.spec.content_hash()

    def test_healthy_results_unaffected_by_failures(self):
        healthy = Sweep(
            base={"workload": "bt.4", "seed": 7},
            cells=[{"workload": "bt.4:scale=0.05"}, {"workload": "cg.4:scale=0.05"}],
        ).run_all()
        mixed = _mixed_sweep().run_all(jobs=2)
        assert cell_record(mixed[0]) == cell_record(healthy[0])
        assert cell_record(mixed[2]) == cell_record(healthy[1])

    def test_worker_death_isolated_and_charged_to_culprit(self):
        sweep = Sweep(
            base={"workload": "bt.4", "seed": 7},
            cells=[
                {"workload": "bt.4:scale=0.05"},
                {"workload": {"name": "test-suicide", "nprocs": 2}},
                {"workload": "cg.4:scale=0.05"},
            ],
        )
        outcomes = sweep.run_all(jobs=2, max_retries=1, retry_backoff=0.01)
        assert isinstance(outcomes[0], ScenarioResult)
        assert isinstance(outcomes[2], ScenarioResult)
        failure = outcomes[1]
        assert isinstance(failure, CellFailure)
        assert failure.error_type == "WorkerCrash"
        assert failure.attempts == 2  # initial + one retry, then charged

    def test_fail_fast_raises_sweep_aborted(self):
        with pytest.raises(SweepAborted, match="nosuch"):
            _mixed_sweep().run_all(jobs=2, fail_fast=True)
        with pytest.raises(SweepAborted, match="nosuch"):
            _mixed_sweep().run_all(fail_fast=True)

    def test_timeout_fails_cell_with_time_limit(self):
        sweep = Sweep(cells=[ScenarioSpec(workload="lu.8", seed=1)])
        (failure,) = sweep.run_all(
            timeout=1e-9, max_retries=1, retry_backoff=0.01
        )
        assert isinstance(failure, CellFailure)
        assert failure.error_type == "TimeLimitExceeded"
        assert failure.attempts == 2  # timeouts are transient: retried once

    def test_timeout_leaves_fast_cells_alone(self):
        sweep = Sweep(cells=[ScenarioSpec(workload="bt.4:scale=0.02", seed=1)])
        (result,) = sweep.run_all(timeout=300.0)
        assert isinstance(result, ScenarioResult)
        # The checkpoint/summary spec is the caller's, not the clamped copy.
        assert result.spec.max_wall_seconds is None


class TestResume:
    def test_checkpoints_written_for_successes_only(self, tmp_path):
        _mixed_sweep().run_all(out=tmp_path)
        checkpoints = sorted((tmp_path / "cells").glob("*.json"))
        assert len(checkpoints) == 2

    def test_resume_reruns_only_unfinished_cells(self, tmp_path, monkeypatch):
        sweep = _mixed_sweep()
        first = sweep.run_all(out=tmp_path)

        ran = []
        real_run_cell = sweep_module._run_cell

        def counting_run_cell(spec, timeout):
            ran.append(spec.label)
            return real_run_cell(spec, timeout)

        monkeypatch.setattr(sweep_module, "_run_cell", counting_run_cell)
        resumed = sweep.run_all(out=tmp_path, resume=True)
        assert ran == ["nosuch.4"]  # only the failed cell re-ran
        assert isinstance(resumed[0], CachedCell)
        assert isinstance(resumed[1], CellFailure)
        assert isinstance(resumed[2], CachedCell)
        # Cached records are exactly what a fresh run would have produced.
        assert resumed[0].record == cell_record(first[0])
        assert resumed[2].record == cell_record(first[2])

    def test_resume_completes_after_fixing_the_failing_cell(self, tmp_path):
        sweep = _mixed_sweep()
        sweep.run_all(out=tmp_path)
        fixed = Sweep(
            base={"workload": "bt.4", "seed": 7},
            cells=[
                {"workload": "bt.4:scale=0.05"},
                {"workload": "is.4:scale=0.1"},
                {"workload": "cg.4:scale=0.05"},
            ],
        )
        outcomes = fixed.run_all(out=tmp_path, resume=True)
        assert isinstance(outcomes[0], CachedCell)
        assert isinstance(outcomes[1], ScenarioResult)  # new spec: no checkpoint
        assert isinstance(outcomes[2], CachedCell)
        # Everything is checkpointed now; a further resume runs nothing.
        again = fixed.run_all(out=tmp_path, resume=True)
        assert all(isinstance(o, CachedCell) for o in again)

    def test_resume_requires_out(self):
        with pytest.raises(ValueError, match="resume"):
            _mixed_sweep().run_all(resume=True)


class TestRetryPolicy:
    def test_negative_max_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            _mixed_sweep().run_all(max_retries=-1)

    def test_deterministic_failure_not_retried_in_pool(self):
        sweep = Sweep(
            base={"workload": "bt.4", "seed": 7},
            cells=[
                {"workload": "bt.4:scale=0.05"},
                {"name": "budget", "max_events": 10},
            ],
        )
        outcomes = sweep.run_all(jobs=2, max_retries=3, retry_backoff=0.01)
        failure = outcomes[1]
        assert isinstance(failure, CellFailure)
        assert failure.error_type == "SimulationError"
        assert failure.attempts == 1

    def test_failure_records_deterministic_across_runs(self):
        records = []
        for _ in range(2):
            outcomes = _mixed_sweep().run_all(jobs=2)
            records.append([o.record() for o in outcomes if isinstance(o, CellFailure)])
        assert records[0] == records[1]
