"""Equivalence matrix for compiled collective operations.

The tentpole contract of the first-class collective ops: a program spelled
with ``CollectiveOp`` yields must simulate **bit-identically** whether it
runs under the generator protocol (gen-stack expansion in the engine) or
the op-array fast lane (macro-expansion in the compiler), on every engine
drain, under every flow-control policy, with and without fault injection.

``tests/test_workloads_compile.py`` pins the lane *encoding*; this module
pins the *outputs*: the full {generator, compiled} x {scalar, vectorised,
parallel} x policy x fault matrix over the collective coverage workload,
plus a hypothesis property over random collective/point-to-point
interleavings.
"""

import pytest

from repro.scenario import Scenario, ScenarioSpec, WorkloadSpec
from repro.workloads.base import Workload
from repro.workloads.compile import compile_info, compile_rank_lanes
from repro.workloads.registry import create_workload

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    HAVE_HYPOTHESIS = False

#: Deterministic positive-latency network so the parallel engine engages.
NETWORK = "noiseless:latency=25e-6"

POLICIES = ["standard", "predictive-buffers", "predictive-credits", "predictive-rendezvous"]

FAULT_PRESETS = [None, "chaos"]

ENGINES = ["scalar", "vectorised", "parallel"]


def fingerprint(result):
    traces = []
    if result.tracer is not None:
        for rank in range(result.nprocs):
            trace = result.trace_for(rank)
            traces.append((list(trace.logical), list(trace.physical)))
    return (
        result.makespan,
        result.rank_finish_times,
        result.events_processed,
        result.stats.summary(),
        result.fault_stats,
        traces,
    )


def run_mix(policy, faults, engine, compiled, workload=None):
    workload = workload or create_workload("collective-mix", nprocs=4, iterations=3)
    spec = ScenarioSpec(
        workload=WorkloadSpec.from_workload(workload),
        seed=31,
        policy=policy,
        faults=faults,
        network=NETWORK,
        engine=engine,
        engine_jobs=2,
        compiled=compiled,
    )
    return Scenario(spec, workload=workload).run().result


#: Generator-protocol scalar baselines, computed once per (policy, faults).
_baselines: dict = {}


def baseline(policy, faults):
    key = (policy, faults)
    if key not in _baselines:
        _baselines[key] = fingerprint(run_mix(policy, faults, "scalar", compiled=False))
    return _baselines[key]


class TestCollectiveEquivalenceMatrix:
    """{generator, compiled} x engines x policies x faults, one fingerprint."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("faults", FAULT_PRESETS)
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("compiled", [False, True], ids=["generator", "compiled"])
    def test_bit_identical_outputs(self, compiled, policy, faults, engine):
        result = run_mix(policy, faults, engine, compiled)
        assert fingerprint(result) == baseline(policy, faults)

    def test_collective_mix_actually_compiles(self):
        info = compile_info(create_workload("collective-mix", nprocs=4), 0)
        assert info == {"compiled": True, "ops": info["ops"]}
        assert info["ops"] > 0


# ----------------------------------------------------------------------
# Property: random collective / point-to-point interleavings
# ----------------------------------------------------------------------

#: One step of a random SPMD program.  Every step is symmetric across ranks
#: (same sequence everywhere), so sends and receives always pair up.
_STEP_KINDS = (
    "bcast", "reduce", "allreduce", "gather", "scatter", "allgather",
    "alltoall", "alltoallv", "barrier", "compute", "p2p", "ialltoall",
    "iallgather", "flush",
)


class _InterleavedWorkload(Workload):
    """Executes a random (but fixed) step sequence on every rank."""

    name = "interleaved-test"

    def __init__(self, nprocs, steps, **kwargs):
        self.steps = tuple(steps)
        super().__init__(nprocs, **kwargs)

    def default_iterations(self):
        return 1

    def parameters(self):
        return {"steps": self.steps}

    def program(self, ctx):
        comm = ctx.comm
        right = (ctx.rank + 1) % self.nprocs
        left = (ctx.rank - 1) % self.nprocs
        varied = [64 * (1 + (d % 3)) for d in range(self.nprocs)]
        pending = []
        for kind, nbytes in self.steps:
            if kind == "bcast":
                yield comm.bcast_op(nbytes, root=0)
            elif kind == "reduce":
                yield comm.reduce_op(nbytes, root=0)
            elif kind == "allreduce":
                yield comm.allreduce_op(nbytes)
            elif kind == "gather":
                yield comm.gather_op(nbytes, root=0)
            elif kind == "scatter":
                yield comm.scatter_op(nbytes, root=0)
            elif kind == "allgather":
                yield comm.allgather_op(nbytes)
            elif kind == "alltoall":
                yield comm.alltoall_op(nbytes)
            elif kind == "alltoallv":
                yield comm.alltoallv_op(varied)
            elif kind == "barrier":
                yield comm.barrier_op()
            elif kind == "compute":
                yield self.compute(ctx, 0.5)
            elif kind == "p2p":
                pending.append((yield comm.irecv(left, tag=11)))
                pending.append((yield comm.isend(right, nbytes, tag=11)))
            elif kind == "ialltoall":
                pending.append((yield comm.ialltoall(nbytes)))
            elif kind == "iallgather":
                pending.append((yield comm.iallgather(nbytes)))
            elif kind == "flush" and pending:
                yield comm.waitall(pending)
                pending = []
        if pending:
            yield comm.waitall(pending)


_steps = st.lists(
    st.tuples(st.sampled_from(_STEP_KINDS), st.sampled_from([64, 512, 4096])),
    min_size=1,
    max_size=12,
)


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestRandomInterleavings:
    @settings(max_examples=12, deadline=None)
    @given(steps=_steps, nprocs=st.sampled_from([2, 4]))
    def test_compiled_matches_generator(self, steps, nprocs):
        compiled_run = run_mix(
            "standard", None, "vectorised", compiled=True,
            workload=_InterleavedWorkload(nprocs=nprocs, steps=steps),
        )
        generator_run = run_mix(
            "standard", None, "scalar", compiled=False,
            workload=_InterleavedWorkload(nprocs=nprocs, steps=steps),
        )
        assert fingerprint(compiled_run) == fingerprint(generator_run)

    @settings(max_examples=6, deadline=None)
    @given(steps=_steps)
    def test_interleavings_stay_on_the_fast_lane(self, steps):
        workload = _InterleavedWorkload(nprocs=4, steps=steps)
        for rank in range(4):
            assert compile_rank_lanes(workload, rank) is not None
