"""Tests for the Dynamic Periodicity Detector (repro.core.dpd)."""

import numpy as np
import pytest

from repro.core.dpd import DynamicPeriodicityDetector


def feed(detector, values):
    for value in values:
        detector.observe(int(value))
    return detector


class TestConstruction:
    def test_invalid_window(self):
        with pytest.raises(ValueError):
            DynamicPeriodicityDetector(window_size=0)

    def test_invalid_max_period(self):
        with pytest.raises(ValueError):
            DynamicPeriodicityDetector(window_size=8, max_period=0)

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            DynamicPeriodicityDetector(mismatch_tolerance=-1)

    def test_max_period_defaults_to_window(self):
        detector = DynamicPeriodicityDetector(window_size=10)
        assert detector.max_period == 10

    def test_max_period_may_exceed_window(self):
        detector = DynamicPeriodicityDetector(window_size=8, max_period=64)
        assert detector.max_period == 64


class TestDetection:
    @pytest.mark.parametrize("period", [1, 2, 3, 5, 7, 18])
    def test_detects_exact_period(self, period):
        pattern = list(range(period))
        stream = pattern * 10
        detector = feed(DynamicPeriodicityDetector(window_size=2 * period + 2), stream)
        assert detector.detect().period == period

    def test_detects_smallest_period(self):
        # Stream with period 4 is also periodic with 8; the smallest is reported.
        stream = [1, 2, 3, 4] * 20
        detector = feed(DynamicPeriodicityDetector(window_size=16), stream)
        assert detector.detect().period == 4

    def test_constant_stream_has_period_one(self):
        detector = feed(DynamicPeriodicityDetector(window_size=8), [7] * 30)
        assert detector.detect().period == 1

    def test_no_period_in_random_stream(self):
        rng = np.random.default_rng(0)
        stream = rng.integers(0, 1000, size=200)
        detector = feed(DynamicPeriodicityDetector(window_size=16, max_period=32), stream)
        assert detector.detect().period is None

    def test_not_enough_history_returns_none(self):
        detector = feed(DynamicPeriodicityDetector(window_size=8), [1, 2, 3])
        result = detector.detect()
        assert result.period is None
        assert result.distances.size == 0

    def test_period_longer_than_window_detected_with_large_max_period(self):
        period = 40
        pattern = list(range(period))
        stream = pattern * 5
        detector = feed(
            DynamicPeriodicityDetector(window_size=16, max_period=64), stream
        )
        assert detector.detect().period == period

    def test_period_beyond_max_period_not_detected(self):
        pattern = list(range(20))
        detector = feed(
            DynamicPeriodicityDetector(window_size=8, max_period=10), pattern * 6
        )
        assert detector.detect().period is None

    def test_perturbation_breaks_exact_detection(self):
        stream = [1, 2, 3, 4] * 10
        stream[30] = 99
        detector = feed(DynamicPeriodicityDetector(window_size=16, max_period=16), stream)
        assert detector.detect().period is None

    def test_tolerance_recovers_from_perturbation(self):
        stream = [1, 2, 3, 4] * 10
        stream[30] = 99
        detector = feed(
            DynamicPeriodicityDetector(window_size=16, max_period=16, mismatch_tolerance=2),
            stream,
        )
        assert detector.detect().period == 4


class TestDistances:
    def test_distance_values_match_equation(self):
        # Stream 1,2,1,2,...: d(2) == 0 and d(1) == window_size (all differ).
        detector = feed(DynamicPeriodicityDetector(window_size=6, max_period=4), [1, 2] * 8)
        distances = detector.distances()
        assert distances[1] == 0  # m=2
        assert distances[0] == 6  # m=1: every position differs
        assert distances[3] == 0  # m=4 is also a period

    def test_distances_bounded_by_window(self):
        rng = np.random.default_rng(1)
        detector = feed(
            DynamicPeriodicityDetector(window_size=12, max_period=12),
            rng.integers(0, 5, size=100),
        )
        distances = detector.distances()
        assert distances.size == 12
        assert (distances >= 0).all() and (distances <= 12).all()

    def test_distances_grow_with_history(self):
        detector = DynamicPeriodicityDetector(window_size=4, max_period=8)
        feed(detector, [1, 2, 3, 4, 5])
        assert detector.distances().size == 1
        feed(detector, [6, 7, 8])
        assert detector.distances().size == 4


class TestStateManagement:
    def test_samples_seen(self):
        detector = feed(DynamicPeriodicityDetector(window_size=4), range(9))
        assert detector.samples_seen == 9

    def test_reset(self):
        detector = feed(DynamicPeriodicityDetector(window_size=4), [1, 2] * 10)
        detector.reset()
        assert detector.samples_seen == 0
        assert detector.detect().period is None

    def test_history_returns_chronological_copy(self):
        detector = feed(DynamicPeriodicityDetector(window_size=3, max_period=3), [1, 2, 3, 4])
        history = detector.history()
        assert history.tolist() == [1, 2, 3, 4]

    def test_detect_result_fields(self):
        detector = feed(DynamicPeriodicityDetector(window_size=4), [5, 6] * 10)
        result = detector.detect()
        assert result.periodic is True
        assert result.samples_seen == 20
