"""Behavioural tests of the application skeletons (message-stream structure).

These tests check the properties of each skeleton that matter for the paper:
per-iteration message counts, the set of senders, the set of message sizes,
and (for BT) the periodicity of the stream — i.e. that the simulated traces
have the same *shape* as the corresponding Table 1 rows.
"""

import pytest

from repro.core.dpd import DynamicPeriodicityDetector
from repro.trace.streams import sender_stream, size_stream, summarize_stream
from repro.workloads.registry import create_workload
from repro.workloads.runner import run_workload


def p2p_records(result, rank):
    return [r for r in result.trace_for(rank).logical if r.kind == "p2p"]


class TestBT:
    def test_messages_per_iteration_is_six_times_side(self, bt9_run):
        workload, result = bt9_run
        records = p2p_records(result, 3)
        assert len(records) == 18 * workload.iterations

    def test_bt4_messages_per_iteration(self, bt4_run):
        workload, result = bt4_run
        records = p2p_records(result, 3)
        assert len(records) == 12 * workload.iterations

    def test_three_distinct_p2p_sizes(self, bt9_run):
        _, result = bt9_run
        sizes = set(size_stream(p2p_records(result, 3)).tolist())
        assert sizes == {3240, 10240, 19440}

    def test_sender_stream_period_is_18_for_bt9(self, bt9_run):
        _, result = bt9_run
        stream = sender_stream(p2p_records(result, 3))
        detector = DynamicPeriodicityDetector(window_size=36, max_period=64)
        for value in stream[:200]:
            detector.observe(int(value))
        assert detector.detect().period == 18

    def test_bt4_has_three_senders(self, bt4_run):
        _, result = bt4_run
        senders = set(sender_stream(p2p_records(result, 3)).tolist())
        assert len(senders) == 3

    def test_all_ranks_receive_same_count(self, bt9_run):
        workload, result = bt9_run
        counts = {len(p2p_records(result, rank)) for rank in range(9)}
        assert counts == {18 * workload.iterations}

    def test_collective_messages_present_but_few(self, bt9_run):
        _, result = bt9_run
        summary = summarize_stream(result.trace_for(3).logical)
        assert 0 < summary.collective_messages <= 12


class TestCG:
    def test_only_p2p_messages(self, cg8_run):
        _, result = cg8_run
        summary = summarize_stream(result.trace_for(1).logical)
        assert summary.collective_messages == 0

    def test_two_distinct_sizes(self, cg8_run):
        _, result = cg8_run
        summary = summarize_stream(result.trace_for(1).logical)
        assert summary.num_distinct_sizes == 2

    def test_messages_per_inner_iteration(self, cg8_run):
        workload, result = cg8_run
        records = p2p_records(result, 1)
        inner_per_outer = workload.INNER_ITERATIONS + 1
        # 3 * log2(num_cols) + 1 receives per inner iteration, plus the outer
        # norm reduction (log2(num_cols) receives per outer iteration).
        expected = workload.iterations * (inner_per_outer * 7 + 2)
        assert len(records) == expected

    def test_few_senders(self, cg8_run):
        _, result = cg8_run
        summary = summarize_stream(result.trace_for(1).logical)
        assert summary.num_distinct_senders <= 4


class TestLU:
    def test_corner_rank_receives_two_per_plane(self, lu4_run):
        workload, result = lu4_run
        records = p2p_records(result, 0)
        sweeps = 2 * (workload.NZ - 1)  # lower + upper sweep receives
        halos = 2  # two neighbours on the open 2x2 grid
        assert len(records) == workload.iterations * (sweeps + halos)

    def test_corner_rank_has_two_senders(self, lu4_run):
        _, result = lu4_run
        senders = set(sender_stream(p2p_records(result, 0)).tolist())
        assert len(senders) == 2

    def test_sizes_are_sweep_and_halo(self, lu4_run):
        workload, result = lu4_run
        sizes = set(size_stream(p2p_records(result, 0)).tolist())
        assert sizes == {workload.SWEEP_BYTES, workload.HALO_BYTES}

    def test_representative_rank_changes_at_32(self):
        assert create_workload("lu", nprocs=4).representative_rank() == 0
        assert create_workload("lu", nprocs=32).representative_rank() == 1


class TestIS:
    def test_p2p_count_equals_iterations(self, is8_run):
        workload, result = is8_run
        records = p2p_records(result, 0)
        assert len(records) == workload.iterations

    def test_collective_messages_dominate(self, is8_run):
        _, result = is8_run
        summary = summarize_stream(result.trace_for(0).logical)
        assert summary.collective_messages > 10 * summary.p2p_messages

    def test_receives_from_every_other_rank(self, is8_run):
        _, result = is8_run
        summary = summarize_stream(result.trace_for(0).logical)
        assert summary.num_distinct_senders == 7

    def test_collective_count_scales_with_nprocs(self):
        small = run_workload(create_workload("is", nprocs=4, scale=1.0), seed=1)
        counts_small = summarize_stream(small.trace_for(0).logical).collective_messages
        large = run_workload(create_workload("is", nprocs=8, scale=1.0), seed=1)
        counts_large = summarize_stream(large.trace_for(0).logical).collective_messages
        assert counts_large > 1.5 * counts_small


class TestSweep3D:
    def test_corner_receives_eight_blocks_per_octant_pair(self, sweep3d6_run):
        workload, result = sweep3d6_run
        # Rank 0 is the (0,0) corner of the 3x2 grid: it has upstream
        # neighbours in 4 of the 8 octants for x and 4 for y.
        records = p2p_records(result, 0)
        expected = workload.iterations * 8 * workload.K_BLOCKS
        assert len(records) == expected

    def test_edge_rank_receives_more(self, sweep3d6_run):
        workload, result = sweep3d6_run
        corner = len(p2p_records(result, 0))
        edge = len(p2p_records(result, 1))
        assert edge == corner * 3 // 2

    def test_two_distinct_sizes(self, sweep3d6_run):
        workload, result = sweep3d6_run
        sizes = set(size_stream(p2p_records(result, 0)).tolist())
        assert sizes == {workload.EW_BYTES, workload.NS_BYTES}

    def test_collectives_once_per_iteration(self, sweep3d6_run):
        workload, result = sweep3d6_run
        summary = summarize_stream(result.trace_for(0).logical)
        assert summary.collective_messages >= workload.iterations


class TestSynthetic:
    def test_periodic_pattern_stream_matches_definition(self):
        pattern = [(1, 100), (2, 200), (1, 100), (3, 300)]
        workload = create_workload("periodic-pattern", nprocs=4, pattern=pattern, iterations=10)
        result = run_workload(workload, seed=1)
        senders = sender_stream(result.trace_for(0).logical).tolist()
        sizes = size_stream(result.trace_for(0).logical).tolist()
        assert senders == [s for s, _ in pattern] * 10
        assert sizes == [b for _, b in pattern] * 10

    def test_periodic_pattern_invalid_sender(self):
        with pytest.raises(ValueError):
            create_workload("periodic-pattern", nprocs=2, pattern=[(5, 10)])

    def test_ring_exchange_alternates_sizes(self):
        workload = create_workload("ring-exchange", nprocs=4, iterations=6)
        result = run_workload(workload, seed=1)
        sizes = size_stream(result.trace_for(0).logical).tolist()
        assert sizes == [workload.SMALL_BYTES, workload.LARGE_BYTES] * 3

    def test_random_sender_receives_expected_total(self):
        workload = create_workload("random-sender", nprocs=4, messages_per_rank=5)
        result = run_workload(workload, seed=1)
        assert len(result.trace_for(0).logical) == 15

    def test_collective_storm_runs(self):
        workload = create_workload("collective-storm", nprocs=4, iterations=3)
        result = run_workload(workload, seed=1)
        summary = summarize_stream(result.trace_for(0).logical)
        assert summary.p2p_messages == 0
        assert summary.collective_messages > 0
