"""Equivalence tests for the incremental DPD engine (repro.core.dpd).

The incremental mismatch counters, the batch path, and the predictor's
vectorised ``observe_many`` must all be *bit-identical* to the naive
from-scratch scan (:meth:`DynamicPeriodicityDetector.distances_naive`) and to
a sequential ``observe`` loop, after every single append.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.dpd as dpd_module
from repro.core.dpd import DynamicPeriodicityDetector
from repro.core.predictor import PeriodicityPredictor

values = st.integers(min_value=0, max_value=5)


def assert_counters_match(detector: DynamicPeriodicityDetector) -> None:
    incremental = detector.distances()
    naive = detector.distances_naive()
    assert incremental.dtype == naive.dtype == np.int64
    np.testing.assert_array_equal(incremental, naive)


class TestIncrementalEqualsNaive:
    @given(
        window=st.integers(1, 16),
        max_period=st.integers(1, 32),
        tolerance=st.integers(0, 3),
        data=st.lists(values, max_size=160),
    )
    @settings(max_examples=80, deadline=None)
    def test_counters_match_naive_after_every_append(
        self, window, max_period, tolerance, data
    ):
        detector = DynamicPeriodicityDetector(window, max_period, tolerance)
        for value in data:
            detector.observe(value)
            assert_counters_match(detector)
            # detect() must agree with the smallest accepted naive delay
            naive = detector.distances_naive()
            accepted = np.nonzero(naive <= tolerance)[0]
            expected = int(accepted[0]) + 1 if accepted.size else None
            assert detector.detect().period == expected
            assert detector.current_period() == expected

    @given(
        window=st.integers(1, 12),
        max_period=st.integers(1, 24),
        tolerance=st.integers(0, 2),
        data=st.lists(values, max_size=120),
        split=st.integers(0, 120),
    )
    @settings(max_examples=80, deadline=None)
    def test_batch_observe_equals_sequential(
        self, window, max_period, tolerance, data, split
    ):
        sequential = DynamicPeriodicityDetector(window, max_period, tolerance)
        step_periods = []
        for value in data:
            sequential.observe(value)
            period = sequential.current_period()
            step_periods.append(0 if period is None else period)

        batched = DynamicPeriodicityDetector(window, max_period, tolerance)
        split = min(split, len(data))
        first = batched.batch_observe(data[:split], return_periods=True)
        second = batched.batch_observe(data[split:], return_periods=True)
        np.testing.assert_array_equal(
            np.concatenate((first, second)),
            np.asarray(step_periods, dtype=np.int64),
        )
        np.testing.assert_array_equal(batched.distances(), sequential.distances())
        assert batched.samples_seen == sequential.samples_seen


class TestEdgeCaseRegressions:
    def test_not_yet_full_buffer_matches_naive_at_every_prefix(self):
        rng = np.random.default_rng(42)
        stream = rng.integers(0, 3, size=30)
        # Capacity is 24, so the 30-sample run covers growing, just-full and
        # freshly wrapped states.
        detector = DynamicPeriodicityDetector(window_size=8, max_period=16)
        for value in stream:
            detector.observe(int(value))
            assert_counters_match(detector)

    def test_wraparound_matches_naive_long_after_buffer_full(self):
        rng = np.random.default_rng(43)
        detector = DynamicPeriodicityDetector(window_size=6, max_period=10)
        # capacity is 16; run 10x longer so the ring wraps many times
        for value in rng.integers(0, 2, size=160):
            detector.observe(int(value))
            assert_counters_match(detector)

    def test_window_larger_than_max_period(self):
        detector = DynamicPeriodicityDetector(window_size=12, max_period=3)
        for value in [1, 2, 3] * 20:
            detector.observe(value)
            assert_counters_match(detector)
        assert detector.detect().period == 3

    def test_max_period_larger_than_window(self):
        detector = DynamicPeriodicityDetector(window_size=4, max_period=30)
        for value in list(range(10)) * 8:
            detector.observe(value)
            assert_counters_match(detector)
        assert detector.detect().period == 10

    def test_reset_clears_counters(self):
        detector = DynamicPeriodicityDetector(window_size=4, max_period=8)
        for value in [1, 2] * 10:
            detector.observe(value)
        detector.reset()
        assert detector.distances().size == 0
        assert detector.detect().period is None
        for value in [3, 4, 5] * 10:
            detector.observe(value)
            assert_counters_match(detector)
        assert detector.detect().period == 3

    def test_batch_observe_empty_input(self):
        detector = DynamicPeriodicityDetector(window_size=4)
        assert detector.batch_observe([], return_periods=True).size == 0
        assert detector.batch_observe([]) is None
        assert detector.samples_seen == 0

    def test_batch_observe_chunked_matches_single_shot(self, monkeypatch):
        rng = np.random.default_rng(44)
        stream = rng.integers(0, 2, size=200)
        monkeypatch.setattr(dpd_module, "_BATCH_CHUNK", 16)
        chunked = DynamicPeriodicityDetector(window_size=5, max_period=9)
        chunked_periods = chunked.batch_observe(stream, return_periods=True)
        monkeypatch.undo()
        single = DynamicPeriodicityDetector(window_size=5, max_period=9)
        single_periods = single.batch_observe(stream, return_periods=True)
        np.testing.assert_array_equal(chunked_periods, single_periods)
        np.testing.assert_array_equal(chunked.distances(), single.distances())

    def test_tolerance_accepted_by_batch_and_incremental(self):
        stream = [1, 2, 3, 4] * 10
        stream[17] = 99
        sequential = DynamicPeriodicityDetector(8, 8, mismatch_tolerance=2)
        for value in stream:
            sequential.observe(value)
            assert_counters_match(sequential)
        batched = DynamicPeriodicityDetector(8, 8, mismatch_tolerance=2)
        periods = batched.batch_observe(stream, return_periods=True)
        assert periods[-1] == 4
        assert sequential.current_period() == 4


class TestPredictorObserveMany:
    @given(
        window=st.integers(1, 10),
        max_period=st.integers(1, 20),
        sticky=st.booleans(),
        data=st.lists(values, max_size=100),
        split=st.integers(0, 100),
    )
    @settings(max_examples=80, deadline=None)
    def test_observe_many_matches_sequential_bookkeeping(
        self, window, max_period, sticky, data, split
    ):
        sequential = PeriodicityPredictor(window, max_period, sticky=sticky)
        for value in data:
            sequential.observe(value)

        batched = PeriodicityPredictor(window, max_period, sticky=sticky)
        split = min(split, len(data))
        batched.observe_many(data[:split])
        batched.observe_many(data[split:])

        assert batched.detections == sequential.detections
        assert batched.period_changes == sequential.period_changes
        assert batched.current_period == sequential.current_period
        assert batched.predict(6) == sequential.predict(6)

    def test_predict_array_matches_predict(self):
        predictor = PeriodicityPredictor(window_size=6, max_period=6)
        predictor.observe_many([4, 5, 6] * 8)
        for horizon in (1, 3, 7):
            array, mask = predictor.predict_array(horizon)
            assert mask.all()
            assert [int(v) for v in array] == predictor.predict(horizon)

    def test_predict_array_declines_before_learning(self):
        predictor = PeriodicityPredictor(window_size=6)
        array, mask = predictor.predict_array(4)
        assert not mask.any()
        assert predictor.predict(4) == [None] * 4

    def test_predict_array_invalid_horizon(self):
        with pytest.raises(ValueError):
            PeriodicityPredictor().predict_array(0)
