"""Structural tests for the collective algorithms (repro.mpi.collectives).

These tests drive the collective generators symbolically (without the
engine): they collect the send/receive operations every rank would issue and
check the global structure — message counts, tree shape, pairing consistency.
"""

from collections import defaultdict

import pytest

from repro.mpi import collectives as coll
from repro.mpi.ops import IrecvOp, IsendOp, RecvOp, SendOp

TAG = 2**20


def gather_ops(generator):
    """Drive a collective generator without an engine, collecting operations."""
    ops = []
    try:
        op = next(generator)
        while True:
            ops.append(op)
            # Feed dummy results: requests/statuses are not inspected by the
            # collective algorithms themselves.
            op = generator.send(None)
    except StopIteration:
        pass
    return ops


def sends_and_recvs(ops):
    sends = [op for op in ops if isinstance(op, (SendOp, IsendOp))]
    recvs = [op for op in ops if isinstance(op, (RecvOp, IrecvOp))]
    return sends, recvs


def total_counts(algorithm, size, *args):
    """Run an algorithm for every rank and return global (sends, recvs)."""
    all_sends, all_recvs = [], []
    for rank in range(size):
        ops = gather_ops(algorithm(rank, size, *args))
        sends, recvs = sends_and_recvs(ops)
        all_sends.extend((rank, op.dest) for op in sends)
        all_recvs.extend((op.source, rank) for op in recvs)
    return all_sends, all_recvs


class TestBroadcast:
    @pytest.mark.parametrize("size", [2, 3, 4, 5, 8, 9, 16])
    @pytest.mark.parametrize("root", [0, 1])
    def test_every_nonroot_receives_exactly_once(self, size, root):
        recv_count = defaultdict(int)
        for rank in range(size):
            ops = gather_ops(coll.broadcast(rank, size, 100, root % size, TAG))
            _sends, recvs = sends_and_recvs(ops)
            recv_count[rank] = len(recvs)
        assert recv_count[root % size] == 0
        for rank in range(size):
            if rank != root % size:
                assert recv_count[rank] == 1

    @pytest.mark.parametrize("size", [2, 4, 7, 16])
    def test_total_messages_is_size_minus_one(self, size):
        sends, recvs = total_counts(coll.broadcast, size, 100, 0, TAG)
        assert len(sends) == size - 1
        assert len(recvs) == size - 1

    def test_sends_pair_with_recvs(self):
        size = 9
        sends, recvs = total_counts(coll.broadcast, size, 100, 2, TAG)
        assert sorted(sends) == sorted(recvs)

    def test_single_rank_is_noop(self):
        assert gather_ops(coll.broadcast(0, 1, 10, 0, TAG)) == []


class TestReduce:
    @pytest.mark.parametrize("size", [2, 3, 4, 5, 8, 13])
    def test_every_nonroot_sends_exactly_once(self, size):
        for rank in range(size):
            ops = gather_ops(coll.reduce(rank, size, 100, 0, TAG))
            sends, _recvs = sends_and_recvs(ops)
            assert len(sends) == (0 if rank == 0 else 1)

    @pytest.mark.parametrize("size", [2, 4, 6, 9])
    def test_message_pairing(self, size):
        sends, recvs = total_counts(coll.reduce, size, 100, 0, TAG)
        assert sorted(sends) == sorted(recvs)
        assert len(sends) == size - 1

    def test_nonzero_root(self):
        size = 8
        sends, recvs = total_counts(coll.reduce, size, 64, 3, TAG)
        # Exactly one rank (the root) never sends.
        senders = {s for s, _d in sends}
        assert senders == set(range(size)) - {3}


class TestAllreduce:
    @pytest.mark.parametrize("size", [2, 3, 4, 8])
    def test_message_count_is_twice_size_minus_one(self, size):
        sends, recvs = total_counts(coll.allreduce, size, 64, TAG)
        assert len(sends) == 2 * (size - 1)
        assert sorted(sends) == sorted(recvs)


class TestAllgather:
    @pytest.mark.parametrize("size", [2, 3, 5, 8])
    def test_ring_structure(self, size):
        for rank in range(size):
            ops = gather_ops(coll.allgather(rank, size, 32, TAG))
            sends, recvs = sends_and_recvs(ops)
            assert len(sends) == size - 1
            assert len(recvs) == size - 1
            assert {op.dest for op in sends} == {(rank + 1) % size}
            assert {op.source for op in recvs} == {(rank - 1) % size}


class TestGatherScatter:
    @pytest.mark.parametrize("size", [2, 4, 7])
    def test_gather_root_receives_from_everyone(self, size):
        ops = gather_ops(coll.gather(0, size, 16, 0, TAG))
        _sends, recvs = sends_and_recvs(ops)
        assert {op.source for op in recvs} == set(range(1, size))

    def test_gather_nonroot_sends_once(self):
        ops = gather_ops(coll.gather(3, 8, 16, 0, TAG))
        sends, recvs = sends_and_recvs(ops)
        assert len(sends) == 1 and len(recvs) == 0

    @pytest.mark.parametrize("size", [2, 4, 7])
    def test_scatter_root_sends_to_everyone(self, size):
        ops = gather_ops(coll.scatter(0, size, 16, 0, TAG))
        sends, _recvs = sends_and_recvs(ops)
        assert {op.dest for op in sends} == set(range(1, size))

    def test_scatter_nonroot_receives_once(self):
        ops = gather_ops(coll.scatter(5, 8, 16, 0, TAG))
        sends, recvs = sends_and_recvs(ops)
        assert len(sends) == 0 and len(recvs) == 1


class TestAlltoall:
    @pytest.mark.parametrize("size", [2, 3, 4, 8])
    def test_every_pair_exchanges(self, size):
        sends, recvs = total_counts(coll.alltoall, size, 16, TAG)
        assert len(sends) == size * (size - 1)
        assert sorted(sends) == sorted(recvs)
        assert set(sends) == {(a, b) for a in range(size) for b in range(size) if a != b}

    def test_alltoallv_uses_per_destination_sizes(self):
        size = 4
        sizes = [0, 10, 20, 30]
        ops = gather_ops(coll.alltoallv(0, size, sizes, TAG))
        sends, _recvs = sends_and_recvs(ops)
        by_dest = {op.dest: op.nbytes for op in sends}
        assert by_dest == {1: 10, 2: 20, 3: 30}

    def test_alltoallv_wrong_length(self):
        with pytest.raises(ValueError):
            gather_ops(coll.alltoallv(0, 4, [1, 2, 3], TAG))

    def test_deterministic_receive_order(self):
        ops = gather_ops(coll.alltoall(2, 5, 8, TAG))
        _sends, recvs = sends_and_recvs(ops)
        assert [op.source for op in recvs] == [(2 - s) % 5 for s in range(1, 5)]


class TestBarrier:
    @pytest.mark.parametrize("size", [2, 3, 4, 5, 8, 9])
    def test_dissemination_rounds(self, size):
        import math

        rounds = math.ceil(math.log2(size))
        for rank in range(size):
            ops = gather_ops(coll.barrier(rank, size, TAG))
            sends, recvs = sends_and_recvs(ops)
            assert len(sends) == rounds
            assert len(recvs) == rounds

    def test_rounds_use_distinct_tags(self):
        ops = gather_ops(coll.barrier(0, 8, TAG))
        sends, _ = sends_and_recvs(ops)
        assert len({op.tag for op in sends}) == 3

    def test_pairing(self):
        sends, recvs = total_counts(coll.barrier, 6, TAG)
        assert sorted(sends) == sorted(recvs)


class TestSendrecv:
    def test_posts_receive_before_send(self):
        ops = gather_ops(coll.sendrecv(1, 100, 2, TAG))
        assert isinstance(ops[0], IrecvOp)
        assert isinstance(ops[1], IsendOp)

    def test_separate_recv_tag(self):
        ops = gather_ops(coll.sendrecv(1, 100, 2, TAG, recv_tag=TAG + 5))
        assert ops[0].tag == TAG + 5
        assert ops[1].tag == TAG
