"""Tests for the MPI matching queues (repro.runtime.matching)."""

from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.request import Request
from repro.runtime.matching import (
    PostedReceive,
    PostedReceiveQueue,
    UnexpectedEntry,
    UnexpectedQueue,
)
from repro.runtime.message import Message


def posted(source=ANY_SOURCE, tag=ANY_TAG, rank=0):
    return PostedReceive(
        request=Request("recv", rank), source=source, tag=tag, kind="p2p", post_time=0.0
    )


def message(src=1, dst=0, tag=0, nbytes=64):
    return Message(src=src, dst=dst, tag=tag, nbytes=nbytes)


class TestPostedReceiveMatching:
    def test_wildcards_accept_everything(self):
        assert posted().accepts(message(src=3, tag=9))

    def test_source_must_match(self):
        assert posted(source=2).accepts(message(src=2))
        assert not posted(source=2).accepts(message(src=3))

    def test_tag_must_match(self):
        assert posted(tag=5).accepts(message(tag=5))
        assert not posted(tag=5).accepts(message(tag=6))

    def test_both_constrained(self):
        entry = posted(source=2, tag=5)
        assert entry.accepts(message(src=2, tag=5))
        assert not entry.accepts(message(src=2, tag=6))
        assert not entry.accepts(message(src=1, tag=5))


class TestPostedReceiveQueue:
    def test_match_in_post_order(self):
        queue = PostedReceiveQueue()
        first = posted(source=ANY_SOURCE)
        second = posted(source=ANY_SOURCE)
        queue.post(first)
        queue.post(second)
        assert queue.match(message()) is first
        assert queue.match(message()) is second

    def test_match_skips_non_matching(self):
        queue = PostedReceiveQueue()
        specific = posted(source=5)
        wildcard = posted(source=ANY_SOURCE)
        queue.post(specific)
        queue.post(wildcard)
        assert queue.match(message(src=1)) is wildcard
        assert len(queue) == 1

    def test_no_match_returns_none(self):
        queue = PostedReceiveQueue()
        queue.post(posted(source=5))
        assert queue.match(message(src=1)) is None
        assert len(queue) == 1


class TestUnexpectedQueue:
    def test_match_in_arrival_order(self):
        queue = UnexpectedQueue()
        first = UnexpectedEntry(message=message(src=1), arrival_time=1.0)
        second = UnexpectedEntry(message=message(src=1), arrival_time=2.0)
        queue.add(first)
        queue.add(second)
        assert queue.match(posted(source=1)) is first
        assert queue.match(posted(source=1)) is second

    def test_match_respects_envelope(self):
        queue = UnexpectedQueue()
        queue.add(UnexpectedEntry(message=message(src=1, tag=1), arrival_time=1.0))
        queue.add(UnexpectedEntry(message=message(src=2, tag=2), arrival_time=2.0))
        matched = queue.match(posted(source=2))
        assert matched is not None and matched.message.src == 2
        assert len(queue) == 1

    def test_no_match(self):
        queue = UnexpectedQueue()
        queue.add(UnexpectedEntry(message=message(src=1), arrival_time=1.0))
        assert queue.match(posted(source=2)) is None

    def test_pending_bytes_excludes_rendezvous_announcements(self):
        queue = UnexpectedQueue()
        queue.add(UnexpectedEntry(message=message(nbytes=100), arrival_time=1.0))
        queue.add(
            UnexpectedEntry(
                message=message(nbytes=1000),
                arrival_time=2.0,
                is_rendezvous_announcement=True,
            )
        )
        assert queue.pending_bytes() == 100


class TestMessage:
    def test_envelope(self):
        assert message(src=1, dst=2, tag=3).envelope() == (1, 2, 3)

    def test_unique_ids(self):
        assert message().msg_id != message().msg_id
