"""Tests for the eager buffer pool (repro.runtime.buffers)."""

import pytest

from repro.runtime.buffers import EagerBufferPool


class TestConstruction:
    def test_preallocate_all(self):
        pool = EagerBufferPool(rank=0, nprocs=8, buffer_bytes=1024, preallocate_all=True)
        assert pool.preallocated_bytes == 7 * 1024
        assert all(pool.has_buffer_for(p) for p in range(1, 8))
        assert not pool.has_buffer_for(0)

    def test_no_preallocation(self):
        pool = EagerBufferPool(rank=0, nprocs=8, buffer_bytes=1024, preallocate_all=False)
        assert pool.preallocated_bytes == 0

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            EagerBufferPool(rank=8, nprocs=8)

    def test_invalid_buffer_bytes(self):
        with pytest.raises(ValueError):
            EagerBufferPool(rank=0, nprocs=2, buffer_bytes=0)


class TestAllocation:
    def test_allocate_on_demand(self):
        pool = EagerBufferPool(rank=0, nprocs=4, buffer_bytes=100, preallocate_all=False)
        assert pool.allocate_for(2) is True
        assert pool.allocate_for(2) is False  # already there
        assert pool.demand_allocations == 1
        assert pool.preallocated_bytes == 100

    def test_allocate_for_self_is_noop(self):
        pool = EagerBufferPool(rank=0, nprocs=4, preallocate_all=False)
        assert pool.allocate_for(0) is False

    def test_release_peer(self):
        pool = EagerBufferPool(rank=0, nprocs=4, buffer_bytes=100, preallocate_all=False)
        pool.allocate_for(1)
        assert pool.release_peer(1) is True
        assert pool.preallocated_bytes == 0

    def test_release_peer_with_data_refused(self):
        pool = EagerBufferPool(rank=0, nprocs=4, buffer_bytes=100, preallocate_all=False)
        pool.allocate_for(1)
        pool.store_unexpected(1, 50)
        assert pool.release_peer(1) is False

    def test_preallocate_validates_peers(self):
        pool = EagerBufferPool(rank=0, nprocs=4, preallocate_all=False)
        with pytest.raises(ValueError):
            pool.preallocate([9])


class TestUnexpectedStorage:
    def test_store_in_buffer(self):
        pool = EagerBufferPool(rank=0, nprocs=4, buffer_bytes=100, preallocate_all=True)
        assert pool.store_unexpected(1, 60) == "buffer"
        assert pool.occupied_bytes == 60
        assert pool.free_bytes_for(1) == 40

    def test_overflow_to_heap_when_full(self):
        pool = EagerBufferPool(rank=0, nprocs=4, buffer_bytes=100, preallocate_all=True)
        pool.store_unexpected(1, 80)
        assert pool.store_unexpected(1, 50) == "heap"
        assert pool.heap_bytes == 50
        assert pool.overflow_events == 1

    def test_heap_when_no_buffer(self):
        pool = EagerBufferPool(rank=0, nprocs=4, buffer_bytes=100, preallocate_all=False)
        assert pool.store_unexpected(2, 10) == "heap"
        assert pool.overflow_events == 1

    def test_release_buffer_storage(self):
        pool = EagerBufferPool(rank=0, nprocs=4, buffer_bytes=100, preallocate_all=True)
        pool.store_unexpected(1, 60)
        pool.release_unexpected(1, 60, "buffer")
        assert pool.occupied_bytes == 0
        assert pool.free_bytes_for(1) == 100

    def test_release_heap_storage(self):
        pool = EagerBufferPool(rank=0, nprocs=4, buffer_bytes=10, preallocate_all=False)
        pool.store_unexpected(1, 50)
        pool.release_unexpected(1, 50, "heap")
        assert pool.heap_bytes == 0

    def test_release_unknown_storage(self):
        pool = EagerBufferPool(rank=0, nprocs=4)
        with pytest.raises(ValueError):
            pool.release_unexpected(1, 10, "disk")

    def test_negative_bytes_rejected(self):
        pool = EagerBufferPool(rank=0, nprocs=4)
        with pytest.raises(ValueError):
            pool.store_unexpected(1, -1)


class TestAccounting:
    def test_peak_tracks_heap(self):
        pool = EagerBufferPool(rank=0, nprocs=4, buffer_bytes=100, preallocate_all=False)
        pool.store_unexpected(1, 500)
        pool.release_unexpected(1, 500, "heap")
        assert pool.peak_total_bytes == 500
        assert pool.heap_bytes == 0

    def test_peak_includes_preallocation(self):
        pool = EagerBufferPool(rank=0, nprocs=11, buffer_bytes=1000, preallocate_all=True)
        assert pool.peak_total_bytes == 10 * 1000

    def test_stats_snapshot(self):
        pool = EagerBufferPool(rank=2, nprocs=4, buffer_bytes=100, preallocate_all=True)
        pool.store_unexpected(1, 10)
        stats = pool.stats()
        assert stats.rank == 2
        assert stats.peers_with_buffer == 3
        assert stats.occupied_bytes == 10
        assert stats.total_bytes == stats.preallocated_bytes + stats.heap_bytes

    def test_free_bytes_for_unbuffered_peer(self):
        pool = EagerBufferPool(rank=0, nprocs=4, preallocate_all=False)
        assert pool.free_bytes_for(1) == 0
