"""Tests for repro.util.text."""

import pytest

from repro.util.text import ascii_bar_chart, ascii_table, format_float, wrap_title


class TestFormatFloat:
    def test_basic(self):
        assert format_float(3.14159) == "3.1"

    def test_digits(self):
        assert format_float(3.14159, digits=3) == "3.142"

    def test_negative_zero_normalised(self):
        assert format_float(-0.0001) == "0.0"

    def test_integer_value(self):
        assert format_float(5.0) == "5.0"


class TestWrapTitle:
    def test_contains_title_and_underline(self):
        text = wrap_title("Hello")
        lines = text.splitlines()
        assert lines[0] == "Hello"
        assert set(lines[1]) == {"="}

    def test_custom_char(self):
        assert wrap_title("Hi", char="-").splitlines()[1].startswith("-")


class TestAsciiTable:
    def test_renders_headers_and_rows(self):
        out = ascii_table(["a", "b"], [[1, 2], [3, 4]])
        assert "a" in out and "b" in out
        assert "1" in out and "4" in out

    def test_title(self):
        out = ascii_table(["x"], [[1]], title="My table")
        assert out.startswith("My table")

    def test_column_mismatch_raises(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = ascii_table(["v"], [[1.2345]])
        assert "1.2" in out

    def test_empty_rows(self):
        out = ascii_table(["a"], [])
        assert "a" in out

    def test_alignment_consistent(self):
        out = ascii_table(["name", "v"], [["x", 1], ["longer", 22]])
        lines = out.splitlines()
        assert len(lines[0]) <= len(lines[-1]) + 2  # widths consistent


class TestAsciiBarChart:
    def test_full_bar_at_max(self):
        out = ascii_bar_chart({"a": 100.0}, max_value=100.0, width=10)
        assert "#" * 10 in out

    def test_zero_value_empty_bar(self):
        out = ascii_bar_chart({"a": 0.0}, max_value=100.0, width=10)
        assert "#" not in out

    def test_title(self):
        out = ascii_bar_chart({"a": 1.0}, title="chart")
        assert out.startswith("chart")

    def test_percent_default_max(self):
        out = ascii_bar_chart({"a": 50.0}, width=10)
        assert out.count("#") == 5

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            ascii_bar_chart({"a": 1.0}, width=0)

    def test_values_clamped(self):
        out = ascii_bar_chart({"a": 200.0}, max_value=100.0, width=10)
        assert "#" * 10 in out

    def test_empty_mapping(self):
        assert ascii_bar_chart({}, unit="") == ""
