"""Shared fixtures for the test suite.

Expensive simulations (full workload runs) are session-scoped so that many
tests can assert different properties of the same traces without re-running
the simulator.
"""

from __future__ import annotations

import pytest

from repro.sim.network import NetworkConfig
from repro.workloads.registry import create_workload
from repro.workloads.runner import run_workload


@pytest.fixture(scope="session")
def bt9_run():
    """A small (but multi-iteration) BT run on 9 processes, with its workload."""
    workload = create_workload("bt", nprocs=9, scale=0.1)
    result = run_workload(workload, seed=42)
    return workload, result


@pytest.fixture(scope="session")
def bt4_run():
    """A small BT run on 4 processes."""
    workload = create_workload("bt", nprocs=4, scale=0.1)
    result = run_workload(workload, seed=42)
    return workload, result


@pytest.fixture(scope="session")
def lu4_run():
    """A small LU run on 4 processes."""
    workload = create_workload("lu", nprocs=4, scale=0.02)
    result = run_workload(workload, seed=42)
    return workload, result


@pytest.fixture(scope="session")
def is8_run():
    """A full-scale IS run on 8 processes (IS is tiny)."""
    workload = create_workload("is", nprocs=8, scale=1.0)
    result = run_workload(workload, seed=42)
    return workload, result


@pytest.fixture(scope="session")
def sweep3d6_run():
    """A small Sweep3D run on 6 processes."""
    workload = create_workload("sweep3d", nprocs=6, scale=0.25)
    result = run_workload(workload, seed=42)
    return workload, result


@pytest.fixture(scope="session")
def cg8_run():
    """A small CG run on 8 processes."""
    workload = create_workload("cg", nprocs=8, scale=0.1)
    result = run_workload(workload, seed=42)
    return workload, result


@pytest.fixture(scope="session")
def noiseless_bt4_run():
    """BT on 4 processes over a perfectly deterministic network."""
    workload = create_workload("bt", nprocs=4, scale=0.1, compute_noise=0.0)
    result = run_workload(workload, seed=42, network=NetworkConfig.noiseless(seed=42))
    return workload, result
