"""Unit tests for the fault-injection subsystem (config, injector, presets)."""

import pytest

from repro.scenario import FaultSpec, Scenario, ScenarioSpec
from repro.sim import SimulationError, TimeLimitExceeded
from repro.sim.faults import FaultConfig, FaultInjector, merge_fault_partials
from repro.sim.registry import create_faults, fault_preset_names


class TestFaultConfig:
    def test_default_is_null(self):
        config = FaultConfig()
        assert config.is_null
        assert not config.drop_active
        assert not config.degrade_active
        assert not config.stall_active

    def test_null_even_with_pinned_seed(self):
        # A pinned seed alone does not make faults live.
        assert FaultConfig(seed=7).is_null

    def test_active_flags(self):
        assert FaultConfig(drop_rate=0.1).drop_active
        assert FaultConfig(degrade_factor=2.0).degrade_active
        assert FaultConfig(stall_rate=0.01).stall_active
        # A degrade factor without window duration cannot fire.
        assert not FaultConfig(degrade_factor=2.0, degrade_duration=0.0).degrade_active
        # A stall rate without stall time cannot fire.
        assert not FaultConfig(stall_rate=0.5, stall_seconds=0.0).stall_active

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop_rate": -0.1},
            {"drop_rate": 1.5},
            {"duplicate_rate": 2.0},
            {"retransmit_timeout": -1.0},
            {"degrade_factor": 0.0},
            {"degrade_interval": 0.0},
            {"stall_rate": -0.01},
            {"max_retransmits": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(**kwargs)

    def test_with_overrides(self):
        config = FaultConfig(drop_rate=0.1).with_overrides(drop_rate=0.2, seed=3)
        assert config.drop_rate == 0.2
        assert config.seed == 3


class TestFaultInjector:
    def test_data_fault_deterministic(self):
        runs = []
        for _ in range(2):
            injector = FaultInjector(FaultConfig(drop_rate=0.3), run_seed=11)
            runs.append([injector.data_fault(0) for _ in range(200)])
        assert runs[0] == runs[1]
        injector_other = FaultInjector(FaultConfig(drop_rate=0.3), run_seed=12)
        assert [injector_other.data_fault(0) for _ in range(200)] != runs[0]

    def test_data_fault_streams_independent_per_sender(self):
        # Per-sender drop streams: each sending rank draws from its own RNG,
        # so a replayed injector reproduces one rank's decisions regardless
        # of how other ranks' draws interleave (the partitioned engine
        # depends on exactly this).
        config = FaultConfig(drop_rate=0.5)
        injector = FaultInjector(config, run_seed=11)
        per_rank = {
            rank: [injector.data_fault(rank) for _ in range(100)] for rank in range(3)
        }
        assert per_rank[0] != per_rank[1]
        replay = FaultInjector(config, run_seed=11)
        assert [replay.data_fault(2) for _ in range(100)] == per_rank[2]

    def test_drop_counters_and_delay_quantum(self):
        config = FaultConfig(drop_rate=0.5, retransmit_timeout=1e-3)
        injector = FaultInjector(config, run_seed=1)
        decisions = [injector.data_fault(0) for _ in range(500)]
        dropped = [delay for delay, _ in decisions if delay > 0.0]
        assert injector.messages_dropped == len(dropped) > 0
        assert injector.retransmissions >= injector.messages_dropped
        # Every delay is a whole number of retransmit timeouts, bounded by
        # the retry cap.
        for delay in dropped:
            attempts = round(delay / config.retransmit_timeout)
            assert 1 <= attempts <= config.max_retransmits
            assert delay == attempts * config.retransmit_timeout

    def test_duplicates_only_on_drops(self):
        config = FaultConfig(drop_rate=0.5, duplicate_rate=1.0)
        injector = FaultInjector(config, run_seed=2)
        for _ in range(100):
            delay, duplicate = injector.data_fault(0)
            assert duplicate == (delay > 0.0)
        assert injector.duplicates_delivered == injector.messages_dropped

    def test_pinned_config_seed_beats_run_seed(self):
        pinned_a = FaultInjector(FaultConfig(drop_rate=0.3, seed=5), run_seed=1)
        pinned_b = FaultInjector(FaultConfig(drop_rate=0.3, seed=5), run_seed=2)
        assert [pinned_a.data_fault(0) for _ in range(100)] == [
            pinned_b.data_fault(0) for _ in range(100)
        ]

    def test_degrade_timeline_alternates_and_is_stable(self):
        config = FaultConfig(
            degrade_factor=4.0, degrade_interval=1e-3, degrade_duration=1e-3
        )
        injector = FaultInjector(config, run_seed=3)
        times = [i * 2.5e-4 for i in range(200)]
        multipliers = [injector.latency_multiplier(t) for t in times]
        assert set(multipliers) == {1.0, 4.0}
        # Queries are pure in time: asking again (including out of order)
        # returns the same window classification.
        assert [injector.latency_multiplier(t) for t in reversed(times)] == list(
            reversed(multipliers)
        )
        assert injector.latency_multiplier(0.0) == 1.0  # timeline starts healthy

    def test_stall_streams_independent_per_rank(self):
        config = FaultConfig(stall_rate=0.5, stall_seconds=1e-3)
        injector = FaultInjector(config, run_seed=4)
        per_rank = {rank: [injector.stall(rank) for _ in range(100)] for rank in range(3)}
        assert per_rank[0] != per_rank[1]
        # Re-derived injector reproduces each rank's schedule exactly,
        # regardless of rank interleaving order.
        replay = FaultInjector(config, run_seed=4)
        replayed = [replay.stall(2) for _ in range(100)]
        assert replayed == per_rank[2]
        assert injector.stalls == sum(
            1 for delays in per_rank.values() for d in delays if d > 0.0
        )
        assert injector.stall_time == pytest.approx(
            sum(d for delays in per_rank.values() for d in delays)
        )


class TestFaultPartials:
    def test_merged_partials_match_single_injector(self):
        # Two partition-local injectors, each fed a disjoint half of the
        # ranks, must merge to exactly what one whole-job injector counts —
        # this is the invariant the parallel engine's result merge rests on.
        config = FaultConfig(
            drop_rate=0.5, duplicate_rate=0.5, stall_rate=0.5, stall_seconds=1e-3
        )
        whole = FaultInjector(config, run_seed=9)
        parts = [FaultInjector(config, run_seed=9) for _ in range(2)]
        for rank in range(4):
            part = parts[rank // 2]
            for _ in range(50):
                assert part.data_fault(rank) == whole.data_fault(rank)
                assert part.stall(rank) == whole.stall(rank)
        merged = merge_fault_partials([p.partial_counters() for p in parts])
        assert merged == whole.counters()

    def test_merge_of_empty_partials(self):
        assert merge_fault_partials([]) == FaultInjector(
            FaultConfig(drop_rate=0.1), run_seed=1
        ).counters()


class TestFaultPresets:
    def test_registry_names(self):
        assert {"none", "drop", "degrade", "stall", "chaos"} <= set(
            fault_preset_names()
        )

    def test_none_preset_is_null(self):
        assert create_faults("none", seed=7).is_null

    def test_alias_parameters(self):
        assert create_faults("drop", rate=0.05).drop_rate == 0.05
        assert create_faults("degrade", factor=8.0).degrade_factor == 8.0
        assert create_faults("stall", rate=0.01).stall_rate == 0.01

    def test_explicit_field_override_beats_alias(self):
        # Sweep grids set real field names; they must not collide with the
        # preset's alias parameter.
        assert create_faults("drop", drop_rate=0.5).drop_rate == 0.5
        assert create_faults("chaos", drop_rate=0.5).drop_rate == 0.5

    def test_chaos_preset_combines_models(self):
        config = create_faults("chaos")
        assert config.drop_active and config.degrade_active and config.stall_active


class TestFaultSpec:
    def test_shorthand_with_seed(self):
        spec = FaultSpec.coerce("drop:rate=0.01,seed=7")
        assert spec.preset == "drop"
        assert spec.seed == 7  # seed normalised out of overrides
        assert dict(spec.overrides) == {"rate": 0.01}
        config = spec.build(run_seed=99)
        assert config.seed == 7 and config.drop_rate == 0.01

    def test_unpinned_seed_derives_from_run_seed(self):
        assert FaultSpec.coerce("chaos").build(run_seed=42).seed == 42

    def test_double_seed_pin_rejected(self):
        with pytest.raises(ValueError, match="seed twice"):
            FaultSpec(preset="drop", seed=1, overrides={"seed": 2})

    def test_config_roundtrip(self):
        config = FaultConfig(drop_rate=0.1, degrade_factor=2.0)
        spec = FaultSpec.coerce(config)
        assert spec.build(run_seed=5) == config.with_overrides(seed=5)

    def test_dict_form_and_to_dict_roundtrip(self):
        spec = FaultSpec.coerce({"preset": "drop", "rate": 0.02, "seed": 3})
        assert FaultSpec.coerce(spec.to_dict()) == spec

    def test_scenario_spec_default_faults(self):
        spec = ScenarioSpec(workload="bt.4")
        assert spec.faults == FaultSpec()
        assert spec.faults.build(spec.seed).is_null


class TestEngineGuards:
    def test_max_wall_seconds_raises_time_limit(self):
        spec = ScenarioSpec(workload="lu.8", seed=1, max_wall_seconds=1e-9)
        with pytest.raises(TimeLimitExceeded):
            Scenario(spec).run()

    def test_time_limit_is_a_simulation_error(self):
        assert issubclass(TimeLimitExceeded, SimulationError)

    def test_max_wall_seconds_must_be_positive(self):
        with pytest.raises(ValueError, match="max_wall_seconds"):
            ScenarioSpec(workload="bt.4", max_wall_seconds=0.0)

    def test_generous_budget_does_not_trip(self):
        spec = ScenarioSpec(workload="bt.4:scale=0.02", max_wall_seconds=300.0)
        result = Scenario(spec).run()
        assert result.makespan > 0.0
