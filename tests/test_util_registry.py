"""Tests for the generic component registry (repro.util.registry)."""

import pytest

from repro.util.registry import ComponentRegistry


@pytest.fixture
def registry():
    reg = ComponentRegistry("widget")
    reg.register(
        "basic",
        dict,
        aliases=("b",),
        defaults={"size": 1},
        param_aliases={"sz": "size"},
        description="a basic widget",
    )
    return reg


class TestComponentRegistry:
    def test_create_applies_defaults_and_aliases(self, registry):
        assert registry.create("basic") == {"size": 1}
        assert registry.create("b", sz=4, color="red") == {"size": 4, "color": "red"}

    def test_canonical_name_resolution(self, registry):
        assert registry.canonical_name("b") == "basic"
        assert "b" in registry and "basic" in registry
        assert "nope" not in registry

    def test_unknown_name_lists_available(self, registry):
        with pytest.raises(KeyError, match="unknown widget 'x'; available: basic"):
            registry.create("x")

    def test_duplicate_registration_rejected(self, registry):
        with pytest.raises(ValueError, match="already registered"):
            registry.register("basic", dict)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("fresh", dict, aliases=("b",))

    def test_bad_params_mention_component(self, registry):
        reg = ComponentRegistry("widget")
        reg.register("strict", lambda: object())
        with pytest.raises(TypeError, match="widget 'strict'"):
            reg.create("strict", unexpected=1)

    def test_describe_is_jsonable(self, registry):
        (entry,) = registry.describe()
        assert entry == {
            "name": "basic",
            "aliases": ["b"],
            "defaults": {"size": 1},
            "description": "a basic widget",
        }
