"""Figures 3 and 4: prediction accuracy of the sender and size streams.

Both figures plot, for every application and process count, the accuracy of
predicting the next five senders (left column) and the next five message
sizes (right column) of the stream received by one process.  Figure 3 uses
the logical-level streams, Figure 4 the physical-level streams.

:func:`figure3` / :func:`figure4` regenerate the underlying numbers with the
paper's predictor; the result object renders as ASCII bar charts comparable
to the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.experiments import ExperimentContext, ExperimentRun
from repro.core.evaluation import evaluate_stream
from repro.core.predictor import BasePredictor, PeriodicityPredictor
from repro.trace.streams import sender_stream, size_stream
from repro.util.text import ascii_bar_chart, wrap_title

__all__ = ["ConfigAccuracy", "AccuracyFigure", "figure3", "figure4"]

#: Default predictor configuration used for the figures: a short comparison
#: window (fast learning, tolerant of stream length) scanning a generous
#: period range (Sweep3D's full octant cycle spans >100 messages).
DEFAULT_WINDOW = 24
DEFAULT_MAX_PERIOD = 256


def default_predictor_factory() -> BasePredictor:
    """The predictor the figures use unless told otherwise."""
    return PeriodicityPredictor(window_size=DEFAULT_WINDOW, max_period=DEFAULT_MAX_PERIOD)


@dataclass(frozen=True)
class ConfigAccuracy:
    """Prediction accuracy for one configuration (one group of bars)."""

    label: str
    rank: int
    stream_length: int
    sender_accuracy: tuple[float, ...]
    size_accuracy: tuple[float, ...]

    def bars(self, stream: str) -> dict[str, float]:
        """Bar-chart data (percentages) for ``stream`` ('sender' or 'size')."""
        values = self.sender_accuracy if stream == "sender" else self.size_accuracy
        return {f"{self.label} +{k}": value for k, value in enumerate(values, start=1)}


@dataclass
class AccuracyFigure:
    """A regenerated Figure 3 or Figure 4."""

    name: str
    level: str
    horizon: int
    configs: list[ConfigAccuracy] = field(default_factory=list)

    def config(self, label: str) -> ConfigAccuracy:
        """Look up one configuration by its label (e.g. ``"bt.9"``)."""
        for config in self.configs:
            if config.label == label:
                return config
        raise KeyError(f"no configuration labelled {label!r} in {self.name}")

    def labels(self) -> list[str]:
        """All configuration labels, in figure order."""
        return [config.label for config in self.configs]

    def mean_accuracy(self, stream: str = "sender", horizon: int = 1) -> float:
        """Mean accuracy across configurations for one stream and horizon."""
        if not self.configs:
            return 0.0
        index = horizon - 1
        values = [
            (config.sender_accuracy if stream == "sender" else config.size_accuracy)[index]
            for config in self.configs
        ]
        return sum(values) / len(values)

    def render(self) -> str:
        """ASCII bar charts, one group per configuration, like the paper's plots."""
        lines = [wrap_title(f"{self.name} — prediction of the {self.level} MPI communication")]
        for stream, title in (("sender", "sender prediction"), ("size", "message size prediction")):
            lines.append("")
            lines.append(title)
            for config in self.configs:
                lines.append(ascii_bar_chart(config.bars(stream), max_value=100.0, width=40))
        return "\n".join(lines)


def _streams_for(run: ExperimentRun, level: str):
    records = run.logical_records() if level == "logical" else run.physical_records()
    return sender_stream(records), size_stream(records)


def _accuracy_figure(
    name: str,
    level: str,
    context: ExperimentContext | None,
    horizon: int,
    predictor_factory: Callable[[], BasePredictor] | None,
    configurations: Sequence | None,
) -> AccuracyFigure:
    context = context or ExperimentContext()
    factory = predictor_factory or default_predictor_factory
    figure = AccuracyFigure(name=name, level=level, horizon=horizon)
    runs = (
        [context.run(configuration) for configuration in configurations]
        if configurations is not None
        else context.run_all()
    )
    for run in runs:
        senders, sizes = _streams_for(run, level)
        sender_result = evaluate_stream(senders, factory, horizon=horizon)
        size_result = evaluate_stream(sizes, factory, horizon=horizon)
        figure.configs.append(
            ConfigAccuracy(
                label=run.label,
                rank=run.representative_rank,
                stream_length=len(senders),
                sender_accuracy=tuple(sender_result.as_percentages()),
                size_accuracy=tuple(size_result.as_percentages()),
            )
        )
    return figure


def figure3(
    context: ExperimentContext | None = None,
    horizon: int = 5,
    predictor_factory: Callable[[], BasePredictor] | None = None,
    configurations: Sequence | None = None,
) -> AccuracyFigure:
    """Regenerate Figure 3: prediction of the logical MPI communication."""
    return _accuracy_figure(
        "Figure 3", "logical", context, horizon, predictor_factory, configurations
    )


def figure4(
    context: ExperimentContext | None = None,
    horizon: int = 5,
    predictor_factory: Callable[[], BasePredictor] | None = None,
    configurations: Sequence | None = None,
) -> AccuracyFigure:
    """Regenerate Figure 4: prediction of the physical MPI communication."""
    return _accuracy_figure(
        "Figure 4", "physical", context, horizon, predictor_factory, configurations
    )
