"""Figures 1 and 2: the message streams themselves.

* **Figure 1** shows a portion of the sender and message-size streams received
  by process 3 of bt.9 and the fact that both are periodic (period 18 in the
  paper).  :func:`figure1` extracts the same streams from the simulated trace
  and reports the DPD-detected period.
* **Figure 2** contrasts the logical and physical sender streams of process 3
  of bt.4: the same repeating pattern, with occasional local reorderings at
  the physical level.  :func:`figure2` returns both streams plus the positions
  at which they disagree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.experiments import ExperimentContext
from repro.core.dpd import DynamicPeriodicityDetector
from repro.trace.streams import sender_stream, size_stream
from repro.util.text import wrap_title

__all__ = ["Figure1Result", "Figure2Result", "figure1", "figure2"]


def _detect_period(stream: np.ndarray, window_size: int = 24, max_period: int = 256) -> int | None:
    """Detect the periodicity of a full stream with the DPD (batch path)."""
    detector = DynamicPeriodicityDetector(window_size=window_size, max_period=max_period)
    periods = detector.batch_observe(np.asarray(stream, dtype=np.int64), return_periods=True)
    detected = periods[periods > 0]
    return int(detected[-1]) if detected.size else None


@dataclass(frozen=True)
class Figure1Result:
    """Regenerated Figure 1: periodic streams at one receiving process."""

    label: str
    rank: int
    senders: np.ndarray
    sizes: np.ndarray
    sender_period: int | None
    size_period: int | None
    distinct_senders: tuple[int, ...]
    distinct_sizes: tuple[int, ...]

    def render(self, samples: int = 60) -> str:
        """Plain-text rendering of a portion of both streams."""
        lines = [wrap_title(f"Figure 1 — streams received by process {self.rank} of {self.label}")]
        lines.append(f"sender stream (period {self.sender_period}):")
        lines.append("  " + " ".join(str(int(v)) for v in self.senders[:samples]))
        lines.append(f"size stream (period {self.size_period}):")
        lines.append("  " + " ".join(str(int(v)) for v in self.sizes[:samples]))
        lines.append(f"distinct senders: {list(self.distinct_senders)}")
        lines.append(f"distinct sizes:   {list(self.distinct_sizes)}")
        return "\n".join(lines)


def figure1(
    context: ExperimentContext | None = None,
    workload: str = "bt",
    nprocs: int = 9,
    rank: int | None = None,
    p2p_only: bool = True,
) -> Figure1Result:
    """Regenerate Figure 1 (default: sender/size streams of bt.9, process 3)."""
    context = context or ExperimentContext()
    run = context.run_named(workload, nprocs)
    observed_rank = run.representative_rank if rank is None else rank
    records = run.logical_records(observed_rank)
    kinds = ["p2p"] if p2p_only else None
    senders = sender_stream(records, kinds=kinds)
    sizes = size_stream(records, kinds=kinds)
    return Figure1Result(
        label=run.label,
        rank=observed_rank,
        senders=senders,
        sizes=sizes,
        sender_period=_detect_period(senders),
        size_period=_detect_period(sizes),
        distinct_senders=tuple(sorted(set(int(v) for v in senders))),
        distinct_sizes=tuple(sorted(set(int(v) for v in sizes))),
    )


@dataclass(frozen=True)
class Figure2Result:
    """Regenerated Figure 2: logical vs physical sender stream."""

    label: str
    rank: int
    logical_senders: np.ndarray
    physical_senders: np.ndarray
    mismatch_positions: np.ndarray

    @property
    def mismatch_fraction(self) -> float:
        """Fraction of positions where the two streams disagree."""
        n = min(len(self.logical_senders), len(self.physical_senders))
        return float(len(self.mismatch_positions) / n) if n else 0.0

    def render(self, samples: int = 60) -> str:
        """Plain-text rendering of both streams with mismatches marked."""
        lines = [
            wrap_title(
                f"Figure 2 — logical vs physical sender stream, process {self.rank} of {self.label}"
            )
        ]
        logical = self.logical_senders[:samples]
        physical = self.physical_senders[:samples]
        marks = [
            "^" if i in set(self.mismatch_positions.tolist()) else " "
            for i in range(len(physical))
        ]
        lines.append("logical : " + " ".join(str(int(v)) for v in logical))
        lines.append("physical: " + " ".join(str(int(v)) for v in physical))
        lines.append("          " + " ".join(marks))
        lines.append(
            f"reordered positions: {len(self.mismatch_positions)} / "
            f"{min(len(self.logical_senders), len(self.physical_senders))} "
            f"({100.0 * self.mismatch_fraction:.1f}%)"
        )
        return "\n".join(lines)


def figure2(
    context: ExperimentContext | None = None,
    workload: str = "bt",
    nprocs: int = 4,
    rank: int | None = None,
    p2p_only: bool = True,
) -> Figure2Result:
    """Regenerate Figure 2 (default: bt.4, process 3, both trace levels)."""
    context = context or ExperimentContext()
    run = context.run_named(workload, nprocs)
    observed_rank = run.representative_rank if rank is None else rank
    kinds = ["p2p"] if p2p_only else None
    logical = sender_stream(run.logical_records(observed_rank), kinds=kinds)
    physical = sender_stream(run.physical_records(observed_rank), kinds=kinds)
    n = min(len(logical), len(physical))
    mismatches = np.nonzero(logical[:n] != physical[:n])[0]
    return Figure2Result(
        label=run.label,
        rank=observed_rank,
        logical_senders=logical,
        physical_senders=physical,
        mismatch_positions=mismatches,
    )
