"""Experiment context: memoised simulation runs for the paper's configurations.

The 19 cells of the paper's evaluation (one workload at one process count)
are expressed as a canonical :class:`~repro.scenario.sweep.Sweep` of
:class:`~repro.scenario.spec.ScenarioSpec` cells — the same declarative form
any user sweep takes — and run through the scenario engine.  The context adds
what the analysis layer needs on top: per-cell memoisation (Table 1 and every
figure read the same runs) and the :class:`ExperimentRun` accessors.

Every cell is an independent simulation, so :meth:`ExperimentContext.run_all`
with ``jobs > 1`` shards the uncached cells over a process pool via
:meth:`Sweep.run_all`.  Each worker runs the exact same (workload, seed,
network) recipe a sequential run would, so the merged results — traces,
statistics, makespans — are bit-identical to a sequential :meth:`run_all`;
only the wall-clock time changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scenario.scenario import Scenario, ScenarioResult
from repro.scenario.spec import NetworkSpec, ScenarioSpec, WorkloadSpec
from repro.scenario.sweep import Sweep
from repro.sim.engine import SimulationResult
from repro.sim.network import NetworkConfig
from repro.workloads.base import Workload
from repro.workloads.registry import PaperConfiguration, paper_configurations

__all__ = [
    "ExperimentRun",
    "ExperimentContext",
    "configuration_spec",
    "paper_sweep",
]


def configuration_spec(
    configuration: PaperConfiguration,
    seed: int = 2003,
    network: NetworkConfig | None = None,
) -> ScenarioSpec:
    """The :class:`ScenarioSpec` of one paper configuration cell.

    This is *the* recipe of the paper's evaluation: the registry workload at
    the cell's process count and scale, default machine, and the standard
    jittered network deriving its seed from the experiment seed (unless a
    network configuration is passed, e.g. by the jitter ablations).
    """
    return ScenarioSpec(
        workload=WorkloadSpec(
            name=configuration.workload,
            nprocs=configuration.nprocs,
            scale=configuration.scale,
        ),
        seed=seed,
        network=NetworkSpec() if network is None else NetworkSpec.from_config(network),
        name=configuration.label,
    )


def paper_sweep(
    seed: int = 2003,
    scale: float | None = None,
    network: NetworkConfig | None = None,
) -> Sweep:
    """The paper's full 19-cell evaluation as a canonical :class:`Sweep`.

    ``Sweep.run_all()`` over this is bit-identical to
    :meth:`ExperimentContext.run_all` (which delegates to the same cells).
    """
    return Sweep(
        cells=[
            configuration_spec(configuration, seed=seed, network=network)
            for configuration in paper_configurations(scale=scale)
        ],
        name="paper-table1",
    )


@dataclass(frozen=True)
class ExperimentRun:
    """One simulated configuration: the workload instance and its result."""

    configuration: PaperConfiguration
    workload: Workload
    result: SimulationResult

    @property
    def label(self) -> str:
        """Figure label, e.g. ``bt.9``."""
        return self.configuration.label

    @property
    def representative_rank(self) -> int:
        """The receiving rank whose streams are analysed."""
        return self.workload.representative_rank()

    def logical_records(self, rank: int | None = None):
        """Logical trace records of the representative (or given) rank."""
        return self.result.trace_for(self.representative_rank if rank is None else rank).logical

    def physical_records(self, rank: int | None = None):
        """Physical trace records of the representative (or given) rank."""
        return self.result.trace_for(self.representative_rank if rank is None else rank).physical


def _run_configuration_cell(
    configuration: PaperConfiguration,
    seed: int,
    network: NetworkConfig | None,
) -> tuple[Workload, SimulationResult]:
    """Simulate one configuration cell through the scenario engine.

    Sequential and sharded runs share this exact recipe (it is the same
    :func:`configuration_spec` the sweep cells are made of), which is what
    makes sharded results bit-identical to sequential ones.  Returns the
    workload instance that actually ran together with its result.
    """
    scenario_result = Scenario(
        configuration_spec(configuration, seed=seed, network=network)
    ).run()
    return scenario_result.workload, scenario_result.result


@dataclass
class ExperimentContext:
    """Runs and caches the simulations behind Table 1 and Figures 1-4.

    Parameters
    ----------
    seed:
        Base seed for all simulations (per-rank and network streams are
        derived from it).
    scale:
        Optional global override of the per-application run scale.  ``None``
        uses the registry defaults (class-A-like volumes, LU reduced); small
        values such as ``0.05`` give quick smoke runs for tests.
    network:
        Optional network configuration override (the jitter ablation passes
        modified configurations).
    """

    seed: int = 2003
    scale: float | None = None
    network: NetworkConfig | None = None
    _cache: dict[tuple[str, int], ExperimentRun] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    def configurations(self) -> list[PaperConfiguration]:
        """The 19 paper configurations at this context's scale."""
        return paper_configurations(scale=self.scale)

    def spec_for(self, configuration: PaperConfiguration) -> ScenarioSpec:
        """The scenario spec this context would run for ``configuration``."""
        return configuration_spec(configuration, seed=self.seed, network=self.network)

    def sweep(self) -> Sweep:
        """This context's 19 cells as a canonical :class:`Sweep`."""
        return paper_sweep(seed=self.seed, scale=self.scale, network=self.network)

    def run(self, configuration: PaperConfiguration) -> ExperimentRun:
        """Run (or fetch from cache) one configuration."""
        key = (configuration.workload, configuration.nprocs)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        workload, result = _run_configuration_cell(configuration, self.seed, self.network)
        return self._admit(configuration, workload, result)

    def _admit(
        self,
        configuration: PaperConfiguration,
        workload: Workload,
        result: SimulationResult,
    ) -> ExperimentRun:
        """Wrap a finished simulation into a cached :class:`ExperimentRun`."""
        run = ExperimentRun(configuration=configuration, workload=workload, result=result)
        self._cache[(configuration.workload, configuration.nprocs)] = run
        return run

    def run_named(self, workload: str, nprocs: int) -> ExperimentRun:
        """Run (or fetch) a configuration identified by name and size."""
        for configuration in self.configurations():
            if configuration.workload == workload and configuration.nprocs == nprocs:
                return self.run(configuration)
        # Not one of the 19 paper cells: build an ad-hoc configuration.
        scale = self.scale if self.scale is not None else 1.0
        return self.run(PaperConfiguration(workload=workload, nprocs=nprocs, scale=scale))

    def run_all(self, jobs: int | None = None) -> list[ExperimentRun]:
        """Run every paper configuration (cached) and return them in order.

        Parameters
        ----------
        jobs:
            ``None`` or ``1`` runs the cells sequentially in this process.
            ``jobs > 1`` shards the *uncached* cells over a process pool of
            that many workers (via :meth:`Sweep.run_all`); results are merged
            back into the cache in configuration order and are bit-identical
            to a sequential run (each cell derives all its randomness from
            the context seed).
        """
        configurations = self.configurations()
        if jobs is not None and jobs > 1:
            pending = [
                configuration
                for configuration in configurations
                if (configuration.workload, configuration.nprocs) not in self._cache
            ]
            if pending:
                sweep = Sweep(
                    cells=[self.spec_for(configuration) for configuration in pending],
                    name="paper-table1-pending",
                )
                for configuration, cell in zip(pending, sweep.run_all(jobs=jobs)):
                    if not isinstance(cell, ScenarioResult):
                        # Paper cells are deterministic and must all succeed;
                        # surface an isolated failure instead of caching it.
                        raise RuntimeError(
                            f"paper cell {configuration.label} failed: "
                            f"{cell.error_type}: {cell.error_message}"
                        )
                    self._admit(configuration, cell.workload, cell.result)
        return [self.run(configuration) for configuration in configurations]

    def clear(self) -> None:
        """Drop all cached runs."""
        self._cache.clear()
