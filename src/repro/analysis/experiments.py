"""Experiment context: memoised simulation runs for the paper's configurations."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.engine import SimulationResult
from repro.sim.network import NetworkConfig
from repro.workloads.base import Workload
from repro.workloads.registry import PaperConfiguration, create_workload, paper_configurations
from repro.workloads.runner import run_workload

__all__ = ["ExperimentRun", "ExperimentContext"]


@dataclass(frozen=True)
class ExperimentRun:
    """One simulated configuration: the workload instance and its result."""

    configuration: PaperConfiguration
    workload: Workload
    result: SimulationResult

    @property
    def label(self) -> str:
        """Figure label, e.g. ``bt.9``."""
        return self.configuration.label

    @property
    def representative_rank(self) -> int:
        """The receiving rank whose streams are analysed."""
        return self.workload.representative_rank()

    def logical_records(self, rank: int | None = None):
        """Logical trace records of the representative (or given) rank."""
        return self.result.trace_for(self.representative_rank if rank is None else rank).logical

    def physical_records(self, rank: int | None = None):
        """Physical trace records of the representative (or given) rank."""
        return self.result.trace_for(self.representative_rank if rank is None else rank).physical


@dataclass
class ExperimentContext:
    """Runs and caches the simulations behind Table 1 and Figures 1-4.

    Parameters
    ----------
    seed:
        Base seed for all simulations (per-rank and network streams are
        derived from it).
    scale:
        Optional global override of the per-application run scale.  ``None``
        uses the registry defaults (class-A-like volumes, LU reduced); small
        values such as ``0.05`` give quick smoke runs for tests.
    network:
        Optional network configuration override (the jitter ablation passes
        modified configurations).
    """

    seed: int = 2003
    scale: float | None = None
    network: NetworkConfig | None = None
    _cache: dict[tuple[str, int], ExperimentRun] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    def configurations(self) -> list[PaperConfiguration]:
        """The 19 paper configurations at this context's scale."""
        return paper_configurations(scale=self.scale)

    def run(self, configuration: PaperConfiguration) -> ExperimentRun:
        """Run (or fetch from cache) one configuration."""
        key = (configuration.workload, configuration.nprocs)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        workload = create_workload(
            configuration.workload, configuration.nprocs, scale=configuration.scale
        )
        network = self.network if self.network is not None else NetworkConfig(seed=self.seed)
        result = run_workload(workload, seed=self.seed, network=network)
        run = ExperimentRun(configuration=configuration, workload=workload, result=result)
        self._cache[key] = run
        return run

    def run_named(self, workload: str, nprocs: int) -> ExperimentRun:
        """Run (or fetch) a configuration identified by name and size."""
        for configuration in self.configurations():
            if configuration.workload == workload and configuration.nprocs == nprocs:
                return self.run(configuration)
        # Not one of the 19 paper cells: build an ad-hoc configuration.
        scale = self.scale if self.scale is not None else 1.0
        return self.run(PaperConfiguration(workload=workload, nprocs=nprocs, scale=scale))

    def run_all(self) -> list[ExperimentRun]:
        """Run every paper configuration (cached) and return them in order."""
        return [self.run(configuration) for configuration in self.configurations()]

    def clear(self) -> None:
        """Drop all cached runs."""
        self._cache.clear()
