"""Experiment context: memoised simulation runs for the paper's configurations.

Every cell of the paper's evaluation (one workload at one process count) is
an independent simulation, so the context can *shard* them over worker
processes: :meth:`ExperimentContext.run_all` with ``jobs > 1`` fans the
uncached cells out over a :class:`concurrent.futures.ProcessPoolExecutor`
and merges the returned results back into the cache in configuration order.
Each worker runs the exact same (workload, seed, network) recipe a
sequential run would, so the merged results — traces, statistics, makespans —
are bit-identical to a sequential :meth:`run_all`; only the wall-clock time
changes.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.sim.engine import SimulationResult
from repro.sim.network import NetworkConfig
from repro.workloads.base import Workload
from repro.workloads.registry import PaperConfiguration, create_workload, paper_configurations
from repro.workloads.runner import run_workload

__all__ = ["ExperimentRun", "ExperimentContext"]


@dataclass(frozen=True)
class ExperimentRun:
    """One simulated configuration: the workload instance and its result."""

    configuration: PaperConfiguration
    workload: Workload
    result: SimulationResult

    @property
    def label(self) -> str:
        """Figure label, e.g. ``bt.9``."""
        return self.configuration.label

    @property
    def representative_rank(self) -> int:
        """The receiving rank whose streams are analysed."""
        return self.workload.representative_rank()

    def logical_records(self, rank: int | None = None):
        """Logical trace records of the representative (or given) rank."""
        return self.result.trace_for(self.representative_rank if rank is None else rank).logical

    def physical_records(self, rank: int | None = None):
        """Physical trace records of the representative (or given) rank."""
        return self.result.trace_for(self.representative_rank if rank is None else rank).physical


def _run_configuration_cell(
    configuration: PaperConfiguration,
    seed: int,
    network: NetworkConfig | None,
) -> tuple[Workload, SimulationResult]:
    """Simulate one configuration cell (process-pool worker entry point).

    Module-level so it is picklable; sequential and sharded runs share this
    exact recipe, which is what makes sharded results bit-identical to
    sequential ones.  Returns the workload instance that actually ran
    together with its result.
    """
    workload = create_workload(
        configuration.workload, configuration.nprocs, scale=configuration.scale
    )
    if network is None:
        network = NetworkConfig(seed=seed)
    return workload, run_workload(workload, seed=seed, network=network)


@dataclass
class ExperimentContext:
    """Runs and caches the simulations behind Table 1 and Figures 1-4.

    Parameters
    ----------
    seed:
        Base seed for all simulations (per-rank and network streams are
        derived from it).
    scale:
        Optional global override of the per-application run scale.  ``None``
        uses the registry defaults (class-A-like volumes, LU reduced); small
        values such as ``0.05`` give quick smoke runs for tests.
    network:
        Optional network configuration override (the jitter ablation passes
        modified configurations).
    """

    seed: int = 2003
    scale: float | None = None
    network: NetworkConfig | None = None
    _cache: dict[tuple[str, int], ExperimentRun] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    def configurations(self) -> list[PaperConfiguration]:
        """The 19 paper configurations at this context's scale."""
        return paper_configurations(scale=self.scale)

    def run(self, configuration: PaperConfiguration) -> ExperimentRun:
        """Run (or fetch from cache) one configuration."""
        key = (configuration.workload, configuration.nprocs)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        workload, result = _run_configuration_cell(configuration, self.seed, self.network)
        return self._admit(configuration, workload, result)

    def _admit(
        self,
        configuration: PaperConfiguration,
        workload: Workload,
        result: SimulationResult,
    ) -> ExperimentRun:
        """Wrap a finished simulation into a cached :class:`ExperimentRun`."""
        run = ExperimentRun(configuration=configuration, workload=workload, result=result)
        self._cache[(configuration.workload, configuration.nprocs)] = run
        return run

    def run_named(self, workload: str, nprocs: int) -> ExperimentRun:
        """Run (or fetch) a configuration identified by name and size."""
        for configuration in self.configurations():
            if configuration.workload == workload and configuration.nprocs == nprocs:
                return self.run(configuration)
        # Not one of the 19 paper cells: build an ad-hoc configuration.
        scale = self.scale if self.scale is not None else 1.0
        return self.run(PaperConfiguration(workload=workload, nprocs=nprocs, scale=scale))

    def run_all(self, jobs: int | None = None) -> list[ExperimentRun]:
        """Run every paper configuration (cached) and return them in order.

        Parameters
        ----------
        jobs:
            ``None`` or ``1`` runs the cells sequentially in this process.
            ``jobs > 1`` shards the *uncached* cells over a process pool of
            that many workers; results are merged back into the cache in
            configuration order and are bit-identical to a sequential run
            (each cell derives all its randomness from the context seed).
        """
        configurations = self.configurations()
        if jobs is not None and jobs > 1:
            pending = [
                configuration
                for configuration in configurations
                if (configuration.workload, configuration.nprocs) not in self._cache
            ]
            if pending:
                # Longest-expected-first submission packs the pool better (the
                # LU cells dominate the critical path: ~10x the per-scale
                # message volume of the other applications); the merge below
                # stays in configuration order either way.
                by_cost = sorted(
                    pending,
                    key=lambda c: c.nprocs * c.scale * (10.0 if c.workload == "lu" else 1.0),
                    reverse=True,
                )
                with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                    futures = {
                        configuration: pool.submit(
                            _run_configuration_cell, configuration, self.seed, self.network
                        )
                        for configuration in by_cost
                    }
                    # Merge deterministically, in configuration order,
                    # regardless of which worker finished first.
                    for configuration in pending:
                        workload, result = futures[configuration].result()
                        self._admit(configuration, workload, result)
        return [self.run(configuration) for configuration in configurations]

    def clear(self) -> None:
        """Drop all cached runs."""
        self._cache.clear()
