"""Sensitivity studies around the paper's design choices.

These ablations probe the knobs the paper fixes implicitly:

* :func:`window_size_sweep` — how the DPD comparison window trades learning
  speed against noise robustness;
* :func:`jitter_sensitivity` — how physical-level accuracy degrades as
  network timing noise grows (the paper's explanation for Figure 4);
* :func:`baseline_comparison` — the paper's predictor against the single-step
  heuristics of the related work;
* :func:`unordered_accuracy_study` — ordered vs multiset accuracy at the
  physical level (the Section 5.3 argument that exact order is not needed for
  buffer pre-allocation).
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.experiments import ExperimentContext
from repro.core.baselines import (
    CyclePredictor,
    LastValuePredictor,
    MarkovPredictor,
    MostFrequentPredictor,
)
from repro.core.evaluation import evaluate_stream, evaluate_unordered
from repro.core.predictor import PeriodicityPredictor
from repro.sim.network import NetworkConfig
from repro.trace.streams import sender_stream
from repro.workloads.registry import create_workload
from repro.workloads.runner import run_workload

__all__ = [
    "window_size_sweep",
    "jitter_sensitivity",
    "baseline_comparison",
    "unordered_accuracy_study",
]

_DEFAULT_MAX_PERIOD = 256


def window_size_sweep(
    windows: Sequence[int] = (8, 16, 24, 32, 64, 128),
    workload: str = "bt",
    nprocs: int = 9,
    horizon: int = 5,
    context: ExperimentContext | None = None,
) -> list[dict]:
    """Accuracy of the periodicity predictor as a function of its window size."""
    context = context or ExperimentContext()
    run = context.run_named(workload, nprocs)
    logical = sender_stream(run.logical_records())
    physical = sender_stream(run.physical_records())
    rows = []
    for window in windows:
        factory = lambda w=window: PeriodicityPredictor(window_size=w, max_period=_DEFAULT_MAX_PERIOD)
        rows.append(
            {
                "window_size": int(window),
                "logical_accuracy": 100.0 * evaluate_stream(logical, factory, horizon).accuracy(1),
                "physical_accuracy": 100.0 * evaluate_stream(physical, factory, horizon).accuracy(1),
            }
        )
    return rows


def jitter_sensitivity(
    jitters: Sequence[float] = (0.0, 0.05, 0.1, 0.25, 0.5, 1.0),
    workload: str = "bt",
    nprocs: int = 9,
    scale: float = 0.25,
    seed: int = 2003,
    horizon: int = 5,
) -> list[dict]:
    """Physical-level accuracy and stream reordering vs network jitter.

    Compute-time noise and link contention are disabled for this sweep so
    that the network jitter is the *only* random source of physical
    reordering being measured: at ``jitter = 0`` only the small deterministic
    skew between eager and rendezvous transfers remains.
    """
    rows = []
    for jitter in jitters:
        instance = create_workload(workload, nprocs, scale=scale, compute_noise=0.0)
        result = run_workload(
            instance,
            seed=seed,
            network=NetworkConfig(jitter_sigma=float(jitter), contention=False, seed=seed),
        )
        rank = instance.representative_rank()
        logical = sender_stream(result.trace_for(rank).logical)
        physical = sender_stream(result.trace_for(rank).physical)
        n = min(len(logical), len(physical))
        reordered = float((logical[:n] != physical[:n]).mean()) if n else 0.0
        factory = lambda: PeriodicityPredictor(window_size=24, max_period=_DEFAULT_MAX_PERIOD)
        rows.append(
            {
                "jitter_sigma": float(jitter),
                "reordered_fraction": reordered,
                "physical_accuracy": 100.0 * evaluate_stream(physical, factory, horizon).accuracy(1),
                "logical_accuracy": 100.0 * evaluate_stream(logical, factory, horizon).accuracy(1),
            }
        )
    return rows


def baseline_comparison(
    workload: str = "bt",
    nprocs: int = 9,
    horizon: int = 5,
    level: str = "logical",
    context: ExperimentContext | None = None,
) -> list[dict]:
    """The paper's predictor vs the related-work single-step heuristics."""
    context = context or ExperimentContext()
    run = context.run_named(workload, nprocs)
    records = run.logical_records() if level == "logical" else run.physical_records()
    stream = sender_stream(records)
    predictors = {
        "periodicity (paper)": lambda: PeriodicityPredictor(
            window_size=24, max_period=_DEFAULT_MAX_PERIOD
        ),
        "last-value": LastValuePredictor,
        "most-frequent": lambda: MostFrequentPredictor(window_size=24),
        "cycle": CyclePredictor,
        "markov(2)": lambda: MarkovPredictor(order=2),
    }
    rows = []
    for name, factory in predictors.items():
        result = evaluate_stream(stream, factory, horizon)
        rows.append(
            {
                "predictor": name,
                "level": level,
                "accuracy_plus1": 100.0 * result.accuracy(1),
                "accuracy_plus5": 100.0 * result.accuracy(horizon),
            }
        )
    return rows


def unordered_accuracy_study(
    configurations: Sequence[tuple[str, int]] = (("bt", 9), ("is", 8), ("lu", 8)),
    horizon: int = 5,
    context: ExperimentContext | None = None,
) -> list[dict]:
    """Ordered vs multiset (order-insensitive) accuracy at the physical level."""
    context = context or ExperimentContext()
    factory = lambda: PeriodicityPredictor(window_size=24, max_period=_DEFAULT_MAX_PERIOD)
    rows = []
    for workload, nprocs in configurations:
        run = context.run_named(workload, nprocs)
        physical = sender_stream(run.physical_records())
        ordered = evaluate_stream(physical, factory, horizon)
        unordered = evaluate_unordered(physical, factory, horizon)
        rows.append(
            {
                "config": run.label,
                "ordered_accuracy": 100.0 * ordered.accuracy(1),
                "ordered_accuracy_plus5": 100.0 * ordered.accuracy(horizon),
                "unordered_overlap": 100.0 * unordered.mean_overlap,
            }
        )
    return rows
