"""Table 1 reproduction: characteristics of the benchmark message streams.

The paper's Table 1 reports, for every application and process count, the
number of point-to-point and collective messages received by one process and
the number of (frequently appearing) distinct message sizes and senders.
:func:`build_table1` regenerates those statistics from the simulated traces;
:func:`render_table1` prints them side by side with the paper's values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.experiments import ExperimentContext, ExperimentRun
from repro.trace.streams import summarize_stream
from repro.util.text import ascii_table

__all__ = ["PAPER_TABLE1", "Table1Row", "build_table1", "render_table1"]


#: The paper's Table 1, keyed by figure label: (p2p msgs, collective msgs,
#: distinct sizes, distinct senders) received by one process.
PAPER_TABLE1: dict[str, tuple[int, int, int, int]] = {
    "bt.4": (2416, 9, 3, 3),
    "bt.9": (3651, 9, 3, 7),
    "bt.16": (4826, 9, 3, 7),
    "bt.25": (6030, 9, 3, 7),
    "cg.4": (1679, 0, 2, 2),
    "cg.8": (2942, 0, 2, 2),
    "cg.16": (2942, 0, 2, 2),
    "cg.32": (4204, 0, 2, 2),
    "lu.4": (31472, 18, 2, 2),
    "lu.8": (31474, 18, 4, 2),
    "lu.16": (31474, 18, 2, 2),
    "lu.32": (47211, 18, 4, 2),
    "is.4": (11, 89, 3, 4),
    "is.8": (11, 177, 3, 8),
    "is.16": (11, 353, 3, 16),
    "is.32": (11, 705, 3, 32),
    "sw.6": (1438, 36, 2, 3),
    "sw.16": (949, 36, 2, 2),
    "sw.32": (949, 36, 2, 2),
}


@dataclass(frozen=True)
class Table1Row:
    """One row of the regenerated Table 1 (one application x process count)."""

    label: str
    workload: str
    nprocs: int
    iterations: int
    observed_rank: int
    p2p_messages: int
    collective_messages: int
    num_sizes: int
    num_senders: int
    paper_p2p: int | None
    paper_collective: int | None
    paper_sizes: int | None
    paper_senders: int | None

    @property
    def total_messages(self) -> int:
        """Total messages received by the observed process."""
        return self.p2p_messages + self.collective_messages


def _row_from_run(run: ExperimentRun, coverage: float) -> Table1Row:
    records = run.logical_records()
    summary = summarize_stream(records, coverage=coverage)
    paper = PAPER_TABLE1.get(run.label)
    return Table1Row(
        label=run.label,
        workload=run.configuration.workload,
        nprocs=run.configuration.nprocs,
        iterations=run.workload.iterations,
        observed_rank=run.representative_rank,
        p2p_messages=summary.p2p_messages,
        collective_messages=summary.collective_messages,
        num_sizes=summary.num_frequent_sizes,
        num_senders=summary.num_frequent_senders,
        paper_p2p=paper[0] if paper else None,
        paper_collective=paper[1] if paper else None,
        paper_sizes=paper[2] if paper else None,
        paper_senders=paper[3] if paper else None,
    )


def build_table1(
    context: ExperimentContext | None = None, coverage: float = 0.98
) -> list[Table1Row]:
    """Regenerate Table 1 from simulated traces.

    Parameters
    ----------
    context:
        Experiment context (a fresh default-seeded one is created if absent).
    coverage:
        Fraction of the stream the "frequently appearing" sizes/senders must
        cover (Table 1's footnote says it counts frequent values only).
    """
    context = context or ExperimentContext()
    return [_row_from_run(run, coverage) for run in context.run_all()]


def render_table1(rows: list[Table1Row]) -> str:
    """Render the regenerated Table 1 next to the paper's numbers."""
    headers = [
        "config",
        "iters",
        "rank",
        "p2p msgs",
        "paper p2p",
        "coll msgs",
        "paper coll",
        "# sizes",
        "paper",
        "# senders",
        "paper",
    ]
    body = [
        [
            row.label,
            row.iterations,
            row.observed_rank,
            row.p2p_messages,
            row.paper_p2p if row.paper_p2p is not None else "-",
            row.collective_messages,
            row.paper_collective if row.paper_collective is not None else "-",
            row.num_sizes,
            row.paper_sizes if row.paper_sizes is not None else "-",
            row.num_senders,
            row.paper_senders if row.paper_senders is not None else "-",
        ]
        for row in rows
    ]
    return ascii_table(headers, body, title="Table 1 — MPI applications used for this study (measured vs paper)")
