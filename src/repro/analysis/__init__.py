"""Reproduction harness for the paper's table and figures.

Every table/figure of the paper's evaluation has a function here that
regenerates it as data plus a plain-text rendering:

* :func:`repro.analysis.table1.build_table1` — Table 1 (benchmark
  characteristics).
* :func:`repro.analysis.figures_streams.figure1` — Figure 1 (periodic sender
  and size streams of bt.9, process 3).
* :func:`repro.analysis.figures_streams.figure2` — Figure 2 (logical vs
  physical sender stream of bt.4, process 3).
* :func:`repro.analysis.figures_accuracy.figure3` — Figure 3 (logical-level
  prediction accuracy, +1 … +5).
* :func:`repro.analysis.figures_accuracy.figure4` — Figure 4 (physical-level
  prediction accuracy).
* :mod:`repro.analysis.extensions` — the Section 2 what-if experiments
  (memory reduction, credit flow control, rendezvous bypass).
* :mod:`repro.analysis.ablations` — sensitivity studies (DPD window, network
  jitter, predictor vs baselines, ordered vs unordered accuracy).

Simulations are memoised per configuration in an :class:`ExperimentContext`
so that regenerating the whole evaluation runs each application/process-count
combination exactly once.
"""

from repro.analysis.ablations import (
    baseline_comparison,
    jitter_sensitivity,
    unordered_accuracy_study,
    window_size_sweep,
)
from repro.analysis.experiments import ExperimentContext
from repro.analysis.extensions import (
    credit_flow_experiment,
    memory_reduction_experiment,
    rendezvous_bypass_experiment,
)
from repro.analysis.figures_accuracy import AccuracyFigure, figure3, figure4
from repro.analysis.figures_streams import Figure1Result, Figure2Result, figure1, figure2
from repro.analysis.report import ReproductionReport, build_report
from repro.analysis.scaling import (
    project_buffer_memory,
    project_unexpected_exposure,
    working_set_from_run,
)
from repro.analysis.table1 import Table1Row, build_table1, render_table1

__all__ = [
    "ReproductionReport",
    "build_report",
    "project_buffer_memory",
    "project_unexpected_exposure",
    "working_set_from_run",
    "ExperimentContext",
    "Table1Row",
    "build_table1",
    "render_table1",
    "Figure1Result",
    "Figure2Result",
    "figure1",
    "figure2",
    "AccuracyFigure",
    "figure3",
    "figure4",
    "memory_reduction_experiment",
    "credit_flow_experiment",
    "rendezvous_bypass_experiment",
    "window_size_sweep",
    "jitter_sensitivity",
    "baseline_comparison",
    "unordered_accuracy_study",
]
