"""Programmatic builder for the full reproduction report.

This module produces, as plain text, the complete measured-vs-paper report:
Table 1, Figures 1-4, the Section 2 extension experiments and the ablations.
It is the engine behind ``examples/reproduce_paper.py``, the ``repro report``
CLI command, and the EXPERIMENTS.md document.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.ablations import (
    baseline_comparison,
    jitter_sensitivity,
    unordered_accuracy_study,
    window_size_sweep,
)
from repro.analysis.experiments import ExperimentContext
from repro.analysis.extensions import (
    credit_flow_experiment,
    memory_reduction_experiment,
    rendezvous_bypass_experiment,
)
from repro.analysis.figures_accuracy import AccuracyFigure, figure3, figure4
from repro.analysis.figures_streams import figure1, figure2
from repro.analysis.table1 import build_table1, render_table1
from repro.util.text import ascii_table

__all__ = ["ReportSection", "ReproductionReport", "build_report"]


@dataclass
class ReportSection:
    """One titled block of the reproduction report."""

    title: str
    body: str

    def render(self) -> str:
        """The section as Markdown-ish text (title + preformatted body)."""
        return f"## {self.title}\n\n{self.body}"


@dataclass
class ReproductionReport:
    """The assembled report: ordered sections plus generation metadata."""

    sections: list[ReportSection] = field(default_factory=list)
    seed: int = 0
    scale: float | None = None
    elapsed_seconds: float = 0.0

    def add(self, title: str, body: str) -> None:
        """Append a section."""
        self.sections.append(ReportSection(title=title, body=body))

    def section(self, title: str) -> ReportSection:
        """Look up a section by title."""
        for section in self.sections:
            if section.title == title:
                return section
        raise KeyError(f"no section titled {title!r}")

    def render(self) -> str:
        """Render the whole report."""
        footer = (
            f"Generated in {self.elapsed_seconds:.0f}s "
            f"(seed={self.seed}, scale="
            f"{'registry defaults' if self.scale is None else self.scale})."
        )
        return "\n\n".join([section.render() for section in self.sections] + [footer])


def accuracy_figure_table(figure: AccuracyFigure, note: str = "") -> str:
    """Render an accuracy figure (Figure 3 or 4) as a compact table."""
    headers = ["config", "streamlen", "sender +1", "sender +5", "size +1", "size +5"]
    rows = [
        [
            config.label,
            config.stream_length,
            config.sender_accuracy[0],
            config.sender_accuracy[4],
            config.size_accuracy[0],
            config.size_accuracy[4],
        ]
        for config in figure.configs
    ]
    title = f"{figure.name} ({figure.level} level)"
    if note:
        title = f"{title} — {note}"
    return ascii_table(headers, rows, title=title)


def dict_rows_table(title: str, rows: list[dict]) -> str:
    """Render a list of homogeneous dicts as a table (floats get 3 digits)."""
    if not rows:
        return f"{title}\n(no data)"
    headers = list(rows[0].keys())

    def fmt(value):
        if isinstance(value, float):
            return f"{value:.4g}"
        return value

    body = [[fmt(row[h]) for h in headers] for row in rows]
    return ascii_table(headers, body, title=title)


def build_report(
    seed: int = 2003,
    scale: float | None = None,
    context: ExperimentContext | None = None,
    include_extensions: bool = True,
    include_ablations: bool = True,
    jobs: int | None = None,
) -> ReproductionReport:
    """Run every experiment and assemble the reproduction report.

    Parameters
    ----------
    seed:
        Experiment seed (simulations, network jitter, compute noise).
    scale:
        Run-scale override; ``None`` uses the registry defaults (class-A-like
        volumes, LU reduced — see ``repro.workloads.registry.DEFAULT_SCALES``).
    context:
        Pre-built experiment context (its seed/scale win over the arguments).
    include_extensions / include_ablations:
        Allow skipping the non-paper sections for a faster, figures-only run.
    jobs:
        With ``jobs > 1``, the 19 configuration cells are simulated up front
        over that many worker processes (:meth:`ExperimentContext.run_all`);
        every section then reads the pre-warmed cache.  Results are
        bit-identical to a sequential run.
    """
    started = time.time()
    context = context or ExperimentContext(seed=seed, scale=scale)
    if jobs is not None and jobs > 1:
        context.run_all(jobs=jobs)
    report = ReproductionReport(seed=context.seed, scale=context.scale)

    report.add("Table 1", render_table1(build_table1(context)))
    report.add("Figure 1", figure1(context).render())
    report.add("Figure 2", figure2(context).render())
    report.add(
        "Figure 3",
        accuracy_figure_table(figure3(context), "paper: >90% everywhere, is.4 ~80%"),
    )
    report.add(
        "Figure 4",
        accuracy_figure_table(figure4(context), "paper: lower than Figure 3, IS hardest"),
    )

    if include_extensions:
        report.add(
            "Extension: memory reduction (Section 2.1)",
            dict_rows_table("Predicted-sender buffers vs all-peers pre-allocation",
                            [memory_reduction_experiment(seed=context.seed)]),
        )
        report.add(
            "Extension: credit flow control (Section 2.2)",
            dict_rows_table("Prediction-granted credits vs unsolicited eager fan-in",
                            [credit_flow_experiment(seed=context.seed)]),
        )
        report.add(
            "Extension: rendezvous bypass (Section 2.3)",
            dict_rows_table(
                "Predicted long messages on the eager fast path",
                [
                    rendezvous_bypass_experiment(
                        workload_name="ring-exchange", nprocs=8, scale=1.0, seed=context.seed
                    )
                ],
            ),
        )

    if include_ablations:
        report.add(
            "Ablation: DPD window size",
            dict_rows_table("bt.9 sender stream", window_size_sweep(context=context)),
        )
        report.add(
            "Ablation: network jitter",
            dict_rows_table("bt.9, jitter as the only noise source",
                            jitter_sensitivity(seed=context.seed)),
        )
        report.add(
            "Ablation: predictor vs single-step baselines",
            dict_rows_table("bt.9, logical level", baseline_comparison(context=context)),
        )
        report.add(
            "Ablation: ordered vs multiset accuracy",
            dict_rows_table("physical level", unordered_accuracy_study(context=context)),
        )

    report.elapsed_seconds = time.time() - started
    return report
