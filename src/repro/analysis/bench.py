"""Non-interactive microbenchmark runner (the repo's perf trajectory).

Runs the pytest-benchmark microbenchmarks of a hot path in a subprocess and
condenses the per-benchmark statistics into a small JSON artefact so
successive PRs can compare costs without re-reading raw pytest output.
Exposed both as ``python -m repro bench`` and as
``benchmarks/run_benchmarks.py``.

Five perf trajectories are tracked:

* ``BENCH_dpd.json`` — the predictor/DPD hot path (the default keyword);
* ``BENCH_sim.json`` — the simulation engine and transport
  (``python -m repro bench --keyword sim``);
* ``BENCH_trace.json`` — the columnar trace data plane and the sharded
  experiment runner (``python -m repro bench --keyword trace``);
* ``BENCH_feed.json`` — the op-array workload feed versus the generator
  protocol, end to end (``python -m repro bench --keyword feed``);
* ``BENCH_scale.json`` — the scalar-vs-vectorised engine scaling curves
  (bt/lu/sweep3d at 64-4096 ranks; ``python -m repro bench
  --keyword scale``);
* ``BENCH_serve.json`` — the online prediction service's ingest
  throughput and resident bytes per stream at 10k/100k/1M streams
  (``python -m repro bench --keyword bench_serve``).

When no explicit ``--output`` is given, the artefact name is derived from
the keyword (any keyword mentioning ``serve`` writes ``BENCH_serve.json``,
``scale`` writes ``BENCH_scale.json``, ``feed`` writes ``BENCH_feed.json``,
``trace`` writes ``BENCH_trace.json``, ``sim`` writes ``BENCH_sim.json``).

Benchmarks may attach domain metrics through pytest-benchmark's
``extra_info`` mechanism (the scaling suite records processed events and
events/second per run); the condenser carries them into the artefact
verbatim under an ``extra_info`` key.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import tempfile

__all__ = [
    "default_benchmarks_dir",
    "default_output_for",
    "carry_baseline",
    "run_microbenchmarks",
    "render_summary",
]

#: Benchmark module holding the hot-path microbenchmarks.
MICROBENCH_MODULE = "test_bench_microbenchmarks.py"

#: Default ``-k`` selector: only the predictor/DPD benchmarks, not the
#: (much slower) whole-paper table and figure regeneration benchmarks.
DEFAULT_KEYWORD = "dpd or predictor or evaluate_stream"

#: ``-k`` selector for the simulation-engine benchmarks (every benchmark in
#: the simulator suite has ``sim`` in its name).
SIM_KEYWORD = "sim"

#: ``-k`` selector for the trace data-plane benchmarks (columnar pipeline and
#: sharded experiment runner; every benchmark has ``trace`` in its name).
TRACE_KEYWORD = "trace"

#: ``-k`` selector for the op-array workload-feed benchmarks (compiled fast
#: lane vs generator protocol; every benchmark has ``feed`` in its name).
FEED_KEYWORD = "feed"

#: ``-k`` selector for the engine scaling benchmarks (scalar vs vectorised
#: cohort dispatch; every benchmark has ``scale`` in its name).
SCALE_KEYWORD = "scale"

#: ``-k`` selector for the online prediction service benchmarks (sharded
#: ingest + LRU stream tables).  Every serve benchmark's name starts with
#: ``test_bench_serve``; the selector is ``bench_serve`` rather than plain
#: ``serve`` because ``serve`` is a substring of ``observe`` and would drag
#: the predictor observe benchmarks in.
SERVE_KEYWORD = "bench_serve"


def default_output_for(keyword: str) -> str:
    """The perf-trajectory artefact a keyword's results belong in."""
    if "serve" in keyword:
        return "BENCH_serve.json"
    if "scale" in keyword:
        return "BENCH_scale.json"
    if "feed" in keyword:
        return "BENCH_feed.json"
    if "trace" in keyword:
        return "BENCH_trace.json"
    return "BENCH_sim.json" if "sim" in keyword else "BENCH_dpd.json"


def default_benchmarks_dir() -> pathlib.Path | None:
    """Locate the ``benchmarks/`` directory of this checkout, if any."""
    candidates = [
        pathlib.Path.cwd() / "benchmarks",
        # src/repro/analysis/bench.py -> repository root in a src layout
        pathlib.Path(__file__).resolve().parents[3] / "benchmarks",
    ]
    for candidate in candidates:
        if (candidate / MICROBENCH_MODULE).is_file():
            return candidate
    return None


def carry_baseline(summary: dict, previous: dict) -> dict:
    """Copy a recorded ``baseline`` section from a previous artefact.

    A baseline is a hand-recorded "before" measurement (e.g. the
    closure-per-event engine's bt9 numbers from before the typed-event
    refactor); regenerating the artefact must never lose the before/after
    comparison, so the section is carried forward verbatim.
    """
    if "baseline" in previous and "baseline" not in summary:
        summary["baseline"] = previous["baseline"]
    return summary


def run_microbenchmarks(
    bench_dir: str | pathlib.Path | None = None,
    output: str | pathlib.Path | None = None,
    keyword: str = DEFAULT_KEYWORD,
) -> dict:
    """Run the microbenchmarks and return (and optionally write) a summary.

    Parameters
    ----------
    bench_dir:
        The ``benchmarks/`` directory; auto-detected when None.
    output:
        Path of the JSON artefact to write (e.g. ``BENCH_dpd.json``); not
        written when None.
    keyword:
        pytest ``-k`` selector choosing which benchmarks run.
    """
    directory = pathlib.Path(bench_dir) if bench_dir else default_benchmarks_dir()
    if directory is None or not (directory / MICROBENCH_MODULE).is_file():
        raise FileNotFoundError(
            "could not locate the benchmarks/ directory; pass bench_dir explicitly"
        )
    with tempfile.TemporaryDirectory() as scratch:
        raw_path = pathlib.Path(scratch) / "benchmark.json"
        command = [
            sys.executable,
            "-m",
            "pytest",
            str(directory / MICROBENCH_MODULE),
            "-q",
            "-p",
            "no:cacheprovider",
            f"--benchmark-json={raw_path}",
        ]
        if keyword:
            command += ["-k", keyword]
        completed = subprocess.run(
            command,
            cwd=directory.parent,
            capture_output=True,
            text=True,
        )
        if completed.returncode != 0 or not raw_path.is_file():
            raise RuntimeError(
                "benchmark run failed\n"
                f"stdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
            )
        raw = json.loads(raw_path.read_text(encoding="utf-8"))

    benchmarks = {}
    for entry in sorted(raw.get("benchmarks", []), key=lambda e: e["name"]):
        stats = entry["stats"]
        condensed = {
            "mean_s": stats["mean"],
            "stddev_s": stats["stddev"],
            "median_s": stats["median"],
            "min_s": stats["min"],
            "rounds": stats["rounds"],
        }
        if entry.get("extra_info"):
            condensed["extra_info"] = entry["extra_info"]
        benchmarks[entry["name"]] = condensed
    summary = {
        "datetime": raw.get("datetime"),
        "machine": {
            key: raw.get("machine_info", {}).get(key)
            for key in ("node", "processor", "python_version")
        },
        "keyword": keyword,
        "benchmarks": benchmarks,
    }
    if output is not None:
        out_path = pathlib.Path(output)
        if out_path.is_file():
            try:
                previous = json.loads(out_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                previous = {}
            carry_baseline(summary, previous)
        out_path.write_text(json.dumps(summary, indent=2) + "\n", encoding="utf-8")
    return summary


def render_summary(summary: dict) -> str:
    """Human-readable table of a :func:`run_microbenchmarks` summary."""
    has_rates = any(
        "events_per_sec" in stats.get("extra_info", {})
        for stats in summary["benchmarks"].values()
    )
    header = f"{'benchmark':58s} {'mean':>12s} {'stddev':>12s} {'rounds':>7s}"
    if has_rates:
        header += f" {'events/s':>12s}"
    lines = [header]
    for name, stats in summary["benchmarks"].items():
        line = (
            f"{name:58s} {stats['mean_s'] * 1e6:10.2f}us {stats['stddev_s'] * 1e6:10.2f}us "
            f"{stats['rounds']:7d}"
        )
        if has_rates:
            rate = stats.get("extra_info", {}).get("events_per_sec")
            line += f" {rate:12,.0f}" if rate is not None else f" {'-':>12s}"
        lines.append(line)
    return "\n".join(lines)
