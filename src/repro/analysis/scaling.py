"""Scalability projections (the paper's introduction arithmetic, generalised).

The paper motivates prediction with a projection: with one 16 KB eager buffer
per peer, a 10 000-process job needs 160 MB of buffer memory *per process*.
This module turns that back-of-the-envelope argument into a small model fed
with measured data:

* :func:`project_buffer_memory` — per-process eager-buffer memory as a
  function of the job size, for the standard all-peers policy versus a
  predictive policy that only keeps buffers for the senders a process
  actually hears from (taken from a measured run or given explicitly);
* :func:`project_unexpected_exposure` — worst-case unexpected-message memory
  at a fan-in receiver under unsolicited eager sends versus credit-bounded
  sends.

These projections are an extension (the paper never evaluates them); they are
exercised by ``benchmarks/test_bench_scaling.py`` and the tests.

The module also hosts :func:`lockstep_scale_configs`, the machine/network
configuration pair under which the engine scaling benchmarks
(``BENCH_scale.json``) run thousand-rank simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkConfig
from repro.trace.streams import summarize_stream
from repro.util.text import ascii_table
from repro.util.validation import check_non_negative, check_positive

__all__ = [
    "BufferMemoryProjection",
    "lockstep_scale_configs",
    "partitioned_scale_configs",
    "project_buffer_memory",
    "project_unexpected_exposure",
    "render_projection_table",
    "working_set_from_run",
]


def lockstep_scale_configs() -> tuple[MachineConfig, NetworkConfig]:
    """Machine/network pair used by the engine scaling benchmarks.

    An *ideal* zero-latency, infinite-bandwidth, noiseless network plus a
    zero-overhead machine keeps every rank's clock in lockstep: all ranks
    reach iteration boundaries at identical timestamps, so the event queue's
    timestamp cohorts stay as wide as the job (thousands of same-time step
    events).  Wide cohorts are exactly what the vectorised engine batches
    over — under a realistic positive-latency configuration the stencil
    workloads pipeline into a wavefront and cohorts collapse towards size 1,
    which measures dispatch overhead rather than batch throughput.

    The eager threshold and buffer are raised so that stencil halo exchanges
    stay on the eager path (the vectorised transport's widest lane) instead
    of falling back to rendezvous control traffic.
    """
    machine = MachineConfig(
        recv_overhead=0.0,
        eager_threshold=1 << 20,
        eager_buffer_bytes=1 << 22,
        preallocate_all_peers=False,
    )
    network = NetworkConfig(
        latency=0.0, bandwidth=float("inf"), jitter_sigma=0.0, contention=False
    )
    return machine, network


def partitioned_scale_configs() -> tuple[MachineConfig, NetworkConfig]:
    """Machine/network pair for the *parallel*-engine scaling benchmarks.

    Identical to :func:`lockstep_scale_configs` except for one thing: the
    network carries a small positive latency (2 µs, still effectively
    instantaneous next to the workloads' compute phases).  The conservative
    parallel engine derives its lookahead from the minimum link latency, so
    the lockstep pair's zero-latency ideal network gives it nothing to
    partition with — while a noiseless positive-latency network keeps the
    ranks in near-lockstep (wide cohorts for the per-partition vectorised
    drains) *and* opens a usable conservative window.
    """
    machine = MachineConfig(
        recv_overhead=0.0,
        eager_threshold=1 << 20,
        eager_buffer_bytes=1 << 22,
        preallocate_all_peers=False,
    )
    network = NetworkConfig(
        latency=2e-6, bandwidth=float("inf"), jitter_sigma=0.0, contention=False
    )
    return machine, network


@dataclass(frozen=True)
class BufferMemoryProjection:
    """Projected per-process eager-buffer memory at one job size."""

    nprocs: int
    baseline_bytes: int
    predictive_bytes: int

    @property
    def reduction_factor(self) -> float:
        """How many times less memory the predictive policy commits."""
        return self.baseline_bytes / max(self.predictive_bytes, 1)


def working_set_from_run(result, rank: int, extra_recent: int = 2) -> int:
    """Measured sender working set of ``rank`` in a simulation result.

    The working set is the number of distinct senders the rank receives from
    (its "communication locality", in the terminology of the related work the
    paper cites), plus the small victim cache the predictive buffer manager
    keeps.  This is the quantity that stays (nearly) constant as the job
    grows, which is exactly why predicted-sender buffering scales.
    """
    summary = summarize_stream(result.trace_for(rank).logical)
    return summary.num_distinct_senders + extra_recent


def project_buffer_memory(
    process_counts: Sequence[int],
    working_set: int,
    machine: MachineConfig | None = None,
) -> list[BufferMemoryProjection]:
    """Project per-process buffer memory for the given job sizes.

    Parameters
    ----------
    process_counts:
        Job sizes to project to (e.g. ``[64, 1024, 10_000]`` — the last one
        is the paper's Blue Gene example).
    working_set:
        Number of per-peer buffers the predictive policy keeps (from
        :func:`working_set_from_run` or chosen analytically).
    machine:
        Supplies the per-peer buffer size (16 KB by default, as in the paper).
    """
    check_positive("working_set", working_set)
    machine = machine or MachineConfig()
    projections = []
    for nprocs in process_counts:
        check_positive("nprocs", nprocs)
        baseline = (nprocs - 1) * machine.eager_buffer_bytes
        predictive = min(working_set, nprocs - 1) * machine.eager_buffer_bytes
        projections.append(
            BufferMemoryProjection(
                nprocs=int(nprocs), baseline_bytes=baseline, predictive_bytes=predictive
            )
        )
    return projections


def project_unexpected_exposure(
    process_counts: Sequence[int],
    message_bytes: int,
    messages_per_sender: int = 1,
    credit_cap_bytes: int = 64 * 1024,
) -> list[dict]:
    """Worst-case unexpected-message memory at a fan-in receiver.

    Under the standard policy every peer may push ``messages_per_sender``
    eager messages of ``message_bytes`` without asking (Section 2.2's
    out-of-memory scenario); under credit flow control the exposure per peer
    is bounded by the outstanding credit.
    """
    check_non_negative("message_bytes", message_bytes)
    check_positive("messages_per_sender", messages_per_sender)
    check_positive("credit_cap_bytes", credit_cap_bytes)
    rows = []
    for nprocs in process_counts:
        check_positive("nprocs", nprocs)
        peers = nprocs - 1
        unsolicited = peers * messages_per_sender * message_bytes
        credited = peers * min(credit_cap_bytes, messages_per_sender * message_bytes)
        rows.append(
            {
                "nprocs": int(nprocs),
                "unsolicited_bytes": int(unsolicited),
                "credit_bounded_bytes": int(credited),
                "credit_cap_bytes": int(credit_cap_bytes),
            }
        )
    return rows


def render_projection_table(projections: Sequence[BufferMemoryProjection]) -> str:
    """Render buffer-memory projections as an ASCII table (MB figures)."""
    headers = ["nprocs", "baseline MB/process", "predictive MB/process", "reduction"]
    rows = [
        [
            p.nprocs,
            p.baseline_bytes / (1024 * 1024),
            p.predictive_bytes / (1024 * 1024),
            p.reduction_factor,
        ]
        for p in projections
    ]
    return ascii_table(
        headers,
        rows,
        title="Projected per-process eager-buffer memory (Section 2.1 arithmetic)",
    )
