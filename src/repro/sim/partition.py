"""Conservative parallel execution: rank partitions over worker processes.

``engine="parallel"`` splits the simulated ranks into disjoint partitions,
forks one worker process per partition (each inheriting the fully-built
:class:`~repro.sim.engine.Simulator` copy-on-write) and advances all of them
in *conservative windows*:

1. Every worker reports the timestamp of its next pending event and hands
   over the cross-partition records its transport buffered (eager payloads,
   rendezvous RTS/CTS, duplicate ghosts — see
   :meth:`repro.runtime.transport.Transport.take_outbox`).
2. The coordinator takes the global minimum ``T`` over those next-event
   times *and* the in-flight record times, and opens the window
   ``[T, T + lookahead)`` where ``lookahead`` is the network's minimum
   positive link latency (:meth:`repro.sim.network.NetworkModel.min_latency`).
3. Records are routed to their destination partitions, sorted by
   ``(time, origin_partition, seq)``, injected, and every worker drains its
   queue up to (but excluding) the window end through the vectorised cohort
   loop (:meth:`Simulator._run_loop_vectorised` with ``until=``).

Safety is the classic conservative-lookahead argument: any event executed in
the window happens at ``t < T + lookahead``, and any message it emits toward
another partition arrives no earlier than ``t' + latency >= T + lookahead``
(``t' >= T`` is when the send executes, and every link latency is at least
the lookahead).  So nothing a worker does during a window can affect another
worker *within* that window — the exchanged records always land at or beyond
the barrier, and every partition sees exactly the event sequence the
single-process engine would execute.  Outputs are therefore bit-identical to
the scalar and vectorised drains (the per-rank accumulation of float
statistics makes the reductions order-independent across partitions; see
:mod:`repro.runtime.stats` and :mod:`repro.sim.faults`).

Eligibility is checked by :meth:`Simulator._parallel_fallback_reason`;
ineligible configurations run in-process and record the reason in
:attr:`SimulationResult.parallel_info`.
"""

from __future__ import annotations

import gc
import os
from time import monotonic as _monotonic

from repro.sim.errors import (
    DeadlockError,
    ProgramError,
    SimulationError,
    TimeLimitExceeded,
)
from repro.sim.faults import merge_fault_partials

__all__ = ["contiguous_blocks", "validate_partition", "run_partitioned"]


# ----------------------------------------------------------------------
# Partitioners
# ----------------------------------------------------------------------
def contiguous_blocks(nprocs: int, jobs: int) -> list[list[int]]:
    """Split ranks ``0..nprocs-1`` into ``jobs`` balanced contiguous blocks.

    The default partitioner: nearest-neighbour workloads (lockstep halo
    exchanges, ring exchanges) keep almost all traffic inside a block, so
    only the boundary ranks ever cross the barrier.  Blocks differ in size
    by at most one rank; empty blocks are dropped when ``jobs > nprocs``.
    """
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive, got {nprocs}")
    if jobs <= 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    base, extra = divmod(nprocs, jobs)
    blocks = []
    start = 0
    for i in range(jobs):
        size = base + (1 if i < extra else 0)
        if size:
            blocks.append(list(range(start, start + size)))
        start += size
    return blocks


def validate_partition(blocks, nprocs: int) -> list[list[int]]:
    """Check that ``blocks`` is a disjoint, complete cover of the rank space."""
    seen: set[int] = set()
    validated: list[list[int]] = []
    for i, block in enumerate(blocks):
        block = list(block)
        if not block:
            raise SimulationError(f"partitioner produced an empty partition {i}")
        for rank in block:
            if not (0 <= rank < nprocs):
                raise SimulationError(
                    f"partition {i} contains out-of-range rank {rank} "
                    f"(nprocs={nprocs})"
                )
            if rank in seen:
                raise SimulationError(
                    f"rank {rank} appears in more than one partition"
                )
            seen.add(rank)
        validated.append(block)
    if len(seen) != nprocs:
        missing = sorted(set(range(nprocs)) - seen)
        raise SimulationError(
            f"partitioner left ranks unassigned: {missing[:8]}"
            f"{'...' if len(missing) > 8 else ''}"
        )
    return validated


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
def run_partitioned(sim):
    """Run a prepared simulator's ranks across forked partition workers.

    Called by :meth:`Simulator.run` after the rank states are built and the
    eligibility check passed; nothing has been scheduled yet (each worker
    schedules step 0 for its own ranks only).  Returns the merged
    :class:`~repro.sim.engine.SimulationResult`, bit-identical to the
    in-process engines.
    """
    import multiprocessing

    from repro.sim.engine import SimulationResult  # noqa: F401 (merge below)

    nprocs = sim.nprocs
    partitioner = sim.partitioner if sim.partitioner is not None else contiguous_blocks
    blocks = validate_partition(partitioner(nprocs, sim.engine_jobs), nprocs)
    lookahead = sim.network.min_latency()
    if lookahead <= 0.0:
        raise SimulationError(
            "parallel engine requires a positive minimum network latency as "
            f"its conservative lookahead, got {lookahead!r}"
        )
    rank_part = [0] * nprocs
    for p, block in enumerate(blocks):
        for rank in block:
            rank_part[rank] = p
    k = len(blocks)

    ctx = multiprocessing.get_context("fork")
    workers = []
    conns = []
    for block in blocks:
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_main, args=(sim, block, child_conn), daemon=True
        )
        proc.start()
        child_conn.close()
        workers.append(proc)
        conns.append(parent_conn)

    wall_deadline = (
        _monotonic() + sim.max_wall_seconds
        if sim.max_wall_seconds is not None
        else None
    )
    windows = 0
    try:
        while True:
            next_times: list[float | None] = []
            outboxes = []
            total_popped = 0
            for conn in conns:
                msg = _recv(conn)
                if msg[0] == "error":
                    raise _rebuild_error(msg)
                _, next_time, popped, outbox = msg
                next_times.append(next_time)
                total_popped += popped
                outboxes.append(outbox)
            if sim.max_events is not None and total_popped > sim.max_events:
                raise SimulationError(
                    f"exceeded max_events={sim.max_events}; the workload is "
                    "larger than expected or the simulation is livelocked"
                )
            if wall_deadline is not None and _monotonic() > wall_deadline:
                raise TimeLimitExceeded(
                    f"exceeded max_wall_seconds={sim.max_wall_seconds:g}; "
                    "the simulation is livelocked or far larger than expected"
                )
            # Route the in-flight records and find the global minimum next
            # event time (queued events and in-flight records both count).
            min_time: float | None = None
            for t in next_times:
                if t is not None and (min_time is None or t < min_time):
                    min_time = t
            injections: list[list[tuple]] = [[] for _ in range(k)]
            for p, outbox in enumerate(outboxes):
                for target, time, seq, payload in outbox:
                    injections[rank_part[target]].append((time, p, seq, payload))
                    if min_time is None or time < min_time:
                        min_time = time
            if min_time is None:
                # Every queue is empty and nothing is in flight: terminate.
                for conn in conns:
                    conn.send(("finish",))
                break
            window_end = min_time + lookahead
            windows += 1
            for p, conn in enumerate(conns):
                batch = injections[p]
                # (time, origin_partition, seq): a deterministic total order
                # for same-time records regardless of worker arrival order.
                batch.sort(key=lambda rec: rec[:3])
                conn.send(
                    ("window", window_end, [(t, payload) for t, _, _, payload in batch])
                )
        payloads = []
        for conn in conns:
            msg = _recv(conn)
            if msg[0] == "error":
                raise _rebuild_error(msg)
            payloads.append(msg[1])
    finally:
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        for proc in workers:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=10.0)

    return _merge_results(sim, blocks, payloads, windows, lookahead)


def _recv(conn):
    try:
        return conn.recv()
    except EOFError:
        raise SimulationError(
            "parallel worker exited without reporting a result (killed or "
            "crashed before the barrier)"
        ) from None


def _rebuild_error(msg) -> Exception:
    _, name, text, blocked = msg
    if name == "DeadlockError":
        return DeadlockError(blocked or [], text)
    if name == "TimeLimitExceeded":
        return TimeLimitExceeded(text)
    if name == "ProgramError":
        return ProgramError(text)
    if name == "SimulationError":
        return SimulationError(text)
    return SimulationError(f"parallel worker failed with {name}: {text}")


def _merge_results(sim, blocks, payloads, windows: int, lookahead: float):
    from repro.sim.engine import SimulationResult

    nprocs = sim.nprocs
    finish = [0.0] * nprocs
    done = 0
    blocked: list[int] = []
    events = 0
    pending_detail: dict = {}
    stats = sim.transport.stats
    fault_partials: list[dict] = []
    buffer_stats = sim.transport.buffer_stats()
    traces = []
    trace_pending: dict = {}
    # Partition order: integer counters sum exactly in any order, and the
    # per-rank float dicts are disjoint, so the merge order never shows.
    for payload in payloads:
        for rank, now in payload["finish"].items():
            finish[rank] = now
        done += len(payload["done"])
        blocked.extend(payload["blocked"])
        events += payload["events"]
        sim.vector_cohorts += payload["vector_cohorts"]
        stats.merge_from(payload["stats"])
        if payload["fault_partial"] is not None:
            fault_partials.append(payload["fault_partial"])
        if payload["traces"] is not None:
            traces.extend(payload["traces"])
            trace_pending.update(payload["pending_traces"])
        for rank, snapshot in payload["buffer_stats"].items():
            buffer_stats[rank] = snapshot
        pending_detail.update(payload["pending_counts"])
    if done != nprocs:
        raise DeadlockError(sorted(blocked), f"pending queues: {pending_detail}")
    tracer = sim.tracer
    if tracer is not None:
        tracer.adopt_traces(traces, trace_pending)
        tracer.finalize()
    sim.parallel_info = {
        "partitions": len(blocks),
        "windows": windows,
        "lookahead": lookahead,
        "engine_jobs": sim.engine_jobs,
    }
    return SimulationResult(
        nprocs=nprocs,
        makespan=max(finish, default=0.0),
        rank_finish_times=finish,
        events_processed=events,
        stats=stats,
        tracer=tracer,
        buffer_stats=buffer_stats,
        fault_stats=merge_fault_partials(fault_partials) if fault_partials else None,
        parallel_info=sim.parallel_info,
    )


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
def _worker_main(sim, local_ranks, conn) -> None:
    """One partition worker: windowed drain of the inherited simulator.

    Runs in a forked child.  Only the local ranks are scheduled, the
    transport routes remote sends into its outbox, and each round trips:
    ``sync(next_time, popped, outbox)`` up, ``window(end, injections)`` (or
    ``finish``) down.  The final ``result`` payload carries everything the
    coordinator needs to merge a bit-identical :class:`SimulationResult`.
    """
    try:
        local_set = frozenset(local_ranks)
        transport = sim.transport
        transport.enable_partition_mode(local_set)
        sim._done_count = 0
        for state in sim._ranks:
            if state.rank in local_set:
                sim.schedule_step(0.0, state, None)
        sim._build_lane_arena(local_set)
        queue = sim._queue
        run_window = sim._run_loop_vectorised
        take_outbox = transport.take_outbox
        inject = transport.inject_remote
        # Same rationale as Simulator.run: the drain allocates short-lived,
        # cycle-free objects; the worker process exits right after.
        gc.disable()
        while True:
            conn.send(("sync", queue.peek_time(), queue.events_processed, take_outbox()))
            msg = conn.recv()
            if msg[0] == "finish":
                break
            _, window_end, injections = msg
            for time, payload in injections:
                inject(time, payload)
            run_window(until=window_end)
        conn.send(("result", _worker_payload(sim, local_set)))
    except BaseException as exc:
        try:
            conn.send(
                (
                    "error",
                    type(exc).__name__,
                    str(exc),
                    list(getattr(exc, "blocked_ranks", ()) or ()),
                )
            )
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        try:
            conn.close()
        finally:
            # Skip interpreter teardown: the forked child shares inherited
            # state (atexit hooks, open files) with the coordinator.
            os._exit(0)


def _worker_payload(sim, local_set) -> dict:
    from repro.sim.engine import RankStatus

    transport = sim.transport
    ranks = sorted(local_set)
    states = [sim._ranks[r] for r in ranks]
    tracer = sim.tracer
    traces = None
    pending = None
    if tracer is not None:
        traces = [tracer._traces[r] for r in ranks]
        pending = {r: tracer._pending[r] for r in ranks if tracer._pending[r]}
    return {
        "finish": {s.rank: s.now for s in states},
        "done": [s.rank for s in states if s.status is RankStatus.DONE],
        "blocked": [s.rank for s in states if s.status is RankStatus.BLOCKED],
        "events": sim._queue.events_processed,
        "vector_cohorts": sim.vector_cohorts,
        "stats": transport.stats,
        "fault_partial": (
            sim.faults.partial_counters() if sim.faults is not None else None
        ),
        "traces": traces,
        "pending_traces": pending,
        "buffer_stats": {r: transport.endpoint(r).buffers.stats() for r in ranks},
        "pending_counts": {
            r: v for r, v in transport.pending_counts().items() if r in local_set
        },
    }
