"""Discrete-event simulation substrate.

This package provides the machinery that stands in for the paper's real
IBM RS/6000 + MPICH testbed:

* :mod:`repro.sim.events` — a deterministic typed event queue (batch-draining
  heap with a zero-delay fast lane) and virtual clock.
* :mod:`repro.sim.network` — a latency/bandwidth/jitter network model (the
  source of the "random effects" that perturb the physical message stream).
* :mod:`repro.sim.machine` — per-node cost parameters (send/receive overheads,
  eager threshold, eager buffer sizes).
* :mod:`repro.sim.engine` — the simulator that drives generator-based rank
  programs and dispatches their MPI operations to the runtime transport.
"""

from repro.sim.engine import RankState, SimulationResult, Simulator
from repro.sim.errors import (
    ConfigurationError,
    DeadlockError,
    SimulationError,
    TimeLimitExceeded,
)
from repro.sim.events import EVENT_CALLBACK, EVENT_DELIVER, EVENT_STEP, EventQueue
from repro.sim.faults import FaultConfig, FaultInjector
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkConfig, NetworkModel
from repro.sim.registry import (
    create_faults,
    create_machine,
    create_network,
    fault_preset_names,
    machine_preset_names,
    network_preset_names,
    register_fault_preset,
    register_machine_preset,
    register_network_preset,
)

__all__ = [
    "create_faults",
    "create_machine",
    "create_network",
    "fault_preset_names",
    "machine_preset_names",
    "network_preset_names",
    "register_fault_preset",
    "register_machine_preset",
    "register_network_preset",
    "FaultConfig",
    "FaultInjector",
    "EVENT_CALLBACK",
    "EVENT_DELIVER",
    "EVENT_STEP",
    "EventQueue",
    "NetworkConfig",
    "NetworkModel",
    "MachineConfig",
    "Simulator",
    "SimulationResult",
    "RankState",
    "SimulationError",
    "TimeLimitExceeded",
    "DeadlockError",
    "ConfigurationError",
]
