"""Deterministic fault injection for the simulator.

Real MPI runs are not the clean, perfectly periodic traffic the paper
evaluates on: transports drop and retransmit packets, links degrade under
congestion, and ranks stall on OS noise.  This module injects exactly those
perturbations into a simulation — *deterministically*, so a faulted run is
bit-reproducible from its seed and a zero-rate fault configuration is
bit-identical to no fault injection at all.

Three fault models, freely combined in one :class:`FaultConfig`:

**Message drop + retransmit** (``drop_rate``)
    A data payload's first transmission is lost with probability
    ``drop_rate``; the sender retransmits after ``retransmit_timeout``
    seconds (each retransmission may itself be dropped, up to
    ``max_retransmits`` attempts).  The transport preserves per-channel FIFO
    *matching* order — like MPI over a reliable transport, a lost message
    head-of-line blocks its channel, so recovery arrives as a back-to-back
    burst — while arrival order *across* senders is perturbed, which is what
    the physical-stream predictor sees.  With probability ``duplicate_rate``
    (conditional on a drop) the retransmission was spurious: the original
    copy also arrives, and the late duplicate is delivered to the tracer and
    the flow-control policy (it lands in ``observe_batch`` like any other
    arrival) but is discarded before MPI matching, exactly like a receiver
    deduplicating by sequence number.

**Transient link degradation** (``degrade_factor``)
    The network alternates between healthy and degraded windows — an
    alternating renewal process with exponential healthy intervals of mean
    ``degrade_interval`` and degraded intervals of mean ``degrade_duration``,
    generated from a dedicated seeded stream.  While degraded, every
    message's transfer delay (latency + serialization) is multiplied by
    ``degrade_factor``.

**Rank stalls** (``stall_rate``)
    Before each compute phase a rank stalls with probability ``stall_rate``
    for an exponential extra delay of mean ``stall_seconds`` (OS jitter,
    paging, a core stolen by another job).  Each rank draws from its own
    derived stream, so stall schedules are independent across ranks but
    reproducible.

Determinism contract
--------------------
All fault randomness derives from dedicated sub-streams of the fault seed
(``derive_seed(seed, "faults", ...)``), **never** from the network-jitter or
workload-noise streams.  Consequences:

* a configuration whose rates are all zero (:attr:`FaultConfig.is_null`)
  consumes no random numbers and produces a simulation bit-identical to one
  with no fault injection;
* enabling one fault model does not perturb the random streams of the
  others, nor the jitter/compute-noise streams of the underlying run;
* two runs with identical specs (including the fault seed) produce
  identical traces, statistics and fault counters — sequentially or sharded
  over a process pool.

Presets (``none``/``drop``/``degrade``/``stall``/``chaos``) are registered
in :mod:`repro.sim.registry`, so specs address fault models the same way
they address network presets: ``faults = "drop:rate=0.01,seed=7"``.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, replace

from repro.util.rng import SeededRNG
from repro.util.validation import check_non_negative, check_positive, check_probability

__all__ = ["FaultConfig", "FaultInjector", "merge_fault_partials"]


@dataclass(frozen=True)
class FaultConfig:
    """Parameters of the fault models (all rates default to zero = off).

    Attributes
    ----------
    drop_rate:
        Per-message probability that a data payload's transmission is lost
        and must be retransmitted.
    retransmit_timeout:
        Extra delay per lost transmission attempt, in seconds.
    max_retransmits:
        Upper bound on retransmission attempts per message (bounds the
        geometric retry tail).
    duplicate_rate:
        Probability, *given* a drop, that the retransmission was spurious and
        the original copy also arrives (a late duplicate delivery, visible to
        the tracer and flow-control policy but discarded before matching).
    degrade_factor:
        Transfer-delay multiplier while a degradation window is active.
        ``1.0`` disables link degradation.
    degrade_interval:
        Mean length of healthy windows between degradations, in seconds.
    degrade_duration:
        Mean length of a degraded window, in seconds.
    stall_rate:
        Per-compute-phase probability that a rank stalls.
    stall_seconds:
        Mean duration of one stall (exponential), in seconds.
    seed:
        Seed of the fault random streams.  ``None`` (the default) means "not
        pinned": the scenario layer and the simulator derive it from the run
        seed, like :attr:`repro.sim.network.NetworkConfig.seed`.
    """

    drop_rate: float = 0.0
    retransmit_timeout: float = 500.0e-6
    max_retransmits: int = 3
    duplicate_rate: float = 0.0
    degrade_factor: float = 1.0
    degrade_interval: float = 10.0e-3
    degrade_duration: float = 1.0e-3
    stall_rate: float = 0.0
    stall_seconds: float = 1.0e-3
    seed: int | None = None

    def __post_init__(self) -> None:
        check_probability("drop_rate", self.drop_rate)
        check_non_negative("retransmit_timeout", self.retransmit_timeout)
        check_probability("duplicate_rate", self.duplicate_rate)
        check_positive("degrade_factor", self.degrade_factor)
        check_positive("degrade_interval", self.degrade_interval)
        check_non_negative("degrade_duration", self.degrade_duration)
        check_probability("stall_rate", self.stall_rate)
        check_non_negative("stall_seconds", self.stall_seconds)
        if int(self.max_retransmits) < 1:
            raise ValueError(
                f"max_retransmits must be at least 1, got {self.max_retransmits}"
            )
        object.__setattr__(self, "max_retransmits", int(self.max_retransmits))

    # -- which models are live ---------------------------------------------
    @property
    def drop_active(self) -> bool:
        """True when the drop/retransmit model can fire."""
        return self.drop_rate > 0.0

    @property
    def degrade_active(self) -> bool:
        """True when link-degradation windows can occur."""
        return self.degrade_factor != 1.0 and self.degrade_duration > 0.0

    @property
    def stall_active(self) -> bool:
        """True when rank stalls can fire."""
        return self.stall_rate > 0.0 and self.stall_seconds > 0.0

    @property
    def is_null(self) -> bool:
        """True when no fault model can fire.

        A null configuration consumes no random numbers anywhere — the
        simulator skips building a :class:`FaultInjector` entirely, so the
        run is bit-identical to one with no fault configuration at all.
        """
        return not (self.drop_active or self.degrade_active or self.stall_active)

    def with_overrides(self, **kwargs) -> "FaultConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


class FaultInjector:
    """Stateful fault machinery for one simulation run.

    Owns the derived random streams (one per fault model, one per stalling
    rank) and the lazily generated degradation-window timeline, and counts
    every fault it injects (:meth:`counters`).

    Parameters
    ----------
    config:
        The fault parameters.  Build an injector only for non-null configs
        (:attr:`FaultConfig.is_null`); a null injector would waste a branch
        on several hot paths for nothing.
    run_seed:
        The simulation seed, used when ``config.seed`` is not pinned.
    """

    def __init__(self, config: FaultConfig, run_seed: int) -> None:
        self.config = config
        self.seed = config.seed if config.seed is not None else run_seed
        self.drop_active = config.drop_active
        self.degrade_active = config.degrade_active
        self.stall_active = config.stall_active
        # One drop stream per *sender* rank (lazily created), so the fault
        # decisions a rank's payloads experience depend only on that rank's
        # own send order — never on how sends from different ranks interleave
        # globally.  This is what lets the parallel engine fork one injector
        # per partition and still replay the exact single-process decisions.
        self._drop_rngs: dict[int, SeededRNG] = {}
        self._degrade_rng = (
            SeededRNG(self.seed, "faults", "degrade") if self.degrade_active else None
        )
        self._stall_rngs: dict[int, SeededRNG] = {}
        # Degradation timeline: boundary times of alternating windows.  The
        # window covering [boundaries[i], boundaries[i+1]) is degraded when i
        # is odd (the timeline starts healthy at t=0).  Generated lazily and
        # append-only, so queries need not be monotone in time.
        self._boundaries: list[float] = [0.0]
        # Counters.
        self.messages_dropped = 0
        self.retransmissions = 0
        self.duplicates_delivered = 0
        self.degraded_messages = 0
        self.stalls = 0
        # Stall seconds are floats, so the *accumulation order* matters for
        # bit-reproducibility.  They are kept per rank (each rank's stalls
        # add in its own chronological order) and reduced in rank order at
        # :meth:`counters` time — identical whether the run was one process
        # or merged from per-partition injectors.
        self._stall_time_by_rank: dict[int, float] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjector(seed={self.seed}, config={self.config!r})"

    # ------------------------------------------------------------------
    # Drop / retransmit / duplicate (consulted by the transport)
    # ------------------------------------------------------------------
    def data_fault(self, rank: int) -> tuple[float, bool]:
        """Fault decision for one data payload sent by ``rank``.

        Returns ``(extra_delay, duplicate)``: the retransmission delay added
        to the payload's arrival (0.0 when the transmission succeeded), and
        whether a spurious duplicate copy also arrives at the original time.
        Consumes random numbers only from the sending rank's dedicated drop
        stream (``("faults", "drop", rank)``), and only when the drop model
        is active — so the decision sequence a rank's payloads see is a pure
        function of that rank's own send order.
        """
        if not self.drop_active:
            return 0.0, False
        rng = self._drop_rngs.get(rank)
        if rng is None:
            rng = self._drop_rngs[rank] = SeededRNG(self.seed, "faults", "drop", rank)
        config = self.config
        if not rng.bernoulli(config.drop_rate):
            return 0.0, False
        attempts = 1
        while attempts < config.max_retransmits and rng.bernoulli(config.drop_rate):
            attempts += 1
        self.messages_dropped += 1
        self.retransmissions += attempts
        duplicate = config.duplicate_rate > 0.0 and rng.bernoulli(
            config.duplicate_rate
        )
        if duplicate:
            self.duplicates_delivered += 1
        return attempts * config.retransmit_timeout, duplicate

    # ------------------------------------------------------------------
    # Link degradation (consulted by the network model)
    # ------------------------------------------------------------------
    def _extend_timeline(self, until: float) -> None:
        boundaries = self._boundaries
        rng = self._degrade_rng
        config = self.config
        while boundaries[-1] <= until:
            # Even count of boundaries so far => currently inside a healthy
            # window; append its end, then the degraded window's end.
            healthy = rng.exponential(config.degrade_interval)
            degraded = rng.exponential(config.degrade_duration)
            last = boundaries[-1]
            boundaries.append(last + healthy)
            boundaries.append(last + healthy + degraded)

    def latency_multiplier(self, time: float) -> float:
        """Transfer-delay multiplier in force at simulated ``time``."""
        boundaries = self._boundaries
        if boundaries[-1] <= time:
            self._extend_timeline(time)
            boundaries = self._boundaries
        index = bisect_right(boundaries, time) - 1
        if index & 1:
            self.degraded_messages += 1
            return self.config.degrade_factor
        return 1.0

    # ------------------------------------------------------------------
    # Rank stalls (consulted by the engine before compute phases)
    # ------------------------------------------------------------------
    def stall(self, rank: int) -> float:
        """Extra stall delay for ``rank``'s next compute phase (often 0.0)."""
        rng = self._stall_rngs.get(rank)
        if rng is None:
            rng = self._stall_rngs[rank] = SeededRNG(self.seed, "faults", "stall", rank)
        config = self.config
        if not rng.bernoulli(config.stall_rate):
            return 0.0
        delay = rng.exponential(config.stall_seconds)
        self.stalls += 1
        by_rank = self._stall_time_by_rank
        by_rank[rank] = by_rank.get(rank, 0.0) + delay
        return delay

    # ------------------------------------------------------------------
    @property
    def stall_time(self) -> float:
        """Total stall seconds, reduced in rank order (engine-independent)."""
        by_rank = self._stall_time_by_rank
        return sum(by_rank[rank] for rank in sorted(by_rank))

    def counters(self) -> dict:
        """Deterministic, JSON-able fault accounting for this run."""
        return {
            "messages_dropped": self.messages_dropped,
            "retransmissions": self.retransmissions,
            "duplicates_delivered": self.duplicates_delivered,
            "degraded_messages": self.degraded_messages,
            "stalls": self.stalls,
            "stall_time": self.stall_time,
        }

    # -- parallel-engine merge support ----------------------------------
    def partial_counters(self) -> dict:
        """This injector's raw accounting, mergeable across partitions.

        Integer counters sum exactly in any order; the float stall seconds
        ship *per rank* so :func:`merge_fault_partials` can reproduce the
        single-process reduction order bit for bit.
        """
        return {
            "messages_dropped": self.messages_dropped,
            "retransmissions": self.retransmissions,
            "duplicates_delivered": self.duplicates_delivered,
            "degraded_messages": self.degraded_messages,
            "stalls": self.stalls,
            "stall_by_rank": dict(self._stall_time_by_rank),
        }


def merge_fault_partials(partials: list[dict]) -> dict:
    """Merge per-partition :meth:`FaultInjector.partial_counters` payloads.

    Each rank lives in exactly one partition, so the per-rank stall sums are
    disjoint; merging them and reducing in rank order reproduces exactly what
    a single-process injector's :meth:`FaultInjector.counters` reports.
    """
    merged = {
        "messages_dropped": 0,
        "retransmissions": 0,
        "duplicates_delivered": 0,
        "degraded_messages": 0,
        "stalls": 0,
    }
    stall_by_rank: dict[int, float] = {}
    for partial in partials:
        for key in merged:
            merged[key] += partial[key]
        stall_by_rank.update(partial["stall_by_rank"])
    merged["stall_time"] = sum(stall_by_rank[rank] for rank in sorted(stall_by_rank))
    return merged
