"""The discrete-event simulation engine.

A *rank program* is produced by calling a program factory with a
:class:`repro.mpi.communicator.RankContext` and takes one of two forms:

* a Python **generator**: each value it yields is an MPI operation
  (:mod:`repro.mpi.ops`); the engine executes it against the runtime
  transport and resumes the generator with the operation's result once it
  completes in simulated time;
* a :class:`repro.mpi.ops.CompiledProgram`: the same operation sequence
  precompiled into flat typed op lanes (see :mod:`repro.workloads.compile`),
  which the engine drives through :meth:`Simulator._step_compiled` — one
  cursor advance and a few lane loads per op instead of a generator
  resumption, an operation allocation and argument validation.  Both forms
  produce bit-identical simulations; ranks of either form can mix freely in
  one run.

The engine owns the global event queue and each rank's local virtual clock.
Blocking operations suspend a rank until the transport completes the
corresponding request; non-blocking operations resume the rank immediately
(after the CPU overhead of posting) and hand back a request handle that can
be waited on later.  If the event queue drains while some ranks are still
blocked, the simulation is deadlocked and :class:`repro.sim.errors.DeadlockError`
is raised, listing the stuck ranks — the same failure a real MPI job would
hang on.

Batched event architecture
--------------------------
The engine is the end-to-end bottleneck once the predictor hot path is
amortised (see ROADMAP "Perf trajectory"), so its dispatch pipeline avoids
per-event allocation entirely:

* The event queue (:mod:`repro.sim.events`) holds flat *typed records*
  instead of closures.  Rank resumptions are ``EVENT_STEP`` records and
  payload arrivals are ``EVENT_DELIVER`` records; only rare control traffic
  (rendezvous RTS/CTS) uses the generic callback lane.
* Operations yielded by generator programs are dispatched through a
  per-op-type *handler table* (``type(op) -> bound handler``) instead of an
  ``isinstance`` chain; compiled programs skip operation objects entirely
  and decode each op from their lanes.
* The run loop drains whole *timestamp cohorts* (streaming through an
  inlined equivalent of :meth:`repro.sim.events.EventQueue.pop_batch`) and
  coalesces consecutive deliveries bound for one receiver into a single
  :meth:`repro.runtime.transport.Transport.deliver_burst` call, which feeds
  the online predictive policies whole bursts
  (:meth:`repro.runtime.protocol.FlowControlPolicy.on_burst_delivered`).

Determinism is unchanged: every event still executes in exact global
``(time, seq)`` order, so simulation outputs are bit-identical to the
closure-per-event engine.
"""

from __future__ import annotations

import gc
import os
from dataclasses import dataclass, field
from enum import Enum
from heapq import heappop as _heappop, heappush as _heappush
from time import monotonic as _monotonic
from typing import Callable, Generator, Sequence

import numpy as np

from repro.mpi.collectives import decomposition_for
from repro.mpi.communicator import Communicator, RankContext
from repro.mpi.ops import (
    OP_COMPUTE,
    OP_IRECV,
    OP_ISEND,
    OP_RECV,
    OP_SEND,
    OP_WAIT,
    OP_WAITALL,
    CollectiveOp,
    CompiledProgram,
    ComputeOp,
    IrecvOp,
    IsendOp,
    Operation,
    RecvOp,
    SendOp,
    WaitallOp,
    WaitOp,
)
from repro.mpi.request import Request
from repro.runtime.stats import RuntimeStats
from repro.runtime.transport import Transport
from repro.sim.errors import (
    DeadlockError,
    ProgramError,
    SimulationError,
    TimeLimitExceeded,
)
from repro.sim.faults import FaultConfig, FaultInjector
from repro.sim.events import (
    EV_A,
    EV_B,
    EV_CANCELLED,
    EV_KIND,
    EV_POPPED,
    EV_TIME,
    EVENT_CALLBACK,
    EVENT_DELIVER,
    EVENT_DELIVER_BATCH,
    EVENT_STEP,
    EVENT_STEP_BATCH,
    EventQueue,
)
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkConfig, NetworkModel
from repro.trace.tracer import TwoLevelTracer
from repro.util.rng import SeededRNG

__all__ = ["Simulator", "SimulationResult", "RankState", "RankStatus"]

#: A program factory takes a rank context and returns the rank's generator.
ProgramFactory = Callable[[RankContext], Generator[Operation, object, None]]

#: ``engine="auto"`` switches to the vectorised drain at this many compiled
#: ranks.  Below it, cohorts are too small for the numpy gather/dispatch
#: overhead to amortise; at or above it the batch lane wins (see
#: ``BENCH_scale.json``).
_VECTOR_MIN_RANKS = 16

#: Minimum cohort size worth routing through ``_exec_cohort``; smaller
#: cohorts run the scalar ``_step_compiled`` path directly.
_VECTOR_MIN_COHORT = 4

#: Minimum segment size for the numpy fancy-indexed lane gathers.  Below it
#: the batch handlers read the Python list lanes directly (array conversion
#: overhead beats the gather on small segments); the batched event-record
#: push is worthwhile at any segment size.
_VECTOR_GATHER_MIN = 64


class RankStatus(Enum):
    """Lifecycle state of one simulated rank."""

    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


#: Module-level aliases: enum member lookup is an attribute access on every
#: step, and the engine touches these on the hottest path.
_READY = RankStatus.READY
_BLOCKED = RankStatus.BLOCKED
_DONE = RankStatus.DONE
_FAILED = RankStatus.FAILED


@dataclass(slots=True)
class RankState:
    """Book-keeping for one simulated rank.

    A rank runs in one of two modes, fixed at :meth:`Simulator.run` time:
    the generator protocol (``generator``/``resume_fn`` set, ``compiled``
    None) or the op-array fast lane (``compiled`` set and the ``cp_*``
    fields holding the schedule lanes plus the execution cursor).
    """

    rank: int
    generator: Generator[Operation, object, None] | None
    now: float = 0.0
    status: RankStatus = RankStatus.READY
    steps: int = 0
    blocked_on: str = ""
    #: Cached ``generator.send`` bound method (set by :meth:`Simulator.run`).
    #: While a first-class collective is being expanded, this points at the
    #: decomposition generator's ``send`` instead (see ``gen_stack``).
    resume_fn: Callable | None = None
    #: Suspended outer ``resume_fn`` frames during collective expansion
    #: (:meth:`Simulator._op_collective`); lazily allocated, usually depth 1.
    gen_stack: list | None = None
    #: The rank's :class:`CompiledProgram`, or None in generator mode.
    compiled: CompiledProgram | None = None
    #: Next op index in the compiled lanes.
    cp_cursor: int = 0
    #: Requests of outstanding non-blocking compiled ops, in issue order.
    cp_pending: list | None = None
    # The individual schedule lanes, unpacked here so the per-op decode in
    # ``_step_compiled`` is a single attribute load per lane.
    cp_len: int = 0
    cp_op: object = None
    cp_a: object = None
    cp_nbytes: object = None
    cp_tag: object = None
    cp_seconds: object = None
    cp_kind: object = None
    #: Offset of this rank's lanes in the vectorised engine's concatenated
    #: lane arena (0 and unused under the scalar drain).
    cp_base: int = 0


@dataclass
class SimulationResult:
    """Everything a finished simulation exposes to the analysis layer."""

    nprocs: int
    makespan: float
    rank_finish_times: list[float]
    events_processed: int
    stats: RuntimeStats
    tracer: TwoLevelTracer | None
    buffer_stats: list = field(default_factory=list)
    #: Fault-injection accounting (:meth:`FaultInjector.counters`), or None
    #: when the run had no active fault models.
    fault_stats: dict | None = None
    #: Parallel-engine diagnostics: ``{"partitions": k, "windows": n,
    #: "lookahead": s, "engine_jobs": j}`` when the run was partitioned
    #: across worker processes, ``{"fallback": reason, "engine_jobs": j}``
    #: when ``engine="parallel"`` was requested but the configuration was
    #: ineligible (the run then executed in-process, bit-identically), and
    #: None for non-parallel engines.  ``engine_jobs`` is the *resolved*
    #: worker count — ``engine_jobs=0`` auto-tunes to ``os.cpu_count()``.
    parallel_info: dict | None = None

    def trace_for(self, rank: int):
        """Convenience accessor for one rank's :class:`ProcessTrace`."""
        if self.tracer is None:
            raise SimulationError("simulation was run without a tracer")
        return self.tracer.trace_for(rank)


def _result_none(requests: list[Request]) -> None:
    return None


def _result_first_status(requests: list[Request]):
    return requests[0].status


def _result_all_statuses(requests: list[Request]) -> list:
    return [r.status for r in requests]


class Simulator:
    """Drives a set of rank programs over the runtime transport.

    Parameters
    ----------
    nprocs:
        Number of ranks in the job.
    machine:
        Per-node cost model (defaults to :class:`MachineConfig`).
    network:
        Either a :class:`NetworkModel` or a :class:`NetworkConfig` (a model is
        built from it); defaults to the standard jittered network.
    tracer:
        A :class:`TwoLevelTracer`, or True to create one, or None/False for no
        tracing.
    policy:
        Flow-control policy forwarded to the transport.
    seed:
        Base seed for per-rank RNGs handed to the programs (compute-time noise
        in the workload skeletons).
    max_events:
        Safety limit on processed events; exceeding it raises
        :class:`SimulationError` (guards against runaway programs).
    max_wall_seconds:
        Safety limit on *real* elapsed time for :meth:`run`; exceeding it
        raises :class:`SimulationError`.  Complements ``max_events`` (which
        bounds work) and :class:`DeadlockError` (which catches drained-queue
        hangs): this one catches livelocked or pathologically slow runs that
        keep producing events.
    faults:
        Optional fault injection: a :class:`FaultConfig` (an injector is
        built from it, seeded from the run seed unless the config pins one)
        or a pre-built :class:`FaultInjector`.  A null config (all rates
        zero) is ignored entirely, so the run is bit-identical to passing
        ``None``.
    engine:
        Which run-loop drain to use: ``"scalar"`` forces the record-by-record
        loop, ``"vectorised"`` forces the cohort-batching loop (compiled
        ranks only — generator ranks always step scalar), and ``"auto"`` (the
        default) picks the vectorised loop when at least
        ``_VECTOR_MIN_RANKS`` ranks are compiled.  The two drains produce
        **bit-identical** simulations — traces, stats, event counts and fault
        counters; the knob only trades constant factors.

        ``"parallel"`` partitions the ranks across ``engine_jobs`` worker
        processes synchronised in conservative windows of width
        ``network.min_latency()`` (see :mod:`repro.sim.partition`).  Outputs
        are bit-identical to the in-process drains.  Configurations the
        conservative protocol cannot partition safely — zero minimum
        latency, jittered/contended/dropping network models, flow-control
        policies whose eager decisions read receiver state, generator
        ranks — transparently fall back to the in-process ``"auto"``
        selection, recording the reason in
        :attr:`SimulationResult.parallel_info`.
    engine_jobs:
        Number of worker processes for ``engine="parallel"`` (ignored by the
        other engines).  ``0`` auto-tunes to ``os.cpu_count()``; resolved
        values below 2 fall back to in-process execution.
    partitioner:
        Optional callable ``(nprocs, jobs) -> list[list[int]]`` assigning
        ranks to partitions for ``engine="parallel"``; defaults to
        contiguous balanced blocks (:func:`repro.sim.partition.contiguous_blocks`).

    A ``Simulator`` instance is **single-use**: :meth:`run` consumes the
    event queue, transport matching state and jitter RNG streams, so a second
    call raises :class:`SimulationError` instead of silently reusing stale
    state.  Build a fresh instance (or use
    :func:`repro.workloads.runner.run_workload`) per simulation.
    """

    def __init__(
        self,
        nprocs: int,
        machine: MachineConfig | None = None,
        network: NetworkModel | NetworkConfig | None = None,
        tracer: TwoLevelTracer | bool | None = True,
        policy=None,
        seed: int = 12345,
        max_events: int | None = None,
        max_wall_seconds: float | None = None,
        faults: FaultConfig | FaultInjector | None = None,
        engine: str = "auto",
        engine_jobs: int = 2,
        partitioner=None,
    ) -> None:
        if nprocs <= 0:
            raise ValueError(f"nprocs must be positive, got {nprocs}")
        if engine not in ("auto", "scalar", "vectorised", "parallel"):
            raise ValueError(
                "engine must be 'auto', 'scalar', 'vectorised' or 'parallel', "
                f"got {engine!r}"
            )
        if engine_jobs == 0:
            # Auto-tune: one partition per available core.
            engine_jobs = os.cpu_count() or 1
        if engine_jobs < 0:
            raise ValueError(
                f"engine_jobs must be positive (or 0 for auto), got {engine_jobs}"
            )
        self.engine = engine
        self.engine_jobs = engine_jobs
        self.partitioner = partitioner
        #: See :attr:`SimulationResult.parallel_info`.
        self.parallel_info: dict | None = None
        self.nprocs = nprocs
        self.machine = machine or MachineConfig()
        if network is None:
            network = NetworkConfig(seed=seed)
        if isinstance(network, NetworkConfig):
            if network.seed is None:
                # A configuration without a pinned seed follows the run seed,
                # exactly like the default configuration built above — so
                # `NetworkConfig(jitter_sigma=...)` and `NetworkConfig()` both
                # derive their jitter stream from `seed`.
                network = network.with_overrides(seed=seed)
            network = NetworkModel(network)
        self.network = network
        if tracer is True:
            tracer = TwoLevelTracer(nprocs)
        elif tracer is False:
            tracer = None
        self.tracer = tracer
        self.seed = seed
        self.max_events = max_events
        self.max_wall_seconds = max_wall_seconds
        if isinstance(faults, FaultConfig):
            faults = None if faults.is_null else FaultInjector(faults, seed)
        self.faults = faults
        if faults is not None:
            self.network.attach_faults(faults)
        # Bound stall hook, or None: checked once per compute phase, so the
        # fault-free hot path pays a single identity test.
        self._fault_stall = (
            faults.stall if faults is not None and faults.stall_active else None
        )
        self.transport = Transport(
            nprocs=nprocs,
            machine=self.machine,
            network=self.network,
            tracer=self.tracer,
            policy=policy,
            faults=faults,
        )
        self.transport.attach(self)
        self._queue = EventQueue()
        self._push_typed = self._queue.push_typed
        self._ranks: list[RankState] = []
        self.time = 0.0
        self._done_count = 0
        self._started = False
        # Concatenated per-rank lane columns for the vectorised drain (built
        # in run() when that drain is selected); flat contiguous arrays so
        # fancy-indexed gathers don't stride through a structured dtype.
        self._arena_op = None
        self._arena_a = None
        self._arena_nbytes = None
        self._arena_tag = None
        self._arena_seconds = None
        #: Number of cohorts executed through the vectorised lane (0 under
        #: the scalar drain); exposed for tests and benchmarks.
        self.vector_cohorts = 0
        self._op_table = {
            ComputeOp: self._op_compute,
            SendOp: self._op_send,
            IsendOp: self._op_isend,
            RecvOp: self._op_recv,
            IrecvOp: self._op_irecv,
            WaitOp: self._op_wait,
            WaitallOp: self._op_waitall,
            # Subclasses resolve (and cache) through _resolve_handler's MRO
            # walk.  This is the only handler that returns True: it expands
            # the collective in place and _step keeps driving the same event.
            CollectiveOp: self._op_collective,
        }

    # ------------------------------------------------------------------
    # Scheduling interface (also used by the transport)
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        self._push_typed(
            time if time > self.time else self.time, EVENT_CALLBACK, callback
        )

    def schedule_step(self, time: float, state: RankState, value: object) -> None:
        """Schedule the resumption of ``state``'s generator with ``value``."""
        self._push_typed(
            time if time > self.time else self.time, EVENT_STEP, state, value
        )

    def schedule_delivery(self, time: float, message, posted) -> None:
        """Schedule the physical arrival of ``message`` at its destination."""
        self._push_typed(
            time if time > self.time else self.time, EVENT_DELIVER, message, posted
        )

    def schedule_delivery_batch(self, time: float, items) -> None:
        """Schedule ``len(items)`` simultaneous arrivals as one batch record.

        ``items`` holds ``(message, posted)`` pairs.  Sequence numbering and
        event accounting are identical to ``len(items)`` consecutive
        :meth:`schedule_delivery` calls (see
        :meth:`repro.sim.events.EventQueue.push_deliver_batch`).
        """
        self._queue.push_deliver_batch(
            time if time > self.time else self.time, items
        )

    # ------------------------------------------------------------------
    # Running programs
    # ------------------------------------------------------------------
    def run(self, programs: Sequence[ProgramFactory]) -> SimulationResult:
        """Run one program factory per rank to completion.

        ``programs`` may contain a single factory (used for every rank, the
        SPMD style of all the paper's benchmarks) or exactly ``nprocs``
        factories.
        """
        if self._started:
            raise SimulationError(
                "Simulator instances are single-use: run() was already called "
                "and the event queue, transport and RNG state have been "
                "consumed; create a fresh Simulator (or use "
                "repro.workloads.runner.run_workload) for another simulation"
            )
        if len(programs) == 1:
            programs = list(programs) * self.nprocs
        if len(programs) != self.nprocs:
            raise ValueError(
                f"expected 1 or {self.nprocs} program factories, got {len(programs)}"
            )
        # Mark consumed only after argument validation: a bad ``programs``
        # list must not brick the instance with a misleading single-use error.
        self._started = True

        self._ranks = []
        for rank, factory in enumerate(programs):
            ctx = RankContext(
                rank=rank,
                size=self.nprocs,
                comm=Communicator(rank=rank, size=self.nprocs),
                rng=SeededRNG(self.seed, "rank", rank),
            )
            program = factory(ctx)
            if isinstance(program, CompiledProgram):
                # Op-array fast lane: unpack the schedule lanes onto the
                # state so the per-op decode is one attribute load per lane.
                state = RankState(rank=rank, generator=None)
                state.compiled = program
                lanes = program.lanes
                state.cp_len = len(lanes.op)
                state.cp_op = lanes.op
                state.cp_a = lanes.a
                state.cp_nbytes = lanes.nbytes
                state.cp_tag = lanes.tag
                state.cp_seconds = lanes.seconds
                state.cp_kind = lanes.kind
                state.cp_pending = []
            elif hasattr(program, "send"):
                state = RankState(rank=rank, generator=program)
                state.resume_fn = program.send
            else:
                raise ProgramError(
                    f"program factory for rank {rank} returned neither a "
                    f"generator nor a CompiledProgram: {program!r}"
                )
            self._ranks.append(state)

        if self.engine == "parallel":
            reason = self._parallel_fallback_reason()
            if reason is None:
                from repro.sim.partition import run_partitioned

                return run_partitioned(self)
            # Ineligible configuration: run in-process (bit-identical by
            # construction) and record why the partitioned path disengaged,
            # plus the resolved worker count (auto-tuned when 0 was passed).
            self.parallel_info = {"fallback": reason, "engine_jobs": self.engine_jobs}

        self._done_count = 0
        for state in self._ranks:
            self.schedule_step(0.0, state, None)

        compiled_count = sum(1 for s in self._ranks if s.compiled is not None)
        use_vectorised = compiled_count > 0 and (
            self.engine == "vectorised"
            or (
                self.engine in ("auto", "parallel")
                and compiled_count >= _VECTOR_MIN_RANKS
            )
        )
        if use_vectorised:
            self._build_lane_arena()

        # The run allocates ~15 short-lived objects per simulated message and
        # creates no reference cycles of its own; pausing the cyclic collector
        # avoids hundreds of pointless young-generation scans.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            if use_vectorised:
                self._run_loop_vectorised()
            else:
                self._run_loop()
        finally:
            if gc_was_enabled:
                gc.enable()

        if self._done_count != self.nprocs:
            blocked = [s.rank for s in self._ranks if s.status is RankStatus.BLOCKED]
            detail = f"pending queues: {self.transport.pending_counts()}"
            raise DeadlockError(blocked, detail)

        if self.tracer is not None:
            self.tracer.finalize()
        return SimulationResult(
            nprocs=self.nprocs,
            makespan=max((s.now for s in self._ranks), default=0.0),
            rank_finish_times=[s.now for s in self._ranks],
            events_processed=self._queue.events_processed,
            stats=self.transport.stats,
            tracer=self.tracer,
            buffer_stats=self.transport.buffer_stats(),
            fault_stats=self.faults.counters() if self.faults is not None else None,
            parallel_info=self.parallel_info,
        )

    def _parallel_fallback_reason(self) -> str | None:
        """Why ``engine="parallel"`` cannot partition this run (None = it can).

        The conservative protocol requires a positive lookahead (the minimum
        network latency), a partition-safe network (no jitter, contention or
        probabilistic drops — their shared RNG/state draws are ordered by the
        global event sequence, which no partition sees), a partition-safe
        flow-control policy (eager decisions must not read receiver-side
        state across the partition boundary), compiled rank programs (the
        windowed drain is the vectorised loop) and a ``fork`` start method
        (workers inherit the fully-built simulator by address).
        """
        if self.engine_jobs < 2:
            return "engine_jobs < 2"
        if self.nprocs < self.engine_jobs:
            return f"fewer ranks ({self.nprocs}) than partitions ({self.engine_jobs})"
        if any(s.compiled is None for s in self._ranks):
            return "generator rank programs (windowed drain needs compiled lanes)"
        if self.network.min_latency() <= 0.0:
            return "zero minimum network latency (no conservative lookahead)"
        if not self.network.partition_safe:
            return "network model draws shared jitter/contention/drop state"
        if not getattr(self.transport.policy, "partition_safe", False):
            return (
                f"flow-control policy {type(self.transport.policy).__name__} "
                "reads receiver state on the send path"
            )
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            return "fork start method unavailable on this platform"
        return None

    def _run_loop(self) -> None:
        """Drain the event queue in ``(time, seq)`` order until empty.

        The loop streams through each timestamp cohort record by record,
        coalescing every run of consecutive deliveries bound for one receiver
        into a single :meth:`Transport.deliver_burst` call — equivalent to
        draining :meth:`EventQueue.pop_batch` cohorts, but without
        materialising a batch list for the (overwhelmingly common)
        single-event cohort.

        The pop/peek logic of :meth:`EventQueue.pop` /
        :meth:`EventQueue.peek_record` is inlined here (mirroring those
        methods exactly, counters included): this loop runs once per simulated
        event and the method-call overhead alone is measurable.
        """
        queue = self._queue
        heap = queue._heap
        fast = queue._fast
        heappop = _heappop
        deliver_burst = self.transport.deliver_burst
        max_events = self.max_events
        wall_deadline = (
            _monotonic() + self.max_wall_seconds
            if self.max_wall_seconds is not None
            else None
        )
        step = self._step
        step_compiled = self._step_compiled
        current = self.time
        while True:
            # -- inline EventQueue.pop ---------------------------------
            if fast:
                if heap and heap[0] < fast[0]:
                    record = heappop(heap)
                else:
                    record = fast.popleft()
            elif heap:
                record = heappop(heap)
            else:
                return
            if record[EV_CANCELLED]:
                continue
            record[EV_POPPED] = True
            queue._live -= 1
            queue._popped += 1
            queue._now = time = record[EV_TIME]
            # ----------------------------------------------------------
            if time > current:
                self.time = current = time
            elif time < current - 1e-9:
                raise SimulationError(
                    f"time went backwards: event at {time} after {current}"
                )
            kind = record[EV_KIND]
            if kind == EVENT_STEP:
                state = record[EV_A]
                if state.compiled is None:
                    step(state, record[EV_B])
                else:
                    step_compiled(state)
            elif kind == EVENT_DELIVER:
                message = record[EV_A]
                # -- inline EventQueue.peek_record ---------------------
                while heap and heap[0][EV_CANCELLED]:
                    heappop(heap)
                while fast and fast[0][EV_CANCELLED]:
                    fast.popleft()
                if fast and not (heap and heap[0] < fast[0]):
                    nxt = fast[0]
                elif heap:
                    nxt = heap[0]
                else:
                    nxt = None
                # ------------------------------------------------------
                if (
                    nxt is not None
                    and nxt[EV_TIME] == time
                    and nxt[EV_KIND] == EVENT_DELIVER
                    and nxt[EV_A].dst == message.dst
                ):
                    # Same-timestamp burst at one receiver: collect the whole
                    # consecutive run before handing it to the transport.
                    burst = [(message, record[EV_B])]
                    dst = message.dst
                    pop = queue.pop
                    peek = queue.peek_record
                    while (
                        nxt is not None
                        and nxt[EV_TIME] == time
                        and nxt[EV_KIND] == EVENT_DELIVER
                        and nxt[EV_A].dst == dst
                    ):
                        pop()
                        burst.append((nxt[EV_A], nxt[EV_B]))
                        nxt = peek()
                    deliver_burst(burst, time)
                else:
                    deliver_burst(((message, record[EV_B]),), time)
            else:
                record[EV_A]()
            if max_events is not None and queue._popped > max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}; "
                    "the workload is larger than expected or the simulation is livelocked"
                )
            if (
                wall_deadline is not None
                and not (queue._popped & 1023)
                and _monotonic() > wall_deadline
            ):
                raise TimeLimitExceeded(
                    f"exceeded max_wall_seconds={self.max_wall_seconds:g}; "
                    "the simulation is livelocked or far larger than expected"
                )

    # ------------------------------------------------------------------
    # Vectorised drain (cohort batching over compiled op lanes)
    # ------------------------------------------------------------------
    def _build_lane_arena(self, local_ranks=None) -> None:
        """Concatenate every compiled rank's lane columns into flat arrays.

        Each compiled rank's :meth:`OpArrays.columns` block lands at offset
        ``state.cp_base``, so the global index of rank *r*'s next op is
        ``r.cp_base + r.cp_cursor`` — one fancy-indexed gather pulls a whole
        cohort's op codes (or peers, sizes, tags, seconds) at once.  The
        fields are copied out to contiguous per-lane arrays: gathers on a
        structured-array field view stride 40 bytes per element.

        ``local_ranks`` restricts the arena to one partition's ranks (the
        parallel engine's workers only ever step their own ranks, so the
        other blocks' columns would be dead weight in every cache line).
        """
        chunks = []
        offset = 0
        for state in self._ranks:
            if state.compiled is None:
                continue
            if local_ranks is not None and state.rank not in local_ranks:
                continue
            cols = state.compiled.lanes.columns()
            state.cp_base = offset
            offset += len(cols)
            chunks.append(cols)
        arena = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
        self._arena_op = np.ascontiguousarray(arena["op"])
        self._arena_a = np.ascontiguousarray(arena["a"])
        self._arena_nbytes = np.ascontiguousarray(arena["nbytes"])
        self._arena_tag = np.ascontiguousarray(arena["tag"])
        self._arena_seconds = np.ascontiguousarray(arena["seconds"])

    def _run_loop_vectorised(self, until: float | None = None) -> None:
        """The cohort-batching twin of :meth:`_run_loop`.

        Identical drain order and side effects, with one addition: a run of
        *consecutive* same-timestamp step records for compiled ranks (and any
        ``EVENT_STEP_BATCH`` records, which only this loop creates) is
        collected into a cohort and handed to :meth:`_exec_cohort`, which
        executes same-op segments with one vectorised transport call instead
        of one call per rank.  Consecutiveness is what preserves global
        ``(time, seq)`` order: collection stops at the first record of any
        other kind, so nothing is ever reordered across a delivery, callback
        or generator-rank step.  Cohorts below ``_VECTOR_MIN_COHORT`` fall
        back to the scalar :meth:`_step_compiled` per rank.

        ``until`` bounds one conservative window of the parallel engine: the
        loop returns as soon as the next live event lies at or beyond it
        (leaving that event queued), so a partition drains exactly the
        events with ``time < until``.  ``None`` (every in-process run)
        drains to an empty queue.
        """
        queue = self._queue
        heap = queue._heap
        fast = queue._fast
        heappop = _heappop
        deliver_cohort = self.transport.deliver_cohort
        max_events = self.max_events
        wall_deadline = (
            _monotonic() + self.max_wall_seconds
            if self.max_wall_seconds is not None
            else None
        )
        step = self._step
        step_compiled = self._step_compiled
        exec_cohort = self._exec_cohort
        min_cohort = _VECTOR_MIN_COHORT
        current = self.time
        while True:
            if until is not None:
                # Window bound (parallel engine): peek the next live record
                # (cancelled heads purged exactly as EventQueue.peek_record
                # does) and stop before popping anything at/after ``until``.
                while heap and heap[0][EV_CANCELLED]:
                    heappop(heap)
                while fast and fast[0][EV_CANCELLED]:
                    fast.popleft()
                if fast and not (heap and heap[0] < fast[0]):
                    if fast[0][EV_TIME] >= until:
                        return
                elif heap:
                    if heap[0][EV_TIME] >= until:
                        return
                else:
                    return
            # -- inline EventQueue.pop (batch-aware) --------------------
            if fast:
                if heap and heap[0] < fast[0]:
                    record = heappop(heap)
                else:
                    record = fast.popleft()
            elif heap:
                record = heappop(heap)
            else:
                return
            if record[EV_CANCELLED]:
                continue
            record[EV_POPPED] = True
            kind = record[EV_KIND]
            if kind >= EVENT_STEP_BATCH:  # the two batch kinds
                n = len(record[EV_A])
                queue._live -= n
                queue._popped += n
            else:
                queue._live -= 1
                queue._popped += 1
            queue._now = time = record[EV_TIME]
            # ----------------------------------------------------------
            if time > current:
                self.time = current = time
            elif time < current - 1e-9:
                raise SimulationError(
                    f"time went backwards: event at {time} after {current}"
                )
            cohort = None
            if kind == EVENT_STEP:
                state = record[EV_A]
                if state.compiled is None:
                    step(state, record[EV_B])
                else:
                    cohort = [state]
            elif kind == EVENT_STEP_BATCH:
                cohort = list(record[EV_A])
            elif kind == EVENT_DELIVER or kind == EVENT_DELIVER_BATCH:
                # Collect the whole consecutive same-time run of deliveries —
                # any destination, batch records inlined — then hand the run
                # to one deliver_cohort call, which processes the exact
                # per-message order the scalar drain would.  Deliveries never
                # push records that could sort before the remaining delivery
                # records (anything pushed at this timestamp gets a later
                # sequence number), so collecting the run up front preserves
                # the scalar execution order.
                if kind == EVENT_DELIVER:
                    items = [(record[EV_A], record[EV_B])]
                else:
                    items = record[EV_A]
                while True:
                    while heap and heap[0][EV_CANCELLED]:
                        heappop(heap)
                    while fast and fast[0][EV_CANCELLED]:
                        fast.popleft()
                    use_fast = fast and not (heap and heap[0] < fast[0])
                    if use_fast:
                        nxt = fast[0]
                    elif heap:
                        nxt = heap[0]
                    else:
                        break
                    if nxt[EV_TIME] != time:
                        break
                    nk = nxt[EV_KIND]
                    if nk == EVENT_DELIVER:
                        items.append((nxt[EV_A], nxt[EV_B]))
                        queue._live -= 1
                        queue._popped += 1
                    elif nk == EVENT_DELIVER_BATCH:
                        items.extend(nxt[EV_A])
                        k = len(nxt[EV_A])
                        queue._live -= k
                        queue._popped += k
                    else:
                        break
                    if use_fast:
                        fast.popleft()
                    else:
                        heappop(heap)
                    nxt[EV_POPPED] = True
                deliver_cohort(items, time)
            else:
                record[EV_A]()
            if cohort is not None:
                # Extend the cohort with the consecutive run of same-time
                # compiled step (or batch) records behind the one just
                # popped.  The pop below mirrors EventQueue.pop for the
                # record peeked at, cancelled heads purged first.
                while True:
                    while heap and heap[0][EV_CANCELLED]:
                        heappop(heap)
                    while fast and fast[0][EV_CANCELLED]:
                        fast.popleft()
                    use_fast = fast and not (heap and heap[0] < fast[0])
                    if use_fast:
                        nxt = fast[0]
                    elif heap:
                        nxt = heap[0]
                    else:
                        break
                    if nxt[EV_TIME] != time:
                        break
                    nk = nxt[EV_KIND]
                    if nk == EVENT_STEP:
                        s = nxt[EV_A]
                        if s.compiled is None:
                            break
                        cohort.append(s)
                        queue._live -= 1
                        queue._popped += 1
                    elif nk == EVENT_STEP_BATCH:
                        cohort.extend(nxt[EV_A])
                        k = len(nxt[EV_A])
                        queue._live -= k
                        queue._popped += k
                    else:
                        break
                    if use_fast:
                        fast.popleft()
                    else:
                        heappop(heap)
                    nxt[EV_POPPED] = True
                if len(cohort) >= min_cohort:
                    exec_cohort(cohort)
                else:
                    for s in cohort:
                        step_compiled(s)
            if max_events is not None and queue._popped > max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}; "
                    "the workload is larger than expected or the simulation is livelocked"
                )
            if (
                wall_deadline is not None
                and not (queue._popped & 1023)
                and _monotonic() > wall_deadline
            ):
                raise TimeLimitExceeded(
                    f"exceeded max_wall_seconds={self.max_wall_seconds:g}; "
                    "the simulation is livelocked or far larger than expected"
                )

    def _exec_cohort(self, states: list[RankState]) -> None:
        """Execute one timestamp cohort of compiled-rank steps, batched.

        The cohort is walked in popped (``seq``) order and split into runs of
        consecutive states whose next op has the same code; each vectorisable
        run (compute without a stall fault, isend, irecv) executes through
        one batch handler, everything else falls back to per-rank
        :meth:`_step_compiled`.  Segment-by-segment execution in cohort order
        makes every side effect — transport calls, RNG draws, event pushes —
        happen in exactly the scalar loop's order, so outputs stay
        bit-identical.

        Reading every state's cursor up front (before any segment executes)
        is safe: cohort members are READY, so no segment's transport activity
        can complete a blocked wait and move another member's cursor.
        """
        self.vector_cohorts += 1
        step_compiled = self._step_compiled
        segments = []
        seg = None
        seg_code = -1
        for s in states:
            if s.status is _DONE:
                raise SimulationError(f"rank {s.rank} stepped after completion")
            i = s.cp_cursor
            if i >= s.cp_len:
                # Past the last op: the generator path's StopIteration.
                # (Retiring a rank pushes nothing, so it never splits a
                # segment.)
                s.steps += 1
                s.status = _DONE
                self._done_count += 1
                continue
            code = s.cp_op[i]
            if seg is not None and code == seg_code:
                seg.append(s)
            else:
                seg = [s]
                seg_code = code
                segments.append((code, seg))
        fault_stall = self._fault_stall
        for code, seg in segments:
            if len(seg) < 2:
                step_compiled(seg[0])
            elif code == OP_COMPUTE and fault_stall is None:
                self._vec_compute(seg)
            elif code == OP_ISEND:
                self._vec_isend(seg)
            elif code == OP_IRECV:
                self._vec_irecv(seg)
            elif code == OP_WAITALL:
                self._vec_waitall(seg)
            else:
                for s in seg:
                    step_compiled(s)

    def _push_segment_steps(self, seg: list[RankState], times: list[float]) -> None:
        """Push the next-step records for an executed segment.

        When every state steps again at the same timestamp (the common case
        in lockstep phases), one ``EVENT_STEP_BATCH`` record stands in for
        the whole segment — the sequence counter still advances by the
        segment size, so later pushes sort after the batch exactly as they
        would after the individual records.  Otherwise the records are pushed
        individually in segment order, mirroring ``EventQueue.push_typed``
        like every other inlined push in this module.
        """
        queue = self._queue
        n = len(times)
        t0 = times[0]
        batch = True
        for j in range(1, n):
            if times[j] != t0:
                batch = False
                break
        fast = queue._fast
        if batch:
            seq = queue._seq
            queue._seq = seq + n
            record = [t0, seq, EVENT_STEP_BATCH, seg, None, False, False]
            queue._live += n
            if t0 == queue._now and (not fast or fast[-1][EV_TIME] == t0):
                fast.append(record)
            else:
                _heappush(queue._heap, record)
            return
        for j, s in enumerate(seg):
            t = times[j]
            seq = queue._seq
            queue._seq = seq + 1
            record = [t, seq, EVENT_STEP, s, None, False, False]
            queue._live += 1
            if t == queue._now and (not fast or fast[-1][EV_TIME] == t):
                fast.append(record)
            else:
                _heappush(queue._heap, record)

    def _vec_compute(self, seg: list[RankState]) -> None:
        """Advance a segment of compute ops with one vector expression.

        Bit-identity with the scalar branch relies on IEEE basics: the
        unflagged lanes multiply by exactly 1.0 (``x * 1.0 == x``), flagged
        lanes multiply by the same per-rank noise draw the scalar path would
        take (drawn here in segment order = rank stream order), and
        float64 ``+``/``maximum`` are the same operations ``state.now +
        seconds`` and the push clamp perform.  Small segments skip the numpy
        gather and read the list lanes like the scalar path (with the loop
        locals hoisted); both variants share the batched record push.
        """
        n = len(seg)
        sim_time = self.time
        if n < _VECTOR_GATHER_MIN:
            times = []
            append = times.append
            for s in seg:
                s.steps += 1
                i = s.cp_cursor
                s.cp_cursor = i + 1
                seconds = s.cp_seconds[i]
                if s.cp_a[i]:
                    seconds *= s.compiled.next_noise()
                s.now = t = s.now + seconds
                append(t if t > sim_time else sim_time)
            self._push_segment_steps(seg, times)
            return
        idx = np.fromiter(
            (s.cp_base + s.cp_cursor for s in seg), dtype=np.int64, count=n
        )
        secs = self._arena_seconds[idx]
        flags = self._arena_a[idx]
        if flags.any():
            factors = np.ones(n, dtype=np.float64)
            flag_list = flags.tolist()
            for j, s in enumerate(seg):
                if flag_list[j]:
                    factors[j] = s.compiled.next_noise()
            secs = secs * factors
        nows = np.fromiter((s.now for s in seg), dtype=np.float64, count=n)
        new_nows = (nows + secs).tolist()
        event_times = np.maximum(new_nows, sim_time).tolist()
        for j, s in enumerate(seg):
            s.steps += 1
            s.cp_cursor += 1
            s.now = new_nows[j]
        self._push_segment_steps(seg, event_times)

    def _vec_isend(self, seg: list[RankState]) -> None:
        """Post a segment of isends through one transport burst call."""
        n = len(seg)
        if n < _VECTOR_GATHER_MIN:
            ranks = []
            dsts = []
            nbytes_list = []
            tags = []
            kinds = []
            nows = []
            for s in seg:
                i = s.cp_cursor
                ranks.append(s.rank)
                dsts.append(s.cp_a[i])
                nbytes_list.append(s.cp_nbytes[i])
                tags.append(s.cp_tag[i])
                kinds.append(s.cp_kind[i])
                nows.append(s.now)
        else:
            idx = np.fromiter(
                (s.cp_base + s.cp_cursor for s in seg), dtype=np.int64, count=n
            )
            dsts = self._arena_a[idx].tolist()
            nbytes_list = self._arena_nbytes[idx].tolist()
            tags = self._arena_tag[idx].tolist()
            ranks = []
            kinds = []
            nows = []
            for s in seg:
                ranks.append(s.rank)
                kinds.append(s.cp_kind[s.cp_cursor])
                nows.append(s.now)
        requests = self.transport.post_send_burst(
            ranks, dsts, nbytes_list, tags, kinds, nows
        )
        send_overhead = self.machine.send_overhead
        sim_time = self.time
        times = []
        append = times.append
        for j, s in enumerate(seg):
            s.steps += 1
            s.cp_cursor += 1
            s.cp_pending.append(requests[j])
            s.now = t = s.now + send_overhead
            append(t if t > sim_time else sim_time)
        self._push_segment_steps(seg, times)

    def _vec_irecv(self, seg: list[RankState]) -> None:
        """Post a segment of irecvs through one transport burst call."""
        n = len(seg)
        if n < _VECTOR_GATHER_MIN:
            ranks = []
            sources = []
            tags = []
            kinds = []
            nows = []
            for s in seg:
                i = s.cp_cursor
                ranks.append(s.rank)
                sources.append(s.cp_a[i])
                tags.append(s.cp_tag[i])
                kinds.append(s.cp_kind[i])
                nows.append(s.now)
        else:
            idx = np.fromiter(
                (s.cp_base + s.cp_cursor for s in seg), dtype=np.int64, count=n
            )
            sources = self._arena_a[idx].tolist()
            tags = self._arena_tag[idx].tolist()
            ranks = []
            kinds = []
            nows = []
            for s in seg:
                ranks.append(s.rank)
                kinds.append(s.cp_kind[s.cp_cursor])
                nows.append(s.now)
        requests = self.transport.post_recv_burst(ranks, sources, tags, kinds, nows)
        sim_time = self.time
        times = []
        append = times.append
        for j, s in enumerate(seg):
            s.steps += 1
            s.cp_cursor += 1
            s.cp_pending.append(requests[j])
            t = s.now
            append(t if t > sim_time else sim_time)
        self._push_segment_steps(seg, times)

    def _vec_waitall(self, seg: list[RankState]) -> None:
        """Retire a segment of waitall ops whose requests have all completed.

        The scalar waitall branch routes through :meth:`_block_on` /
        :meth:`_resume` even when nothing is pending, paying a per-rank
        resume-record push.  Here the already-complete ranks (the common case
        once a delivery burst has drained before the waitall cohort) take the
        resume bookkeeping inline — same clock advance, same freelist release
        order, same ``None`` step value — and share one batched record push.
        Ranks with requests still in flight fall back to the exact scalar
        call, which pushes nothing now, so the records of the completed ranks
        keep the same relative sequence order the scalar loop would produce.
        """
        # Every request released below was just verified complete, so it goes
        # back to the freelist directly — release_request's guard would only
        # re-check that — in the order release_request would append.
        release = self.transport._request_pool.append
        sim_time = self.time
        batch: list[RankState] = []
        times: list[float] = []
        for s in seg:
            s.steps += 1
            s.cp_cursor += 1
            requests = s.cp_pending
            s.cp_pending = []
            complete = True
            for r in requests:
                if not r.completed:
                    complete = False
                    break
            if not complete:
                self._block_on(s, requests, _result_none, "waitall", recycle=True)
                continue
            completion = s.now
            for r in requests:
                ct = r.completion_time
                if ct > completion:
                    completion = ct
            s.now = completion
            for r in requests:
                release(r)
            batch.append(s)
            times.append(completion if completion > sim_time else sim_time)
        if batch:
            self._push_segment_steps(batch, times)

    # ------------------------------------------------------------------
    # Rank stepping
    # ------------------------------------------------------------------
    def _step(self, state: RankState, value: object) -> None:
        """Resume one rank's generator with ``value`` and dispatch its next op.

        ``state.status`` is already READY here: ranks start READY, stay READY
        across non-blocking resumptions, and :meth:`_resume` restores READY
        when a blocking operation completes.

        The loop exists for first-class collectives: yielding a
        :class:`CollectiveOp` re-targets ``resume_fn`` at the collective's
        decomposition generator (:meth:`_op_collective`) and the *same* step
        event keeps driving it, exactly as ``yield from`` would — the macro
        itself consumes no events, so the two spellings are bit-identical.
        Likewise, a finished decomposition resumes the suspended outer frame
        with its return value within the same event (mirroring how
        ``yield from`` propagates ``StopIteration.value``).
        """
        if state.status is _DONE:
            raise SimulationError(f"rank {state.rank} stepped after completion")
        state.steps += 1
        resume = state.resume_fn
        while True:
            try:
                operation = resume(value)
            except StopIteration as stop:
                gen_stack = state.gen_stack
                if gen_stack:
                    resume = state.resume_fn = gen_stack.pop()
                    value = stop.value
                    continue
                state.status = _DONE
                self._done_count += 1
                return
            except Exception:
                state.status = _FAILED
                raise
            handler = self._op_table.get(operation.__class__)
            if handler is None:
                handler = self._resolve_handler(state, operation)
            if handler(state, operation):
                # Collective macro expanded: drive the decomposition now.
                resume = state.resume_fn
                value = None
                continue
            return

    def _step_compiled(self, state: RankState) -> None:
        """Execute the next op of a compiled (op-array) rank program.

        One op per step event, exactly like the generator path executes one
        yielded operation per resumption: the compiled lane changes *how* an
        op is decoded (lane loads instead of a generator resumption, an
        operation allocation and communicator validation), never *when* it
        executes, so event counts, timings and transport call order — and
        therefore all simulation outputs — are bit-identical.  Lane values
        were validated at compile time and are trusted here.

        The inlined event pushes mirror ``EventQueue.push_typed`` exactly,
        as in the generator-path handlers above.
        """
        if state.status is _DONE:
            raise SimulationError(f"rank {state.rank} stepped after completion")
        state.steps += 1
        i = state.cp_cursor
        if i >= state.cp_len:
            # Past the last op: the generator path's StopIteration.
            state.status = _DONE
            self._done_count += 1
            return
        state.cp_cursor = i + 1
        code = state.cp_op[i]
        # The three non-blocking op kinds fall through to one shared
        # next-step push below; the blocking kinds return out of their
        # branch after suspending the rank.
        if code == OP_COMPUTE:
            seconds = state.cp_seconds[i]
            if state.cp_a[i]:
                seconds *= state.compiled.next_noise()
            if self._fault_stall is not None:
                seconds += self._fault_stall(state.rank)
            state.now = time = state.now + seconds
        elif code == OP_IRECV:
            request = self.transport.post_recv_values(
                state.rank, state.cp_a[i], state.cp_tag[i], state.cp_kind[i], state.now
            )
            state.cp_pending.append(request)
            time = state.now
        elif code == OP_ISEND:
            request = self.transport.post_send_values(
                state.rank,
                state.cp_a[i],
                state.cp_nbytes[i],
                state.cp_tag[i],
                state.cp_kind[i],
                None,
                state.now,
            )
            state.cp_pending.append(request)
            state.now = time = state.now + self.machine.send_overhead
        elif code == OP_WAITALL:
            # Compiled pending requests never escape to a program, so unlike
            # the generator path's waitall they can all be recycled.
            requests = state.cp_pending
            state.cp_pending = []
            self._block_on(state, requests, _result_none, "waitall", recycle=True)
            return
        elif code == OP_WAIT:
            # Wait for a contiguous slice of the pending list (offset in the
            # ``a`` lane, count in the ``nbytes`` lane): how the compiler
            # lowers nonblocking-collective composites and partial waitalls.
            offset = state.cp_a[i]
            stop = offset + state.cp_nbytes[i]
            pending = state.cp_pending
            requests = pending[offset:stop]
            del pending[offset:stop]
            self._block_on(state, requests, _result_none, "wait", recycle=True)
            return
        elif code == OP_RECV:
            request = self.transport.post_recv_values(
                state.rank, state.cp_a[i], state.cp_tag[i], state.cp_kind[i], state.now
            )
            self._block_on(state, [request], _result_none, "recv", recycle=True)
            return
        else:  # OP_SEND
            request = self.transport.post_send_values(
                state.rank,
                state.cp_a[i],
                state.cp_nbytes[i],
                state.cp_tag[i],
                state.cp_kind[i],
                None,
                state.now,
            )
            self._block_on(state, [request], _result_none, "send", recycle=True)
            return
        # Shared next-step push (inline of EventQueue.push_typed, as in the
        # generator-path handlers).
        if time < self.time:
            time = self.time
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        record = [time, seq, EVENT_STEP, state, None, False, False]
        queue._live += 1
        fast = queue._fast
        if time == queue._now and (not fast or fast[-1][EV_TIME] == time):
            fast.append(record)
        else:
            _heappush(queue._heap, record)

    def _resolve_handler(self, state: RankState, operation) -> Callable:
        """Slow path: find (and cache) the handler for an Operation subclass."""
        for base in type(operation).__mro__:
            handler = self._op_table.get(base)
            if handler is not None:
                self._op_table[type(operation)] = handler
                return handler
        raise ProgramError(
            f"rank {state.rank} yielded an unsupported operation: {operation!r}"
        )

    # ------------------------------------------------------------------
    # Per-operation handlers (dispatched via the handler table)
    # ------------------------------------------------------------------
    # The three non-blocking handlers below inline the body of
    # ``EventQueue.push_typed`` (mirrored exactly, minus the negative-time
    # check their clamp makes redundant): scheduling a step is the single
    # most frequent operation of a simulation and the call overhead alone is
    # measurable.

    def _op_compute(self, state: RankState, op: ComputeOp) -> None:
        if op.seconds < 0:
            raise ProgramError(f"rank {state.rank} yielded a negative compute time")
        seconds = op.seconds
        if self._fault_stall is not None:
            seconds += self._fault_stall(state.rank)
        state.now = time = state.now + seconds
        if time < self.time:
            time = self.time
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        record = [time, seq, EVENT_STEP, state, None, False, False]
        queue._live += 1
        fast = queue._fast
        if time == queue._now and (not fast or fast[-1][EV_TIME] == time):
            fast.append(record)
        else:
            _heappush(queue._heap, record)

    def _op_send(self, state: RankState, op: SendOp) -> None:
        request = self.transport.post_send(state.rank, op, state.now)
        self._block_on(state, [request], _result_none, "send", recycle=True)

    def _op_isend(self, state: RankState, op: IsendOp) -> None:
        request = self.transport.post_send(state.rank, op, state.now)
        state.now = time = state.now + self.machine.send_overhead
        if time < self.time:
            time = self.time
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        record = [time, seq, EVENT_STEP, state, request, False, False]
        queue._live += 1
        fast = queue._fast
        if time == queue._now and (not fast or fast[-1][EV_TIME] == time):
            fast.append(record)
        else:
            _heappush(queue._heap, record)

    def _op_recv(self, state: RankState, op: RecvOp) -> None:
        request = self.transport.post_recv(state.rank, op, state.now)
        self._block_on(state, [request], _result_first_status, "recv", recycle=True)

    def _op_irecv(self, state: RankState, op: IrecvOp) -> None:
        request = self.transport.post_recv(state.rank, op, state.now)
        time = state.now
        if time < self.time:
            time = self.time
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        record = [time, seq, EVENT_STEP, state, request, False, False]
        queue._live += 1
        fast = queue._fast
        if time == queue._now and (not fast or fast[-1][EV_TIME] == time):
            fast.append(record)
        else:
            _heappush(queue._heap, record)

    def _op_collective(self, state: RankState, op: CollectiveOp) -> bool:
        """Expand a first-class collective into its decomposition generator.

        Pushes the current frame and re-targets ``resume_fn`` at the
        decomposition; returning True tells :meth:`_step` to keep driving
        the same event, so the macro consumes no events of its own.
        """
        gen_stack = state.gen_stack
        if gen_stack is None:
            gen_stack = state.gen_stack = []
        gen_stack.append(state.resume_fn)
        state.resume_fn = decomposition_for(op, state.rank, self.nprocs).send
        return True

    def _op_wait(self, state: RankState, op: WaitOp) -> None:
        request = op.request
        result_fn = _result_first_status if request.op_kind == "recv" else _result_none
        self._block_on(state, [request], result_fn, "wait")

    def _op_waitall(self, state: RankState, op: WaitallOp) -> None:
        requests = op.requests
        if type(requests) is not list:
            requests = list(requests)
        self._block_on(state, requests, _result_all_statuses, "waitall")

    # ------------------------------------------------------------------
    def _block_on(
        self,
        state: RankState,
        requests: list[Request],
        result_fn: Callable[[list[Request]], object],
        why: str,
        recycle: bool = False,
    ) -> None:
        """Suspend ``state`` until every request in ``requests`` has completed.

        ``recycle`` is set only for blocking send/recv: those request handles
        are engine-internal (the program receives ``None`` or a ``Status``,
        never the request), so they can be returned to the transport freelist
        once the rank has resumed.  Requests reached through wait/waitall are
        program-held and must never be recycled.
        """
        state.status = _BLOCKED
        state.blocked_on = why
        pending = [r for r in requests if not r.completed]

        if not pending:
            # Everything already finished (e.g. an eager send completed at
            # posting, or a wait on long-done requests): resume without
            # allocating a completion closure.
            self._resume(state, requests, result_fn, recycle)
            return

        if len(pending) == 1:
            pending[0].add_callback(
                lambda _request: self._resume(state, requests, result_fn, recycle)
            )
            return

        remaining = [len(pending)]

        def on_complete(_request: Request) -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                self._resume(state, requests, result_fn, recycle)

        for request in pending:
            request.add_callback(on_complete)

    def _resume(
        self,
        state: RankState,
        requests: list[Request],
        result_fn: Callable[[list[Request]], object],
        recycle: bool = False,
    ) -> None:
        """Unblock ``state``: advance its clock and schedule the next step."""
        completion = state.now
        for request in requests:
            if request.completed and request.completion_time > completion:
                completion = request.completion_time
        state.now = completion
        state.status = _READY
        state.blocked_on = ""
        value = result_fn(requests)
        if recycle:
            # The result (None/Status) has been extracted; the blocking-op
            # request handles are dead and go back to the transport freelist.
            release = self.transport.release_request
            for request in requests:
                release(request)
        # Inline of EventQueue.push_typed, as in the non-blocking handlers.
        time = completion if completion > self.time else self.time
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        record = [time, seq, EVENT_STEP, state, value, False, False]
        queue._live += 1
        fast = queue._fast
        if time == queue._now and (not fast or fast[-1][EV_TIME] == time):
            fast.append(record)
        else:
            _heappush(queue._heap, record)
