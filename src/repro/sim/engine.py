"""The discrete-event simulation engine.

A *rank program* is a Python generator produced by calling a program factory
with a :class:`repro.mpi.communicator.RankContext`.  Each value the generator
yields is an MPI operation (:mod:`repro.mpi.ops`); the engine executes it
against the runtime transport and resumes the generator with the operation's
result once it completes in simulated time.

The engine owns the global event queue and each rank's local virtual clock.
Blocking operations suspend a rank until the transport completes the
corresponding request; non-blocking operations resume the rank immediately
(after the CPU overhead of posting) and hand back a request handle that can
be waited on later.  If the event queue drains while some ranks are still
blocked, the simulation is deadlocked and :class:`repro.sim.errors.DeadlockError`
is raised, listing the stuck ranks — the same failure a real MPI job would
hang on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Generator, Sequence

from repro.mpi.communicator import Communicator, RankContext
from repro.mpi.ops import (
    ComputeOp,
    IrecvOp,
    IsendOp,
    Operation,
    RecvOp,
    SendOp,
    WaitallOp,
    WaitOp,
)
from repro.mpi.request import Request
from repro.runtime.stats import RuntimeStats
from repro.runtime.transport import Transport
from repro.sim.errors import DeadlockError, ProgramError, SimulationError
from repro.sim.events import EventQueue
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkConfig, NetworkModel
from repro.trace.tracer import TwoLevelTracer
from repro.util.rng import SeededRNG

__all__ = ["Simulator", "SimulationResult", "RankState", "RankStatus"]

#: A program factory takes a rank context and returns the rank's generator.
ProgramFactory = Callable[[RankContext], Generator[Operation, object, None]]


class RankStatus(Enum):
    """Lifecycle state of one simulated rank."""

    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


@dataclass
class RankState:
    """Book-keeping for one simulated rank."""

    rank: int
    generator: Generator[Operation, object, None]
    now: float = 0.0
    status: RankStatus = RankStatus.READY
    steps: int = 0
    blocked_on: str = ""


@dataclass
class SimulationResult:
    """Everything a finished simulation exposes to the analysis layer."""

    nprocs: int
    makespan: float
    rank_finish_times: list[float]
    events_processed: int
    stats: RuntimeStats
    tracer: TwoLevelTracer | None
    buffer_stats: list = field(default_factory=list)

    def trace_for(self, rank: int):
        """Convenience accessor for one rank's :class:`ProcessTrace`."""
        if self.tracer is None:
            raise SimulationError("simulation was run without a tracer")
        return self.tracer.trace_for(rank)


class Simulator:
    """Drives a set of rank programs over the runtime transport.

    Parameters
    ----------
    nprocs:
        Number of ranks in the job.
    machine:
        Per-node cost model (defaults to :class:`MachineConfig`).
    network:
        Either a :class:`NetworkModel` or a :class:`NetworkConfig` (a model is
        built from it); defaults to the standard jittered network.
    tracer:
        A :class:`TwoLevelTracer`, or True to create one, or None/False for no
        tracing.
    policy:
        Flow-control policy forwarded to the transport.
    seed:
        Base seed for per-rank RNGs handed to the programs (compute-time noise
        in the workload skeletons).
    max_events:
        Safety limit on processed events; exceeding it raises
        :class:`SimulationError` (guards against runaway programs).
    """

    def __init__(
        self,
        nprocs: int,
        machine: MachineConfig | None = None,
        network: NetworkModel | NetworkConfig | None = None,
        tracer: TwoLevelTracer | bool | None = True,
        policy=None,
        seed: int = 12345,
        max_events: int | None = None,
    ) -> None:
        if nprocs <= 0:
            raise ValueError(f"nprocs must be positive, got {nprocs}")
        self.nprocs = nprocs
        self.machine = machine or MachineConfig()
        if network is None:
            network = NetworkConfig(seed=seed)
        if isinstance(network, NetworkConfig):
            network = NetworkModel(network)
        self.network = network
        if tracer is True:
            tracer = TwoLevelTracer(nprocs)
        elif tracer is False:
            tracer = None
        self.tracer = tracer
        self.seed = seed
        self.max_events = max_events
        self.transport = Transport(
            nprocs=nprocs,
            machine=self.machine,
            network=self.network,
            tracer=self.tracer,
            policy=policy,
        )
        self.transport.attach(self)
        self._queue = EventQueue()
        self._ranks: list[RankState] = []
        self.time = 0.0
        self._done_count = 0

    # ------------------------------------------------------------------
    # Scheduling interface (also used by the transport)
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        self._queue.push(max(time, self.time), callback)

    # ------------------------------------------------------------------
    # Running programs
    # ------------------------------------------------------------------
    def run(self, programs: Sequence[ProgramFactory]) -> SimulationResult:
        """Run one program factory per rank to completion.

        ``programs`` may contain a single factory (used for every rank, the
        SPMD style of all the paper's benchmarks) or exactly ``nprocs``
        factories.
        """
        if len(programs) == 1:
            programs = list(programs) * self.nprocs
        if len(programs) != self.nprocs:
            raise ValueError(
                f"expected 1 or {self.nprocs} program factories, got {len(programs)}"
            )

        self._ranks = []
        for rank, factory in enumerate(programs):
            ctx = RankContext(
                rank=rank,
                size=self.nprocs,
                comm=Communicator(rank=rank, size=self.nprocs),
                rng=SeededRNG(self.seed, "rank", rank),
            )
            generator = factory(ctx)
            if not hasattr(generator, "send"):
                raise ProgramError(
                    f"program factory for rank {rank} did not return a generator"
                )
            self._ranks.append(RankState(rank=rank, generator=generator))

        self._done_count = 0
        for state in self._ranks:
            self.schedule_at(0.0, lambda s=state: self._step(s, None))

        self._run_loop()

        if self._done_count != self.nprocs:
            blocked = [s.rank for s in self._ranks if s.status is RankStatus.BLOCKED]
            detail = f"pending queues: {self.transport.pending_counts()}"
            raise DeadlockError(blocked, detail)

        if self.tracer is not None:
            self.tracer.finalize()
        return SimulationResult(
            nprocs=self.nprocs,
            makespan=max((s.now for s in self._ranks), default=0.0),
            rank_finish_times=[s.now for s in self._ranks],
            events_processed=self._queue.events_processed,
            stats=self.transport.stats,
            tracer=self.tracer,
            buffer_stats=self.transport.buffer_stats(),
        )

    def _run_loop(self) -> None:
        while True:
            event = self._queue.pop()
            if event is None:
                return
            if event.time < self.time - 1e-9:
                raise SimulationError(
                    f"time went backwards: event at {event.time} after {self.time}"
                )
            self.time = max(self.time, event.time)
            event.callback()
            if self.max_events is not None and self._queue.events_processed > self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}; "
                    "the workload is larger than expected or the simulation is livelocked"
                )

    # ------------------------------------------------------------------
    # Rank stepping
    # ------------------------------------------------------------------
    def _step(self, state: RankState, value: object) -> None:
        """Resume one rank's generator with ``value`` and dispatch its next op."""
        if state.status is RankStatus.DONE:
            raise SimulationError(f"rank {state.rank} stepped after completion")
        state.status = RankStatus.READY
        state.steps += 1
        try:
            operation = state.generator.send(value)
        except StopIteration:
            state.status = RankStatus.DONE
            self._done_count += 1
            return
        except Exception:
            state.status = RankStatus.FAILED
            raise
        self._dispatch(state, operation)

    def _dispatch(self, state: RankState, operation: Operation) -> None:
        rank = state.rank
        if isinstance(operation, ComputeOp):
            if operation.seconds < 0:
                raise ProgramError(f"rank {rank} yielded a negative compute time")
            state.now += operation.seconds
            self.schedule_at(state.now, lambda: self._step(state, None))
        elif isinstance(operation, SendOp):
            request = self.transport.post_send(rank, operation, state.now)
            self._block_on(state, [request], lambda reqs: None, "send")
        elif isinstance(operation, IsendOp):
            request = self.transport.post_send(rank, operation, state.now)
            state.now += self.machine.send_overhead
            self.schedule_at(state.now, lambda: self._step(state, request))
        elif isinstance(operation, RecvOp):
            request = self.transport.post_recv(rank, operation, state.now)
            self._block_on(state, [request], lambda reqs: reqs[0].status, "recv")
        elif isinstance(operation, IrecvOp):
            request = self.transport.post_recv(rank, operation, state.now)
            self.schedule_at(state.now, lambda: self._step(state, request))
        elif isinstance(operation, WaitOp):
            request = operation.request
            result = (lambda reqs: reqs[0].status) if request.op_kind == "recv" else (lambda reqs: None)
            self._block_on(state, [request], result, "wait")
        elif isinstance(operation, WaitallOp):
            requests = list(operation.requests)
            self._block_on(
                state,
                requests,
                lambda reqs: [r.status for r in reqs],
                "waitall",
            )
        else:
            raise ProgramError(
                f"rank {rank} yielded an unsupported operation: {operation!r}"
            )

    def _block_on(
        self,
        state: RankState,
        requests: list[Request],
        result_fn: Callable[[list[Request]], object],
        why: str,
    ) -> None:
        """Suspend ``state`` until every request in ``requests`` has completed."""
        state.status = RankStatus.BLOCKED
        state.blocked_on = why
        pending = [r for r in requests if not r.completed]

        def resume() -> None:
            completion = max(
                [state.now] + [r.completion_time for r in requests if r.completed]
            )
            state.now = completion
            state.blocked_on = ""
            self.schedule_at(state.now, lambda: self._step(state, result_fn(requests)))

        if not pending:
            resume()
            return

        remaining = {"count": len(pending)}

        def on_complete(_request: Request) -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                resume()

        for request in pending:
            request.add_callback(on_complete)
