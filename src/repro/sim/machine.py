"""Per-node cost model and runtime protocol parameters.

The values loosely follow a LogGP-style decomposition of an early-2000s
IBM SP-class machine (the paper's testbed): a fixed per-message CPU overhead
on each side, a network latency, a per-byte cost, and an eager/rendezvous
protocol switch around 16 KB (the IBM MPI eager buffer size quoted in the
paper's Section 2.1).  Absolute values only matter relative to each other —
the paper never reports wall-clock numbers — so they are chosen to be
realistic in ratio: overhead << latency << large-message transfer time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.util.validation import check_non_negative, check_positive

__all__ = ["MachineConfig"]


@dataclass(frozen=True)
class MachineConfig:
    """Cost and protocol parameters for every simulated node.

    Attributes
    ----------
    send_overhead:
        CPU time (seconds) a rank spends initiating any send.
    recv_overhead:
        CPU time a rank spends completing any receive.
    eager_threshold:
        Messages of at most this many bytes use the eager protocol; larger
        ones use rendezvous (unless a predictive bypass is active).
    eager_buffer_bytes:
        Size of the per-peer eager buffer each rank pre-allocates for each
        other rank (16 KB in the IBM MPI implementation cited by the paper).
    preallocate_all_peers:
        If True (the default, mirroring standard MPI implementations), every
        rank allocates an eager buffer for every other rank at startup.  The
        predictive buffer manager turns this off and allocates on demand.
    control_message_bytes:
        Size used for rendezvous RTS/CTS control messages.
    rendezvous_handshake_cpu:
        CPU time spent by each side processing a rendezvous control message.
    unexpected_copy_bandwidth:
        Bytes/second for copying an unexpected eager message out of the
        receive buffer once the matching receive is finally posted.
    """

    send_overhead: float = 2.0e-6
    recv_overhead: float = 2.0e-6
    eager_threshold: int = 16 * 1024
    eager_buffer_bytes: int = 16 * 1024
    preallocate_all_peers: bool = True
    control_message_bytes: int = 64
    rendezvous_handshake_cpu: float = 1.0e-6
    unexpected_copy_bandwidth: float = 2.0e9

    def __post_init__(self) -> None:
        check_non_negative("send_overhead", self.send_overhead)
        check_non_negative("recv_overhead", self.recv_overhead)
        check_non_negative("eager_threshold", self.eager_threshold)
        check_positive("eager_buffer_bytes", self.eager_buffer_bytes)
        check_positive("control_message_bytes", self.control_message_bytes)
        check_non_negative("rendezvous_handshake_cpu", self.rendezvous_handshake_cpu)
        check_positive("unexpected_copy_bandwidth", self.unexpected_copy_bandwidth)

    def with_overrides(self, **kwargs) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def protocol_for_size(self, nbytes: int) -> str:
        """Return the default protocol ("eager" or "rendezvous") for a size."""
        return "eager" if nbytes <= self.eager_threshold else "rendezvous"
