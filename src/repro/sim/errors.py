"""Exception types raised by the simulation substrate."""

from __future__ import annotations

__all__ = [
    "SimulationError",
    "DeadlockError",
    "ConfigurationError",
    "ProgramError",
    "TimeLimitExceeded",
]


class SimulationError(RuntimeError):
    """Base class for all simulator errors."""


class TimeLimitExceeded(SimulationError):
    """Raised when a run exceeds its ``max_wall_seconds`` safety budget.

    Unlike the (deterministic) ``max_events`` guard this depends on host
    speed, so the sweep engine treats it as *transient* and retries the cell;
    every other :class:`SimulationError` is deterministic and is not.
    """


class DeadlockError(SimulationError):
    """Raised when the event queue drains while some ranks are still blocked.

    This corresponds to a real MPI deadlock: every remaining rank is waiting
    on a message or handshake that can never arrive (for example, two ranks
    both blocked in a rendezvous send to each other with no matching receive
    posted).
    """

    def __init__(self, blocked_ranks: list[int], detail: str = "") -> None:
        self.blocked_ranks = list(blocked_ranks)
        message = f"simulation deadlocked; blocked ranks: {self.blocked_ranks}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class ConfigurationError(SimulationError, ValueError):
    """Raised for invalid simulator/workload configuration."""


class ProgramError(SimulationError):
    """Raised when a rank program yields something the engine cannot execute."""
