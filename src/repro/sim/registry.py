"""Named machine and network presets for the declarative scenario layer.

:class:`~repro.sim.machine.MachineConfig` and
:class:`~repro.sim.network.NetworkConfig` are plain frozen dataclasses; specs
refer to them by *preset name* plus field overrides, e.g.::

    network = "noiseless"                       # string shorthand
    network = "default:jitter_sigma=0.5"        # preset with overrides
    [network]                                   # TOML table form
    preset = "noiseless"
    latency = 1e-6

Presets are registered here so new cost models (a fat-tree model, a
site-measured machine) become addressable from specs and TOML files without
touching the scenario layer.
"""

from __future__ import annotations

from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkConfig
from repro.util.registry import ComponentRegistry

__all__ = [
    "MACHINE_PRESETS",
    "NETWORK_PRESETS",
    "create_machine",
    "create_network",
    "machine_preset_names",
    "network_preset_names",
    "register_machine_preset",
    "register_network_preset",
]

MACHINE_PRESETS = ComponentRegistry("machine preset")
NETWORK_PRESETS = ComponentRegistry("network preset")

MACHINE_PRESETS.register(
    "default",
    MachineConfig,
    description="LogGP-style IBM SP-class node: 16 KB eager threshold, "
    "per-message CPU overheads, rendezvous control messages.",
)

NETWORK_PRESETS.register(
    "default",
    NetworkConfig,
    description="Jittered network: latency + bandwidth + half-normal jitter "
    "and per-destination FIFO link contention.",
)
NETWORK_PRESETS.register(
    "noiseless",
    NetworkConfig.noiseless,
    description="Deterministic network: no jitter, no contention, no drops "
    "(physical stream equals logical stream).",
)


def register_machine_preset(name: str, factory, **kwargs) -> None:
    """Register a machine preset factory returning a :class:`MachineConfig`."""
    MACHINE_PRESETS.register(name, factory, **kwargs)


def register_network_preset(name: str, factory, **kwargs) -> None:
    """Register a network preset factory returning a :class:`NetworkConfig`."""
    NETWORK_PRESETS.register(name, factory, **kwargs)


def machine_preset_names() -> list[str]:
    """Names of all registered machine presets."""
    return MACHINE_PRESETS.names()


def network_preset_names() -> list[str]:
    """Names of all registered network presets."""
    return NETWORK_PRESETS.names()


def create_machine(preset: str = "default", **overrides) -> MachineConfig:
    """Build a :class:`MachineConfig` from a preset name plus field overrides."""
    return MACHINE_PRESETS.create(preset, **overrides)


def create_network(preset: str = "default", **overrides) -> NetworkConfig:
    """Build a :class:`NetworkConfig` from a preset name plus field overrides."""
    return NETWORK_PRESETS.create(preset, **overrides)
