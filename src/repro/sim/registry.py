"""Named machine, network and fault presets for the declarative scenario layer.

:class:`~repro.sim.machine.MachineConfig`,
:class:`~repro.sim.network.NetworkConfig` and
:class:`~repro.sim.faults.FaultConfig` are plain frozen dataclasses; specs
refer to them by *preset name* plus field overrides, e.g.::

    network = "noiseless"                       # string shorthand
    network = "default:jitter_sigma=0.5"        # preset with overrides
    faults  = "drop:rate=0.01,seed=7"           # fault-model shorthand
    [network]                                   # TOML table form
    preset = "noiseless"
    latency = 1e-6

Presets are registered here so new cost models (a fat-tree model, a
site-measured machine, a new fault mix) become addressable from specs and
TOML files without touching the scenario layer.
"""

from __future__ import annotations

from repro.sim.faults import FaultConfig
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkConfig
from repro.util.registry import ComponentRegistry

__all__ = [
    "FAULT_PRESETS",
    "MACHINE_PRESETS",
    "NETWORK_PRESETS",
    "create_faults",
    "create_machine",
    "create_network",
    "fault_preset_names",
    "machine_preset_names",
    "network_preset_names",
    "register_fault_preset",
    "register_machine_preset",
    "register_network_preset",
]

MACHINE_PRESETS = ComponentRegistry("machine preset")
NETWORK_PRESETS = ComponentRegistry("network preset")
FAULT_PRESETS = ComponentRegistry("fault preset")

MACHINE_PRESETS.register(
    "default",
    MachineConfig,
    description="LogGP-style IBM SP-class node: 16 KB eager threshold, "
    "per-message CPU overheads, rendezvous control messages.",
)

NETWORK_PRESETS.register(
    "default",
    NetworkConfig,
    description="Jittered network: latency + bandwidth + half-normal jitter "
    "and per-destination FIFO link contention.",
)
NETWORK_PRESETS.register(
    "noiseless",
    NetworkConfig.noiseless,
    description="Deterministic network: no jitter, no contention, no drops "
    "(physical stream equals logical stream).",
)


FAULT_PRESETS.register(
    "none",
    FaultConfig,
    description="No fault injection (all rates zero); bit-identical to a "
    "run without a fault configuration.",
)
FAULT_PRESETS.register(
    "drop",
    lambda rate=0.01, **overrides: _faults(dict(drop_rate=rate), overrides),
    description="Message drop + deterministic retransmit: each data payload "
    "is lost with probability `rate` and retransmitted after a timeout "
    "(spurious duplicates via duplicate_rate).",
)
FAULT_PRESETS.register(
    "degrade",
    lambda factor=4.0, **overrides: _faults(dict(degrade_factor=factor), overrides),
    description="Transient link degradation: seeded alternating windows "
    "during which every transfer delay is multiplied by `factor`.",
)
FAULT_PRESETS.register(
    "stall",
    lambda rate=0.001, **overrides: _faults(dict(stall_rate=rate), overrides),
    description="Rank stalls: before a compute phase a rank stalls with "
    "probability `rate` for an exponential extra delay (OS noise, paging).",
)
FAULT_PRESETS.register(
    "chaos",
    lambda **overrides: _faults(
        dict(
            drop_rate=0.005,
            duplicate_rate=0.25,
            degrade_factor=2.0,
            stall_rate=5.0e-4,
        ),
        overrides,
    ),
    description="All three fault models at moderate rates: drops with "
    "occasional duplicates, 2x link degradation windows, rank stalls.",
)


def _faults(base: dict, overrides: dict) -> FaultConfig:
    """Preset defaults merged under explicit field overrides.

    An explicit field override (``drop_rate`` from a sweep grid) beats the
    preset's alias parameter, instead of colliding with it.
    """
    base.update(overrides)
    return FaultConfig(**base)


def register_machine_preset(name: str, factory, **kwargs) -> None:
    """Register a machine preset factory returning a :class:`MachineConfig`."""
    MACHINE_PRESETS.register(name, factory, **kwargs)


def register_network_preset(name: str, factory, **kwargs) -> None:
    """Register a network preset factory returning a :class:`NetworkConfig`."""
    NETWORK_PRESETS.register(name, factory, **kwargs)


def register_fault_preset(name: str, factory, **kwargs) -> None:
    """Register a fault preset factory returning a :class:`FaultConfig`."""
    FAULT_PRESETS.register(name, factory, **kwargs)


def machine_preset_names() -> list[str]:
    """Names of all registered machine presets."""
    return MACHINE_PRESETS.names()


def network_preset_names() -> list[str]:
    """Names of all registered network presets."""
    return NETWORK_PRESETS.names()


def fault_preset_names() -> list[str]:
    """Names of all registered fault presets."""
    return FAULT_PRESETS.names()


def create_machine(preset: str = "default", **overrides) -> MachineConfig:
    """Build a :class:`MachineConfig` from a preset name plus field overrides."""
    return MACHINE_PRESETS.create(preset, **overrides)


def create_network(preset: str = "default", **overrides) -> NetworkConfig:
    """Build a :class:`NetworkConfig` from a preset name plus field overrides."""
    return NETWORK_PRESETS.create(preset, **overrides)


def create_faults(preset: str = "none", **overrides) -> FaultConfig:
    """Build a :class:`FaultConfig` from a preset name plus field overrides."""
    return FAULT_PRESETS.create(preset, **overrides)
