"""Deterministic typed event queue for the discrete-event simulator.

Events are ordered by ``(time, sequence)`` where the sequence number is the
insertion order; this makes simulations fully deterministic even when many
events share a timestamp (common at t=0 when every rank starts).

The queue is the innermost loop of every simulation, so events are stored as
flat *typed records* — plain lists indexed by the ``EV_*`` constants — rather
than objects with per-event closures:

``[time, seq, kind, a, b, cancelled, popped]``

The ``kind`` field tells the engine how to interpret the two payload slots
``a`` / ``b`` without allocating a closure (or even a payload tuple) per
event:

* :data:`EVENT_CALLBACK` — ``a`` is a zero-argument callable, ``b`` unused
  (the general-purpose lane, used for rendezvous control traffic and tests);
* :data:`EVENT_STEP` — ``a`` is the rank state, ``b`` the resume value:
  resume a rank generator (the engine's hottest event type);
* :data:`EVENT_DELIVER` — ``a`` is the message, ``b`` the pre-matched posted
  receive (or None): a payload physically arrives at its destination rank.
  The engine coalesces consecutive same-timestamp deliveries to one receiver
  into a burst.
* :data:`EVENT_STEP_BATCH` — ``a`` is a list of compiled rank states that all
  step at the record's timestamp, ``b`` unused.  One batch record stands for
  ``len(a)`` individual :data:`EVENT_STEP` records with consecutive sequence
  numbers; the queue's counters account for all of them at push and pop, so
  ``len(queue)`` and :attr:`events_processed` are identical to pushing the
  steps one by one.  Only the vectorised engine drain creates these.
* :data:`EVENT_DELIVER_BATCH` — ``a`` is a list of ``(message, posted)``
  pairs that all arrive at the record's timestamp, ``b`` unused.  The same
  sequence/counter contract as :data:`EVENT_STEP_BATCH`: one record stands
  for ``len(a)`` consecutive :data:`EVENT_DELIVER` records.  Only the
  vectorised send path creates these (a deterministic eager burst whose
  arrivals all coincide).

Two structural fast paths keep the common cases cheap:

* a maintained *live counter* makes ``len(queue)`` / ``bool(queue)`` O(1)
  (they used to scan the whole heap for non-cancelled events);
* a *zero-delay fast lane*: events scheduled at exactly the timestamp
  currently being drained (immediate self-resumes such as waits on already
  completed requests) go to a FIFO deque instead of the O(log n) heap.
  Because the sequence counter is monotonic, appending to the lane preserves
  global ``(time, seq)`` order; :meth:`pop` simply takes the smaller of the
  two heads.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable

__all__ = [
    "EVENT_CALLBACK",
    "EVENT_STEP",
    "EVENT_DELIVER",
    "EVENT_STEP_BATCH",
    "EVENT_DELIVER_BATCH",
    "EV_TIME",
    "EV_SEQ",
    "EV_KIND",
    "EV_A",
    "EV_B",
    "EV_CANCELLED",
    "EV_POPPED",
    "EventQueue",
]

#: ``a`` is a zero-argument callable.
EVENT_CALLBACK = 0
#: ``a`` is the rank state, ``b`` the resume value.
EVENT_STEP = 1
#: ``a`` is the message, ``b`` the pre-matched posted receive (or None).
EVENT_DELIVER = 2
#: ``a`` is a list of compiled rank states stepping together, ``b`` unused.
EVENT_STEP_BATCH = 3
#: ``a`` is a list of ``(message, posted)`` pairs arriving together, ``b`` unused.
EVENT_DELIVER_BATCH = 4

#: Kinds whose ``a`` slot holds a list standing for ``len(a)`` events.
_BATCH_KINDS = (EVENT_STEP_BATCH, EVENT_DELIVER_BATCH)

#: Indices into an event record.
EV_TIME, EV_SEQ, EV_KIND, EV_A, EV_B, EV_CANCELLED, EV_POPPED = range(7)


class EventQueue:
    """A binary-heap event queue with typed records, batching and cancellation.

    Records compare as lists, so the heap orders them by ``(time, seq)`` with
    native C comparisons (``kind`` is an int tiebreaker that is never reached
    because sequence numbers are unique).
    """

    def __init__(self) -> None:
        self._heap: list[list] = []
        self._fast: deque[list] = deque()
        self._seq = 0
        self._live = 0
        self._popped = 0
        #: Timestamp of the most recently popped event (the drain point); new
        #: events at exactly this time take the fast lane.
        self._now = float("-inf")

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def events_processed(self) -> int:
        """Number of (non-cancelled) events popped so far."""
        return self._popped

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def push(self, time: float, callback: Callable[[], None]) -> list:
        """Schedule ``callback`` at absolute simulated ``time``.

        Returns the event record; pass it to :meth:`cancel` to revoke it.
        """
        return self.push_typed(time, EVENT_CALLBACK, callback)

    def push_typed(self, time: float, kind: int, a, b=None) -> list:
        """Schedule a typed event record at absolute simulated ``time``."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        seq = self._seq
        self._seq = seq + 1
        record = [time, seq, kind, a, b, False, False]
        self._live += 1
        fast = self._fast
        # Zero-delay fast lane: the record fires at the timestamp currently
        # being drained, so it sorts after every pending event at that time
        # (its seq is larger) and before everything later — append beats the
        # heap.  The tail check keeps the lane (time, seq)-sorted even under
        # out-of-order direct pushes.
        if time == self._now and (not fast or fast[-1][EV_TIME] == time):
            fast.append(record)
        else:
            heapq.heappush(self._heap, record)
        return record

    def push_step_batch(self, time: float, states: list) -> list:
        """Schedule one :data:`EVENT_STEP_BATCH` record for ``len(states)`` steps.

        Equivalent to ``len(states)`` consecutive ``push_typed(time,
        EVENT_STEP, state)`` calls: the sequence counter advances by the
        batch size (so every later push still sorts after the whole batch)
        and the live counter accounts for every state.  The record's ``seq``
        is the first of the consumed block, which is exactly where the first
        individual record would have sorted.
        """
        return self._push_batch(time, EVENT_STEP_BATCH, states)

    def push_deliver_batch(self, time: float, items: list) -> list:
        """Schedule one :data:`EVENT_DELIVER_BATCH` for ``len(items)`` arrivals.

        ``items`` holds ``(message, posted)`` pairs that all arrive at
        ``time``; the sequence/counter contract is that of
        :meth:`push_step_batch` — the record stands for ``len(items)``
        consecutive :data:`EVENT_DELIVER` pushes.
        """
        return self._push_batch(time, EVENT_DELIVER_BATCH, items)

    def _push_batch(self, time: float, kind: int, payload: list) -> list:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        n = len(payload)
        seq = self._seq
        self._seq = seq + n
        record = [time, seq, kind, payload, None, False, False]
        self._live += n
        fast = self._fast
        if time == self._now and (not fast or fast[-1][EV_TIME] == time):
            fast.append(record)
        else:
            heapq.heappush(self._heap, record)
        return record

    def cancel(self, record: list) -> None:
        """Mark a pending event so it will be skipped when reached."""
        if not record[EV_CANCELLED]:
            record[EV_CANCELLED] = True
            if not record[EV_POPPED]:
                if record[EV_KIND] in _BATCH_KINDS:
                    self._live -= len(record[EV_A])
                else:
                    self._live -= 1

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def pop(self) -> list | None:
        """Pop and return the next non-cancelled event record, or ``None``."""
        heap, fast = self._heap, self._fast
        while True:
            if fast:
                if heap and heap[0] < fast[0]:
                    record = heapq.heappop(heap)
                else:
                    record = fast.popleft()
            elif heap:
                record = heapq.heappop(heap)
            else:
                return None
            if record[EV_CANCELLED]:
                continue
            record[EV_POPPED] = True
            if record[EV_KIND] in _BATCH_KINDS:
                n = len(record[EV_A])
                self._live -= n
                self._popped += n
            else:
                self._live -= 1
                self._popped += 1
            self._now = record[EV_TIME]
            return record

    def peek_record(self) -> list | None:
        """Return the next non-cancelled event record without popping it.

        Used by the engine's run loop to coalesce consecutive same-timestamp
        deliveries to one receiver without materialising whole batches.
        """
        heap, fast = self._heap, self._fast
        while heap and heap[0][EV_CANCELLED]:
            heapq.heappop(heap)
        while fast and fast[0][EV_CANCELLED]:
            fast.popleft()
        if fast:
            if heap and heap[0] < fast[0]:
                return heap[0]
            return fast[0]
        return heap[0] if heap else None

    def pop_batch(self) -> list[list]:
        """Pop the whole cohort of events sharing the earliest timestamp.

        Returns the records in ``(time, seq)`` order (empty list when the
        queue is drained).  Events scheduled *while the cohort executes* at
        the same timestamp land in the fast lane and form the next batch, so
        global ordering is preserved.

        **Same-cohort cancellation caveat**: because the whole cohort is
        popped *before* any of its records execute, a callback early in the
        batch that cancels a later record of the same cohort is too late to
        keep that record out of the returned list — it is already popped and
        counted.  A driver using this API must therefore re-check
        ``record[EV_CANCELLED]`` before executing each record and call
        :meth:`discount_cancelled` for every record it skips.  Drivers that
        would rather not carry that contract should drain with
        :meth:`iter_cohort`, which pops lazily and handles same-cohort
        cancellation by construction.

        :meth:`repro.sim.engine.Simulator._run_loop` streams through an
        inlined equivalent (record by record, without materialising the
        batch list) — keep the two in sync.
        """
        first = self.pop()
        if first is None:
            return []
        batch = [first]
        time = first[EV_TIME]
        heap, fast = self._heap, self._fast
        while True:
            while heap and heap[0][EV_CANCELLED]:
                heapq.heappop(heap)
            while fast and fast[0][EV_CANCELLED]:
                fast.popleft()
            if fast and fast[0][EV_TIME] == time and not (heap and heap[0] < fast[0]):
                record = fast.popleft()
            elif heap and heap[0][EV_TIME] == time:
                record = heapq.heappop(heap)
            else:
                return batch
            record[EV_POPPED] = True
            if record[EV_KIND] in _BATCH_KINDS:
                n = len(record[EV_A])
                self._live -= n
                self._popped += n
            else:
                self._live -= 1
                self._popped += 1
            batch.append(record)

    def iter_cohort(self, until: float | None = None):
        """Lazily yield the cohort of events sharing the earliest timestamp.

        The cancellation-safe sibling of :meth:`pop_batch`: each record is
        popped only when the iterator advances, so an event cancelled by an
        *earlier record of the same cohort* is skipped like any other
        cancelled event and never counted in :attr:`events_processed` — no
        :meth:`discount_cancelled` bookkeeping required.  Records pushed at
        the cohort's timestamp while it executes are yielded as part of the
        same cohort (they land in the fast lane with larger sequence
        numbers), matching one-pop-at-a-time drain order exactly.

        ``until`` bounds the drain to a conservative window: a cohort whose
        timestamp is ``>= until`` is left untouched on the queue (nothing is
        popped, nothing is counted) and the iterator yields nothing.  The
        bound is checked once, against the first live record — a cohort
        strictly below the bound always completes, because all its members
        share one timestamp.  An empty queue or a head run of cancelled
        records (including a fully cancelled cohort) also terminates cleanly:
        :meth:`peek_record` purges cancelled heads without counting them.
        """
        if until is not None:
            head = self.peek_record()
            if head is None or head[EV_TIME] >= until:
                return
        record = self.pop()
        if record is None:
            return
        yield record
        time = record[EV_TIME]
        while True:
            record = self.peek_record()
            if record is None or record[EV_TIME] != time:
                return
            yield self.pop()

    def discount_cancelled(self) -> None:
        """Un-count one popped-but-cancelled event from ``events_processed``.

        A callback early in a timestamp cohort may cancel a later event of
        the *same* cohort after :meth:`pop_batch` already popped it; a driver
        draining with :meth:`pop_batch` should skip such records and call
        this so the processed-event count matches one-pop-at-a-time
        semantics.  (The engine's run loop pops record by record — and
        :meth:`iter_cohort` pops lazily — so cancellations are filtered
        before counting and neither ever needs this.)
        """
        self._popped -= 1

    def peek_time(self) -> float | None:
        """Return the timestamp of the next pending event without popping it."""
        record = self.peek_record()
        return record[EV_TIME] if record is not None else None

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
        self._fast.clear()
        self._live = 0
