"""Deterministic event queue for the discrete-event simulator.

Events are ordered by ``(time, sequence)`` where the sequence number is the
insertion order; this makes simulations fully deterministic even when many
events share a timestamp (common at t=0 when every rank starts).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Attributes
    ----------
    time:
        Simulated time at which the callback fires.
    seq:
        Tie-breaking insertion sequence number.
    callback:
        Zero-argument callable executed when the event fires.
    cancelled:
        Cancelled events stay in the heap but are skipped when popped.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so it will be ignored when popped."""
        self.cancelled = True


class EventQueue:
    """A minimal binary-heap event queue with cancellation support."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._popped = 0

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return any(not event.cancelled for event in self._heap)

    @property
    def events_processed(self) -> int:
        """Number of (non-cancelled) events popped so far."""
        return self._popped

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(time=float(time), seq=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Pop and return the next non-cancelled event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._popped += 1
            return event
        return None

    def peek_time(self) -> float | None:
        """Return the timestamp of the next pending event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
