"""Network timing model.

The network model answers one question for the transport layer: *when does a
message injected at time ``t`` by rank ``src`` arrive at rank ``dst``?*  The
answer is

``arrival = t + latency + nbytes / bandwidth + jitter (+ contention delay)``

where the jitter term is a half-normal random variable whose scale is a
fraction of the base latency.  This jitter is the reproduction's stand-in for
the paper's "random effects in the physical data transfer between processes,
load balance, network congestion, and so on" (Section 3.1): it perturbs
arrival order between messages from different senders while leaving the
logical program-order stream untouched.

An optional FIFO link-contention model serialises messages that share the
same destination NIC, which increases reordering under heavy fan-in (the IS
benchmark's collective phases).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.util.rng import SeededRNG
from repro.util.validation import check_non_negative, check_positive, check_probability

__all__ = ["NetworkConfig", "NetworkModel"]


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of the network model.

    Attributes
    ----------
    latency:
        Base one-way latency in seconds for any message.  ``0`` is allowed
        and models an *ideal* network — used by the scaling benchmarks to
        keep rank clocks in lockstep so timestamp cohorts stay wide.
    bandwidth:
        Link bandwidth in bytes/second (``float("inf")`` is accepted: the
        serialization term becomes exactly zero).
    jitter_sigma:
        Scale of the half-normal per-message jitter, expressed as a fraction
        of ``latency``.  ``0`` gives a perfectly deterministic network, in
        which case the physical stream equals the logical stream.
    contention:
        If True, messages destined to the same rank are serialised through a
        per-destination FIFO channel (models NIC/port contention).
    drop_probability:
        Probability that a message experiences one retransmission-style extra
        delay of ``retransmit_penalty`` seconds.  Used by fault-injection
        tests; 0 by default.
    retransmit_penalty:
        Extra delay applied when ``drop_probability`` triggers.
    seed:
        Seed of the jitter random stream.  ``None`` (the default) means "not
        pinned": the simulator and the scenario layer derive it from the run
        seed, so a configuration that only overrides timing parameters still
        follows the experiment's seed.  A standalone :class:`NetworkModel`
        built from an unpinned configuration falls back to seed 0.
    """

    latency: float = 25.0e-6
    bandwidth: float = 300.0e6
    jitter_sigma: float = 0.2
    contention: bool = True
    drop_probability: float = 0.0
    retransmit_penalty: float = 500.0e-6
    seed: int | None = None

    def __post_init__(self) -> None:
        check_non_negative("latency", self.latency)
        check_positive("bandwidth", self.bandwidth)
        check_non_negative("jitter_sigma", self.jitter_sigma)
        check_probability("drop_probability", self.drop_probability)
        check_non_negative("retransmit_penalty", self.retransmit_penalty)

    def with_overrides(self, **kwargs) -> "NetworkConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def noiseless(cls, **kwargs) -> "NetworkConfig":
        """A deterministic network: no jitter, no contention, no drops.

        With this configuration the physical message stream observed at a
        receiver is a pure function of the application's communication
        structure, which is useful for unit tests and for isolating the
        effect of noise in the Figure 4 ablations.
        """
        base = dict(jitter_sigma=0.0, contention=False, drop_probability=0.0)
        base.update(kwargs)
        return cls(**base)


class NetworkModel:
    """Stateful network timing model (holds the jitter RNG and link queues)."""

    #: Jitter variates prefetched per block; sequence-identical to scalar
    #: draws (numpy array sampling consumes the bit stream the same way).
    _JITTER_BLOCK = 256

    def __init__(self, config: NetworkConfig | None = None, seed: int | None = None) -> None:
        self.config = config or NetworkConfig()
        if seed is not None:
            self.config = self.config.with_overrides(seed=seed)
        self._rng = SeededRNG(
            self.config.seed if self.config.seed is not None else 0, "network"
        )
        # Per-destination time at which the inbound link becomes free again.
        self._link_free_at: dict[int, float] = {}
        self.messages_timed = 0
        self.total_bytes = 0
        self._jitter_buf: list[float] = []
        self._jitter_idx = 0
        # Config fields copied to attributes: read on every timed message.
        cfg = self.config
        self._latency = cfg.latency
        self._bandwidth = cfg.bandwidth
        self._jitter_scale = cfg.jitter_sigma * cfg.latency
        self._contention = cfg.contention
        self._drop_probability = cfg.drop_probability
        self._retransmit_penalty = cfg.retransmit_penalty
        # Fault-injection hook (set via attach_faults): a callable mapping a
        # simulated time to the transfer-delay multiplier in force then.
        self._degrade_multiplier = None

    def attach_faults(self, injector) -> None:
        """Attach a :class:`repro.sim.faults.FaultInjector` for link degradation.

        Only the degradation model lives here (it scales transfer delays for
        every message, control traffic included); drop/retransmit faults are
        applied by the transport on data payloads.  The injector draws from
        its own seeded streams, so attaching it never perturbs the jitter
        stream — and an injector without an active degradation model is
        ignored entirely.
        """
        if injector is not None and injector.degrade_active:
            self._degrade_multiplier = injector.latency_multiplier

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear link occupancy state and counters (RNG is *not* reseeded)."""
        self._link_free_at.clear()
        self.messages_timed = 0
        self.total_bytes = 0

    def serialization_time(self, nbytes: int) -> float:
        """Time to push ``nbytes`` through the link at full bandwidth."""
        check_non_negative("nbytes", nbytes)
        return nbytes / self.config.bandwidth

    def base_transfer_time(self, nbytes: int) -> float:
        """Deterministic part of the transfer time (latency + serialization)."""
        return self.config.latency + self.serialization_time(nbytes)

    def arrival_time(self, src: int, dst: int, nbytes: int, inject_time: float) -> float:
        """Compute the arrival time of a message injected at ``inject_time``.

        The computation accounts for base latency, serialization at the
        configured bandwidth, random jitter, optional retransmission penalty
        and optional per-destination link contention.  Calling this method
        consumes random numbers, so call order matters for reproducibility;
        the transport calls it exactly once per data or control message.
        """
        if inject_time < 0 or nbytes < 0:
            check_non_negative("inject_time", inject_time)
            check_non_negative("nbytes", nbytes)
        serialization = nbytes / self._bandwidth
        drop_probability = self._drop_probability

        jitter_scale = self._jitter_scale
        if jitter_scale <= 0.0:
            jitter = 0.0
        elif drop_probability > 0.0:
            # Retransmission draws interleave with jitter draws on the same
            # stream, so block prefetching would reorder them; draw per call.
            jitter = self._rng.jitter(jitter_scale)
        else:
            idx = self._jitter_idx
            buf = self._jitter_buf
            if idx >= len(buf):
                buf = self._jitter_buf = self._rng.jitter_block(
                    jitter_scale, self._JITTER_BLOCK
                )
                idx = 0
            self._jitter_idx = idx + 1
            jitter = buf[idx]

        penalty = 0.0
        if drop_probability > 0.0 and self._rng.bernoulli(drop_probability):
            penalty = self._retransmit_penalty

        # Grouping matters: keep (latency + serialization) as one term so the
        # floating-point result is bit-identical to base_transfer_time().
        transfer = self._latency + serialization
        if self._degrade_multiplier is not None:
            transfer = transfer * self._degrade_multiplier(inject_time)
        arrival = inject_time + transfer + jitter + penalty

        if self._contention:
            # Serialise through the destination's inbound channel: the message
            # cannot start draining into the destination before the channel is
            # free, and it occupies the channel for its serialization time.
            free_at = self._link_free_at.get(dst, 0.0)
            start = arrival - serialization
            if free_at > start:
                start = free_at
            arrival = start + serialization
            self._link_free_at[dst] = arrival

        self.messages_timed += 1
        self.total_bytes += int(nbytes)
        return arrival

    def min_latency(self) -> float:
        """Smallest delay any message can experience (the conservative lookahead).

        Every arrival computed by :meth:`arrival_time` is at least
        ``inject_time + latency`` (jitter, penalties, contention and
        degradation only ever *add* delay; ``degrade_factor`` is validated
        positive and ``>= 1`` in practice).  The parallel engine uses this as
        its lookahead: with a positive minimum latency, a partition may
        advance ``min_latency`` seconds of virtual time without hearing from
        its peers.  A zero-latency network has no lookahead and cannot be
        partitioned conservatively.
        """
        return self._latency

    @property
    def partition_safe(self) -> bool:
        """True when per-partition timing replays the single-process run.

        The parallel engine gives each partition its own network model, so
        any *cross-message* state or shared RNG consumption would diverge
        from the global call order of a single-process run.  Safe means: no
        jitter draws (``jitter_sigma <= 0``), no drop/retransmit draws
        (``drop_probability == 0``), and no per-destination contention
        queues.  An attached link-degradation model is fine — its timeline is
        a pure function of (seed, time), so every partition regenerates an
        identical prefix.
        """
        return (
            self._jitter_scale <= 0.0
            and self._drop_probability == 0.0
            and not self._contention
        )

    @property
    def deterministic(self) -> bool:
        """True when :meth:`arrival_time` is a pure function of its arguments.

        Requires no jitter (no RNG consumption), no drop/retransmit draws,
        no per-destination contention state, and no attached degradation
        model.  Exactly this condition makes :meth:`batch_arrival_times`
        valid, because per-message call *order* stops mattering.
        """
        return (
            self._jitter_scale <= 0.0
            and self._drop_probability == 0.0
            and not self._contention
            and self._degrade_multiplier is None
        )

    def batch_arrival_times(self, nbytes, inject_times):
        """Vectorised :meth:`arrival_time` for a burst of messages, or ``None``.

        ``nbytes`` and ``inject_times`` are equal-length numpy arrays (int64
        and float64).  Only available when the model is :attr:`deterministic`
        — the scalar path then computes ``inject + (latency + nbytes/bw)``
        with no RNG draws and no cross-message state, so one vector
        expression with the same float grouping is bit-identical, in any
        order.  Returns ``None`` otherwise; the caller must fall back to
        per-message :meth:`arrival_time` calls.
        """
        if not self.deterministic:
            return None
        # Same grouping as the scalar path: (latency + serialization) is one
        # term, and jitter/penalty are exact zeros there (x + 0.0 == x).
        transfer = self._latency + nbytes / self._bandwidth
        arrivals = inject_times + transfer
        self.messages_timed += len(arrivals)
        self.total_bytes += int(np.sum(nbytes))
        return arrivals
