"""Utility helpers shared across the :mod:`repro` package.

The utilities are intentionally dependency-light: a seeded random number
helper, ASCII table / bar-chart rendering used by the analysis layer (the
paper's figures are reproduced as data plus text renderings, no matplotlib),
and small validation helpers used at public API boundaries.
"""

from repro.util.rng import SeededRNG, derive_seed, spawn_rng
from repro.util.text import ascii_bar_chart, ascii_table, format_float, wrap_title
from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_rank,
    check_type,
)

__all__ = [
    "SeededRNG",
    "derive_seed",
    "spawn_rng",
    "ascii_table",
    "ascii_bar_chart",
    "format_float",
    "wrap_title",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_rank",
    "check_type",
]
