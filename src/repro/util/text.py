"""ASCII rendering of tables and bar charts.

The paper reports its results as one table (Table 1) and four figures (bar
charts and stream plots).  Since the reproduction environment has no plotting
stack, the analysis layer renders every table/figure as plain text so the
benchmark harness and EXPERIMENTS.md can show the regenerated data directly.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["ascii_table", "ascii_bar_chart", "format_float", "wrap_title"]


def format_float(value: float, digits: int = 1) -> str:
    """Format a float with a fixed number of digits, trimming '-0.0'."""
    text = f"{value:.{digits}f}"
    if text == f"-0.{'0' * digits}":
        text = f"0.{'0' * digits}"
    return text


def wrap_title(title: str, width: int = 72, char: str = "=") -> str:
    """Return a title line followed by an underline of the same length."""
    line = title.strip()
    return f"{line}\n{char * min(max(len(line), 8), width)}"


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a list of rows as a fixed-width ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of rows; each row must have ``len(headers)`` entries.  Floats
        are formatted with one decimal, everything else with ``str``.
    title:
        Optional title printed above the table.

    Returns
    -------
    str
        The rendered table (no trailing newline).
    """
    headers = [str(h) for h in headers]
    rendered_rows: list[list[str]] = []
    for row in rows:
        row = list(row)
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns: {row!r}"
            )
        rendered_rows.append(
            [format_float(c) if isinstance(c, float) else str(c) for c in row]
        )

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    sep = "-+-".join("-" * w for w in widths)
    out: list[str] = []
    if title:
        out.append(wrap_title(title))
    out.append(line(headers))
    out.append(sep)
    out.extend(line(row) for row in rendered_rows)
    return "\n".join(out)


def ascii_bar_chart(
    values: Mapping[str, float],
    max_value: float | None = None,
    width: int = 50,
    unit: str = "%",
    title: str | None = None,
) -> str:
    """Render a horizontal bar chart (used for the Figure 3/4 accuracy plots).

    Parameters
    ----------
    values:
        Mapping of label -> value.  Iteration order is preserved.
    max_value:
        Value corresponding to a full-width bar.  Defaults to the maximum of
        the data (or 100.0 when the unit is ``%``).
    width:
        Width of a full bar, in characters.
    unit:
        Unit suffix printed after each value.
    title:
        Optional title printed above the chart.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    if max_value is None:
        max_value = 100.0 if unit == "%" else max(values.values(), default=1.0)
    if max_value <= 0:
        max_value = 1.0

    label_width = max((len(str(label)) for label in values), default=0)
    out: list[str] = []
    if title:
        out.append(wrap_title(title, char="-"))
    for label, value in values.items():
        filled = int(round(width * min(max(value, 0.0), max_value) / max_value))
        bar = "#" * filled
        out.append(f"{str(label).ljust(label_width)} | {bar.ljust(width)} {format_float(value)}{unit}")
    return "\n".join(out)
