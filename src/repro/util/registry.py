"""Generic named-component registry.

The declarative scenario layer (:mod:`repro.scenario`) resolves every
pluggable component — flow-control policies, stream predictors, machine and
network presets — by *name* through a :class:`ComponentRegistry`.  Each entry
couples a factory with canonical defaults and parameter-name aliases, so the
string shorthands users write in specs (``"credit:horizon=5"``,
``"periodicity:window=24"``) map onto the constructors the code base already
has without every call site repeating the translation.

Registries are intentionally open: downstream code registers new components
(a custom policy, a site-specific network preset) and they immediately become
addressable from specs, TOML files and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

__all__ = ["ComponentEntry", "ComponentRegistry"]


@dataclass(frozen=True)
class ComponentEntry:
    """One registered component: factory, canonical defaults, param aliases."""

    name: str
    factory: Callable
    defaults: Mapping[str, object] = field(default_factory=dict)
    aliases: Mapping[str, str] = field(default_factory=dict)
    description: str = ""


class ComponentRegistry:
    """Name → factory mapping with alias resolution and friendly errors.

    Parameters
    ----------
    kind:
        Human-readable component kind ("policy", "network preset", ...) used
        in error messages.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, ComponentEntry] = {}
        self._name_aliases: dict[str, str] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        factory: Callable,
        *,
        aliases: tuple[str, ...] = (),
        defaults: Mapping[str, object] | None = None,
        param_aliases: Mapping[str, str] | None = None,
        description: str = "",
    ) -> None:
        """Register ``factory`` under ``name`` (plus optional alias names).

        ``defaults`` are keyword arguments applied unless the caller
        overrides them; ``param_aliases`` maps user-facing parameter names to
        the factory's actual keyword names (e.g. ``window -> window_size``).
        """
        if name in self._entries or name in self._name_aliases:
            raise ValueError(f"{self.kind} {name!r} is already registered")
        self._entries[name] = ComponentEntry(
            name=name,
            factory=factory,
            defaults=dict(defaults or {}),
            aliases=dict(param_aliases or {}),
            description=description,
        )
        for alias in aliases:
            if alias in self._entries or alias in self._name_aliases:
                raise ValueError(f"{self.kind} alias {alias!r} is already registered")
            self._name_aliases[alias] = name

    def names(self) -> list[str]:
        """Canonical names of all registered components (sorted)."""
        return sorted(self._entries)

    def canonical_name(self, name: str) -> str:
        """Resolve ``name`` (canonical or alias) to the canonical name."""
        return self.entry(name).name

    def __contains__(self, name: str) -> bool:
        return name in self._entries or name in self._name_aliases

    def entry(self, name: str) -> ComponentEntry:
        """Look up a component entry by canonical name or alias."""
        canonical = self._name_aliases.get(name, name)
        try:
            return self._entries[canonical]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; available: {', '.join(self.names())}"
            ) from None

    def describe(self) -> list[dict]:
        """JSON-able description of every entry (feeds ``repro list --json``)."""
        rows = []
        for name in self.names():
            entry = self._entries[name]
            aliases = sorted(a for a, target in self._name_aliases.items() if target == name)
            rows.append(
                {
                    "name": name,
                    "aliases": aliases,
                    "defaults": dict(entry.defaults),
                    "description": entry.description,
                }
            )
        return rows

    # ------------------------------------------------------------------
    def create(self, name: str, **params):
        """Instantiate component ``name`` with ``params`` over its defaults.

        Parameter names are passed through :attr:`ComponentEntry.aliases`
        first, so spec shorthands can use the documented friendly names.
        """
        entry = self.entry(name)
        resolved = dict(entry.defaults)
        for key, value in params.items():
            resolved[entry.aliases.get(key, key)] = value
        try:
            return entry.factory(**resolved)
        except TypeError as error:
            raise TypeError(f"{self.kind} {entry.name!r}: {error}") from None
