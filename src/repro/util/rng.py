"""Deterministic random number generation helpers.

Every stochastic component of the simulator (network jitter, compute-time
noise, synthetic workloads) draws from a :class:`SeededRNG` so that an entire
experiment is reproducible from a single integer seed.  Sub-streams are
derived with :func:`derive_seed` so that, for example, every simulated process
and every network link gets an independent but deterministic stream.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["SeededRNG", "derive_seed", "spawn_rng"]


def derive_seed(base_seed: int, *keys: object) -> int:
    """Derive a child seed from ``base_seed`` and an arbitrary key path.

    The derivation is stable across processes and Python versions (it uses
    SHA-256 rather than ``hash()``), so the same ``(base_seed, keys)`` pair
    always yields the same child seed.

    Parameters
    ----------
    base_seed:
        The experiment-level seed.
    keys:
        Arbitrary hashable/strings identifying the sub-stream, e.g.
        ``("network", link_id)`` or ``("rank", 3)``.

    Returns
    -------
    int
        A 63-bit non-negative integer suitable for seeding NumPy generators.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("utf-8"))
    for key in keys:
        digest.update(b"\x1f")
        digest.update(repr(key).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little") & ((1 << 63) - 1)


def spawn_rng(base_seed: int, *keys: object) -> np.random.Generator:
    """Return a NumPy generator seeded from ``derive_seed(base_seed, *keys)``."""
    return np.random.default_rng(derive_seed(base_seed, *keys))


class SeededRNG:
    """A small façade over :class:`numpy.random.Generator`.

    It adds the distribution helpers the simulator needs (truncated normal
    jitter, exponential backoff, bounded integers) and keeps track of the seed
    it was created with, which is convenient for logging and for re-creating
    identical streams in tests.

    Parameters
    ----------
    seed:
        Base seed for the generator.
    keys:
        Optional derivation path (see :func:`derive_seed`).
    """

    def __init__(self, seed: int, *keys: object) -> None:
        self.seed = int(seed)
        self.keys = tuple(keys)
        self._rng = spawn_rng(seed, *keys)

    # -- generic passthroughs -------------------------------------------------
    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return float(self._rng.random())

    def integers(self, low: int, high: int | None = None) -> int:
        """Uniform integer, same semantics as ``Generator.integers``."""
        return int(self._rng.integers(low, high))

    def choice(self, seq: Iterable):
        """Uniform choice from a sequence."""
        seq = list(seq)
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[int(self._rng.integers(0, len(seq)))]

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle of a Python list."""
        self._rng.shuffle(seq)

    # -- distributions used by the simulator ----------------------------------
    def jitter(self, scale: float) -> float:
        """Non-negative timing jitter.

        Drawn from a half-normal distribution with the given scale; this is
        the noise source that perturbs physical message arrival order relative
        to the logical program order (the paper's "random effects").
        """
        if scale <= 0.0:
            return 0.0
        return abs(float(self._rng.normal(0.0, scale)))

    def jitter_block(self, scale: float, n: int) -> list[float]:
        """A block of ``n`` jitter variates, sequence-identical to ``n``
        successive :meth:`jitter` calls (numpy array sampling consumes the
        underlying bit stream exactly like repeated scalar draws)."""
        if scale <= 0.0:
            return [0.0] * n
        return np.abs(self._rng.normal(0.0, scale, size=n)).tolist()

    def lognormal_factor(self, sigma: float) -> float:
        """Multiplicative noise factor with median 1.0."""
        if sigma <= 0.0:
            return 1.0
        return float(self._rng.lognormal(0.0, sigma))

    def lognormal_block(self, sigma: float, n: int) -> list[float]:
        """A block of ``n`` noise factors, sequence-identical to ``n``
        successive :meth:`lognormal_factor` calls (numpy array sampling
        consumes the underlying bit stream exactly like scalar draws)."""
        if sigma <= 0.0:
            return [1.0] * n
        return self._rng.lognormal(0.0, sigma, size=n).tolist()

    def exponential(self, mean: float) -> float:
        """Exponential variate with the given mean (0 if mean <= 0)."""
        if mean <= 0.0:
            return 0.0
        return float(self._rng.exponential(mean))

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return bool(self._rng.random() < p)

    def normal(self, loc: float, scale: float) -> float:
        """Gaussian variate."""
        return float(self._rng.normal(loc, scale))

    def child(self, *keys: object) -> "SeededRNG":
        """Create an independent child RNG derived from this one's seed path."""
        return SeededRNG(self.seed, *(self.keys + keys))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeededRNG(seed={self.seed}, keys={self.keys!r})"
