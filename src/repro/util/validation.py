"""Argument-validation helpers used at public API boundaries.

These raise ``ValueError``/``TypeError`` with messages naming the offending
parameter, so user mistakes (negative message size, rank out of range, ...)
fail fast and clearly rather than producing confusing simulator states.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_rank",
    "check_type",
]


def check_positive(name: str, value: float) -> float:
    """Ensure ``value > 0``, returning it for convenient inline use."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Ensure ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Ensure ``0 <= value <= 1``."""
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return value


def check_rank(name: str, rank: int, size: int) -> int:
    """Ensure ``rank`` is a valid rank for a communicator of ``size`` ranks."""
    if not isinstance(rank, (int,)) or isinstance(rank, bool):
        raise TypeError(f"{name} must be an int, got {type(rank).__name__}")
    if not (0 <= rank < size):
        raise ValueError(f"{name} must be in [0, {size}), got {rank}")
    return rank


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> Any:
    """Ensure ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        names = (
            expected.__name__
            if isinstance(expected, type)
            else " or ".join(t.__name__ for t in expected)
        )
        raise TypeError(f"{name} must be {names}, got {type(value).__name__}")
    return value
