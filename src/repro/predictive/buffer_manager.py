"""Predicted-sender eager buffer management (Section 2.1 of the paper).

The baseline MPI runtime pre-allocates one eager buffer per peer per process:
``(P - 1) * eager_buffer_bytes`` of memory each, which is the paper's head-
line scalability complaint (160 MB per process at 10 000 ranks).  This policy
instead keeps buffers only for the senders the receiver currently predicts
(plus the most recently seen senders, so the working set adapts), and lets a
message from an unpredicted sender fall back to the slow ask-permission path
(rendezvous), exactly as the paper proposes: "In case of a miss-prediction
... the slow mechanism of asking permission could be used."

The policy does its own memory accounting (buffers it decided to keep) so the
memory-reduction experiment can compare ``peak_buffer_bytes`` against the
baseline's ``(P - 1) * eager_buffer_bytes`` without touching the transport's
internal pools.
"""

from __future__ import annotations

from repro.predictive.online import OnlineMessagePredictor
from repro.runtime.protocol import FlowControlPolicy
from repro.sim.machine import MachineConfig

__all__ = ["PredictiveBufferPolicy"]


class PredictiveBufferPolicy(FlowControlPolicy):
    """Allow eager sends only towards receivers holding a buffer for the sender.

    Parameters
    ----------
    horizon:
        Prediction horizon used when refreshing each receiver's buffer set.
    extra_recent:
        Number of most-recently-seen senders kept buffered in addition to the
        predicted ones (a small victim cache that absorbs prediction misses
        for stable communicating pairs).
    predictor:
        Optional pre-built :class:`OnlineMessagePredictor` (mainly for tests).
    """

    name = "predictive-buffers"

    def __init__(
        self,
        horizon: int = 5,
        extra_recent: int = 2,
        predictor: OnlineMessagePredictor | None = None,
    ) -> None:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if extra_recent < 0:
            raise ValueError(f"extra_recent must be non-negative, got {extra_recent}")
        self.horizon = horizon
        self.extra_recent = extra_recent
        self._predictor = predictor
        self._buffered: list[set[int]] = []
        self._recent: list[list[int]] = []
        self._peak_buffers: list[int] = []
        self.eager_hits = 0
        self.eager_misses = 0

    # ------------------------------------------------------------------
    def bind(self, machine: MachineConfig, nprocs: int) -> None:
        super().bind(machine, nprocs)
        if self._predictor is None:
            self._predictor = OnlineMessagePredictor(nprocs, horizon=self.horizon)
        self._buffered = [set() for _ in range(nprocs)]
        self._recent = [[] for _ in range(nprocs)]
        self._peak_buffers = [0] * nprocs

    @property
    def predictor(self) -> OnlineMessagePredictor:
        """The online predictor feeding the buffer decisions."""
        if self._predictor is None:
            raise RuntimeError("policy is not bound to a transport yet")
        return self._predictor

    def preallocate_peers(self, rank: int) -> list[int]:
        # Nothing is pre-allocated: buffers appear as senders are predicted.
        return []

    # ------------------------------------------------------------------
    def allows_eager(self, src: int, dst: int, nbytes: int, kind: str, now: float) -> bool:
        if nbytes > self.machine.eager_threshold:
            return False
        if src in self._buffered[dst]:
            self.eager_hits += 1
            return True
        self.eager_misses += 1
        return False

    def on_message_delivered(
        self, dst: int, src: int, nbytes: int, tag: int, kind: str, now: float
    ) -> None:
        self.predictor.observe(dst, src, nbytes)
        self._note_senders(dst, (src,))
        self._refresh_buffers(dst)

    def on_burst_delivered(
        self, dst: int, messages: list[tuple[int, int, int, str]], now: float
    ) -> None:
        """Learn a whole delivery burst, refreshing the buffer set once.

        The sender/size streams go through the predictor's amortised
        ``observe_batch`` path; the predicted-sender set is recomputed once
        from the post-burst predictor state (the intermediate sets a
        per-message replay would compute are unobservable inside a burst —
        no eager-send decision can interleave with it).
        """
        self.predictor.observe_batch(
            dst, [m[0] for m in messages], [m[1] for m in messages]
        )
        self._note_senders(dst, (m[0] for m in messages))
        self._refresh_buffers(dst)

    def _note_senders(self, dst: int, senders) -> None:
        """Move ``senders`` (in delivery order) to the front of the LRU list."""
        recent = self._recent[dst]
        for src in senders:
            if src in recent:
                recent.remove(src)
            recent.append(src)
        del recent[: max(0, len(recent) - self.extra_recent)]

    def _refresh_buffers(self, dst: int) -> None:
        """Recompute the buffered-sender set from the current predictions."""
        predicted = self.predictor.predicted_senders(dst, self.horizon)
        self._buffered[dst] = predicted | set(self._recent[dst])
        self._peak_buffers[dst] = max(self._peak_buffers[dst], len(self._buffered[dst]))

    # ------------------------------------------------------------------
    # Memory accounting for the Section 2.1 experiment
    # ------------------------------------------------------------------
    def buffers_held(self, rank: int) -> int:
        """Number of per-peer buffers currently held by ``rank``."""
        return len(self._buffered[rank])

    def peak_buffer_bytes(self, rank: int) -> int:
        """Peak eager-buffer memory committed by ``rank`` under this policy."""
        return self._peak_buffers[rank] * self.machine.eager_buffer_bytes

    def baseline_buffer_bytes(self) -> int:
        """Memory the standard all-peers pre-allocation would commit per rank."""
        return (self.nprocs - 1) * self.machine.eager_buffer_bytes

    def memory_summary(self) -> dict:
        """Aggregate memory comparison across all ranks."""
        peaks = [self.peak_buffer_bytes(r) for r in range(self.nprocs)]
        baseline = self.baseline_buffer_bytes()
        return {
            "policy": self.name,
            "nprocs": self.nprocs,
            "baseline_bytes_per_rank": baseline,
            "mean_peak_bytes_per_rank": sum(peaks) / len(peaks) if peaks else 0,
            "max_peak_bytes_per_rank": max(peaks, default=0),
            "reduction_factor": (baseline / max(max(peaks, default=0), 1)),
            "eager_hits": self.eager_hits,
            "eager_misses": self.eager_misses,
        }
