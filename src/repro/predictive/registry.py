"""Named flow-control policies and stream predictors for scenario specs.

The scenario layer resolves its ``policy`` and ``predictor`` spec nodes here,
so every policy the runtime knows — the standard eager/rendezvous baseline,
the always-rendezvous extreme, and the paper's three prediction-driven
policies — is addressable by name with keyword parameters::

    policy = "standard"
    policy = "credit:horizon=5,credit_cap_bytes=65536"
    predictor = "periodicity:window=24,max_period=256"

The predictor registry defaults ``periodicity`` to the paper's evaluation
configuration (window 24, maximum period 256); the class default of
:class:`~repro.core.predictor.PeriodicityPredictor` itself is unchanged.

Both registries are open: :func:`register_policy` /
:func:`register_predictor` make new components usable from specs, TOML files
and the CLI without touching the scenario layer.
"""

from __future__ import annotations

from typing import Callable

from repro.core.baselines import (
    CyclePredictor,
    LastValuePredictor,
    MarkovPredictor,
    MostFrequentPredictor,
    StridePredictor,
)
from repro.core.predictor import PeriodicityPredictor
from repro.predictive.buffer_manager import PredictiveBufferPolicy
from repro.predictive.credit_policy import PredictiveCreditPolicy
from repro.predictive.rendezvous_bypass import PredictiveRendezvousPolicy
from repro.runtime.protocol import (
    AlwaysRendezvousFlowControl,
    FlowControlPolicy,
    StandardFlowControl,
)
from repro.util.registry import ComponentRegistry

__all__ = [
    "POLICIES",
    "PREDICTORS",
    "create_policy",
    "create_predictor",
    "policy_names",
    "predictor_factory",
    "predictor_names",
    "register_policy",
    "register_predictor",
]

POLICIES = ComponentRegistry("policy")
PREDICTORS = ComponentRegistry("predictor")

POLICIES.register(
    "standard",
    StandardFlowControl,
    description="Classic MPI flow control: eager for small messages, "
    "rendezvous for large ones (the paper's baseline).",
)
POLICIES.register(
    "always-rendezvous",
    AlwaysRendezvousFlowControl,
    aliases=("rendezvous",),
    description="Every message pays the rendezvous handshake (fully "
    "flow-controlled extreme).",
)
POLICIES.register(
    "predictive-credits",
    PredictiveCreditPolicy,
    aliases=("credit", "credits"),
    description="Section 2.2: eager sends consume credits granted from the "
    "receiver's predictions.",
)
POLICIES.register(
    "predictive-buffers",
    PredictiveBufferPolicy,
    aliases=("buffers",),
    description="Section 2.1: eager buffers allocated only for predicted "
    "senders instead of every peer.",
)
POLICIES.register(
    "predictive-rendezvous",
    PredictiveRendezvousPolicy,
    aliases=("bypass",),
    description="Section 2.3: predicted long messages skip the rendezvous "
    "handshake.",
)

PREDICTORS.register(
    "periodicity",
    PeriodicityPredictor,
    defaults={"window_size": 24, "max_period": 256},
    param_aliases={"window": "window_size"},
    description="The paper's DPD periodicity detector + period replay "
    "(defaults: window 24, max period 256).",
)
PREDICTORS.register(
    "last-value",
    LastValuePredictor,
    description="Predicts the last observed value at every horizon.",
)
PREDICTORS.register(
    "most-frequent",
    MostFrequentPredictor,
    param_aliases={"window": "window_size"},
    description="Predicts the most frequent value of a sliding window.",
)
PREDICTORS.register(
    "cycle",
    CyclePredictor,
    description="Replays the cycle of first-seen distinct values.",
)
PREDICTORS.register(
    "markov",
    MarkovPredictor,
    description="Order-k Markov chain over the recent stream.",
)
PREDICTORS.register(
    "stride",
    StridePredictor,
    description="Constant-stride extrapolation (for size streams).",
)


def register_policy(name: str, factory, **kwargs) -> None:
    """Register a flow-control policy factory under ``name``."""
    POLICIES.register(name, factory, **kwargs)


def register_predictor(name: str, factory, **kwargs) -> None:
    """Register a stream-predictor factory under ``name``."""
    PREDICTORS.register(name, factory, **kwargs)


def policy_names() -> list[str]:
    """Canonical names of all registered policies."""
    return POLICIES.names()


def predictor_names() -> list[str]:
    """Canonical names of all registered predictors."""
    return PREDICTORS.names()


def create_policy(kind: str = "standard", **params) -> FlowControlPolicy:
    """Instantiate the flow-control policy registered under ``kind``."""
    return POLICIES.create(kind, **params)


def create_predictor(kind: str = "periodicity", **params):
    """Instantiate the stream predictor registered under ``kind``."""
    return PREDICTORS.create(kind, **params)


def predictor_factory(kind: str = "periodicity", **params) -> Callable[[], object]:
    """A zero-argument factory of fresh predictors (for ``evaluate_stream``)."""
    return lambda: PREDICTORS.create(kind, **params)
