"""Prediction-driven runtime optimisations (Section 2 of the paper).

The paper proposes — but does not implement — three uses of message
prediction inside the MPI runtime:

* **memory reduction** (Section 2.1): allocate per-peer eager buffers only
  for the senders the receiver predicts, instead of for every peer;
* **control flow** (Section 2.2): grant eager-send credits ahead of time to
  predicted senders so unexpected-message memory stays bounded;
* **fast path for long messages** (Section 2.3): let a predicted long message
  skip the rendezvous handshake because the receiver has already prepared the
  buffer.

This package implements all three as flow-control policies pluggable into the
runtime transport, driven by an online per-receiver predictor
(:class:`repro.predictive.online.OnlineMessagePredictor`).  They are the
"deployment impact" extension experiments indexed in DESIGN.md; the paper's
own evaluation stops at prediction accuracy.

Modelling note: in a real implementation the receiver would piggy-back credit
or buffer grants on other messages.  The simulation consults the receiver's
predictor state directly at send time and does not charge extra control
traffic for grants; the latency and memory effects of hits and misses are
modelled (a miss falls back to the slow rendezvous path).
"""

from repro.predictive.buffer_manager import PredictiveBufferPolicy
from repro.predictive.credit_policy import PredictiveCreditPolicy
from repro.predictive.online import OnlineMessagePredictor, PredictedMessage
from repro.predictive.registry import (
    create_policy,
    create_predictor,
    policy_names,
    predictor_factory,
    predictor_names,
    register_policy,
    register_predictor,
)
from repro.predictive.rendezvous_bypass import PredictiveRendezvousPolicy

__all__ = [
    "OnlineMessagePredictor",
    "PredictedMessage",
    "PredictiveBufferPolicy",
    "PredictiveCreditPolicy",
    "PredictiveRendezvousPolicy",
    "create_policy",
    "create_predictor",
    "policy_names",
    "predictor_factory",
    "predictor_names",
    "register_policy",
    "register_predictor",
]
