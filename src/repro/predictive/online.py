"""Online per-receiver prediction of the next incoming messages.

Each receiving rank owns two periodicity predictors — one over the sender
stream, one over the size stream — fed with every message delivered to it.
The runtime policies query the predictor for the next few expected
``(sender, size)`` pairs and make buffer / credit / protocol decisions from
them, exactly the usage the paper sketches in Section 2 ("knowing the next
senders and their message size may be useful", Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.predictor import BasePredictor, PeriodicityPredictor

__all__ = ["PredictedMessage", "OnlineMessagePredictor"]


@dataclass(frozen=True)
class PredictedMessage:
    """One predicted future message at a receiver."""

    sender: int | None
    nbytes: int | None

    @property
    def complete(self) -> bool:
        """Whether both the sender and the size were predicted."""
        return self.sender is not None and self.nbytes is not None


class OnlineMessagePredictor:
    """Tracks and predicts the incoming message stream of every rank.

    Parameters
    ----------
    nprocs:
        Number of ranks.
    horizon:
        How many future messages are predicted per query (the paper uses 5).
    predictor_factory:
        Factory for the underlying stream predictor; defaults to the paper's
        :class:`PeriodicityPredictor` with a short comparison window and a
        generous maximum period.
    """

    def __init__(
        self,
        nprocs: int,
        horizon: int = 5,
        predictor_factory: Callable[[], BasePredictor] | None = None,
    ) -> None:
        if nprocs <= 0:
            raise ValueError(f"nprocs must be positive, got {nprocs}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if predictor_factory is None:
            predictor_factory = lambda: PeriodicityPredictor(window_size=24, max_period=256)
        self.nprocs = nprocs
        self.horizon = horizon
        self._sender_predictors: list[BasePredictor] = [predictor_factory() for _ in range(nprocs)]
        self._size_predictors: list[BasePredictor] = [predictor_factory() for _ in range(nprocs)]
        self.observations = 0

    # ------------------------------------------------------------------
    def observe(self, receiver: int, sender: int, nbytes: int) -> None:
        """Record a message delivered to ``receiver``."""
        self._sender_predictors[receiver].observe(int(sender))
        self._size_predictors[receiver].observe(int(nbytes))
        self.observations += 1

    def observe_batch(self, receiver: int, senders, sizes) -> None:
        """Record a whole burst of messages delivered to ``receiver``.

        Both streams go through the predictors' vectorised ``observe_many``
        path (for the paper's periodicity predictor this is the amortised
        O(max_period)-per-message batch engine), which is how trace replay
        feeds history without paying the per-call overhead of
        :meth:`observe`.
        """
        senders = list(senders) if not hasattr(senders, "__len__") else senders
        sizes = list(sizes) if not hasattr(sizes, "__len__") else sizes
        if len(senders) != len(sizes):
            raise ValueError(
                f"senders and sizes must have equal length, got {len(senders)} != {len(sizes)}"
            )
        if not len(senders):
            return
        self._sender_predictors[receiver].observe_many(senders)
        self._size_predictors[receiver].observe_many(sizes)
        self.observations += len(senders)

    def predict(self, receiver: int, horizon: int | None = None) -> list[PredictedMessage]:
        """Predict the next messages expected at ``receiver``."""
        h = self.horizon if horizon is None else int(horizon)
        senders = self._sender_predictors[receiver].predict(h)
        sizes = self._size_predictors[receiver].predict(h)
        return [
            PredictedMessage(
                sender=None if s is None else int(s),
                nbytes=None if b is None else int(b),
            )
            for s, b in zip(senders, sizes)
        ]

    def predicted_senders(self, receiver: int, horizon: int | None = None) -> set[int]:
        """The set of senders expected among the next messages at ``receiver``."""
        return {
            p.sender for p in self.predict(receiver, horizon) if p.sender is not None
        }

    def predicted_bytes_from(self, receiver: int, sender: int, horizon: int | None = None) -> int:
        """Total predicted bytes arriving at ``receiver`` from ``sender``."""
        total = 0
        for p in self.predict(receiver, horizon):
            if p.sender == sender and p.nbytes is not None:
                total += p.nbytes
        return total

    def expects_message(
        self, receiver: int, sender: int, nbytes: int | None = None, horizon: int | None = None
    ) -> bool:
        """Whether ``receiver`` predicts a message from ``sender`` (of ``nbytes``)."""
        for p in self.predict(receiver, horizon):
            if p.sender != sender:
                continue
            if nbytes is None or p.nbytes is None or p.nbytes == nbytes:
                return True
        return False
