"""Prediction-driven credit flow control (Section 2.2 of the paper).

The scalability risk of the standard eager protocol is that any number of
senders may push short messages at one receiver without asking, so the
receiver's unexpected-message memory is unbounded.  The paper proposes that
the receiver *grant credits* to the senders it predicts, sized by the
predicted messages; a sender without credit must fall back to the slow
ask-permission (rendezvous) path, which bounds the receiver's memory at the
price of extra latency on mispredicted messages.

This policy implements that scheme on top of
:class:`repro.runtime.credits.CreditManager`: every delivered message refreshes
the receiver's predictions and grants credits for the predicted next messages;
``allows_eager`` consumes credit when available.
"""

from __future__ import annotations

from repro.predictive.online import OnlineMessagePredictor
from repro.runtime.credits import CreditManager
from repro.runtime.protocol import FlowControlPolicy
from repro.sim.machine import MachineConfig

__all__ = ["PredictiveCreditPolicy"]


class PredictiveCreditPolicy(FlowControlPolicy):
    """Eager sends require credits granted from the receiver's predictions.

    Parameters
    ----------
    horizon:
        Prediction horizon used when granting credits.
    credit_cap_bytes:
        Upper bound on the outstanding credit per (receiver, sender) pair;
        this is the receiver's per-sender memory exposure.
    bootstrap_credit_bytes:
        Credit implicitly available to every pair before any prediction has
        been made (so applications can start up); set to 0 for a strict
        predictions-only regime.
    """

    name = "predictive-credits"

    def __init__(
        self,
        horizon: int = 5,
        credit_cap_bytes: int = 64 * 1024,
        bootstrap_credit_bytes: int = 4 * 1024,
        predictor: OnlineMessagePredictor | None = None,
    ) -> None:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if credit_cap_bytes <= 0:
            raise ValueError(f"credit_cap_bytes must be positive, got {credit_cap_bytes}")
        if bootstrap_credit_bytes < 0:
            raise ValueError(
                f"bootstrap_credit_bytes must be non-negative, got {bootstrap_credit_bytes}"
            )
        self.horizon = horizon
        self.credit_cap_bytes = int(credit_cap_bytes)
        self.bootstrap_credit_bytes = int(bootstrap_credit_bytes)
        self._predictor = predictor
        self.credits = CreditManager()
        self.eager_granted = 0
        self.eager_denied = 0

    # ------------------------------------------------------------------
    def bind(self, machine: MachineConfig, nprocs: int) -> None:
        super().bind(machine, nprocs)
        if self._predictor is None:
            self._predictor = OnlineMessagePredictor(nprocs, horizon=self.horizon)

    @property
    def predictor(self) -> OnlineMessagePredictor:
        """The online predictor driving credit grants."""
        if self._predictor is None:
            raise RuntimeError("policy is not bound to a transport yet")
        return self._predictor

    def preallocate_peers(self, rank: int) -> list[int]:
        return []

    # ------------------------------------------------------------------
    def allows_eager(self, src: int, dst: int, nbytes: int, kind: str, now: float) -> bool:
        if nbytes > self.machine.eager_threshold:
            return False
        if nbytes <= self.bootstrap_credit_bytes and self.credits.available(dst, src) == 0:
            # Start-up allowance: tiny messages may flow before the receiver
            # has learned anything (mirrors real implementations that always
            # reserve a minimal per-peer credit).
            self.eager_granted += 1
            return True
        if self.credits.try_consume(dst, src, nbytes):
            self.eager_granted += 1
            return True
        self.eager_denied += 1
        return False

    def on_message_delivered(
        self, dst: int, src: int, nbytes: int, tag: int, kind: str, now: float
    ) -> None:
        self.predictor.observe(dst, src, nbytes)
        self._grant_from_predictions(dst)

    def on_burst_delivered(
        self, dst: int, messages: list[tuple[int, int, int, str]], now: float
    ) -> None:
        """Replay a delivery burst message by message.

        Credit grants are *cumulative* (each one adds to the account, capped
        at ``credit_cap_bytes``) and each grant is sized by the predictions
        at that point in the stream, so collapsing a burst into one
        post-burst grant would leave a different balance than per-message
        delivery — and whether same-timestamp deliveries coalesce would then
        change later eager decisions.  This hook therefore interleaves
        observe and grant exactly like :meth:`on_message_delivered`; the
        predictor's batch-observe path cannot be used for this policy.
        """
        observe = self.predictor.observe
        grant = self._grant_from_predictions
        for src, nbytes, _tag, _kind in messages:
            observe(dst, src, nbytes)
            grant(dst)

    def _grant_from_predictions(self, dst: int) -> None:
        """Grant credits to the senders currently predicted at ``dst``."""
        for predicted in self.predictor.predict(dst, self.horizon):
            if predicted.sender is None:
                continue
            grant = predicted.nbytes if predicted.nbytes is not None else self.machine.eager_threshold
            account = self.credits.account(dst, predicted.sender)
            headroom = self.credit_cap_bytes - account.available_bytes
            if headroom > 0:
                self.credits.grant(dst, predicted.sender, min(int(grant), headroom))

    # ------------------------------------------------------------------
    def exposure_summary(self) -> dict:
        """Memory-exposure comparison for the Section 2.2 experiment."""
        outstanding = [a.available_bytes for a in self.credits.accounts()]
        return {
            "policy": self.name,
            "nprocs": self.nprocs,
            "eager_granted": self.eager_granted,
            "eager_denied": self.eager_denied,
            "total_granted_bytes": self.credits.total_granted_bytes(),
            "max_outstanding_credit_bytes": max(outstanding, default=0),
            "credit_cap_bytes": self.credit_cap_bytes,
        }
