"""Predictive rendezvous bypass for long messages (Section 2.3 of the paper).

Long messages normally pay a rendezvous handshake (RTS -> CTS -> data)
because the sender cannot assume the receiver has memory for them.  The paper
proposes that the receiver, having *predicted* an incoming long message from
a given sender, allocate the buffer ahead of time and tell the sender, so the
long message can be sent on the eager fast path "as if it were a short one".

This policy grants the fast path to a large message when the destination's
online predictor currently expects a message of that size from that sender;
everything else follows the standard size rule.  The latency benefit shows up
in the runtime statistics as large messages accounted under the eager latency
accumulator instead of the rendezvous one.
"""

from __future__ import annotations

from repro.predictive.online import OnlineMessagePredictor
from repro.runtime.protocol import FlowControlPolicy
from repro.sim.machine import MachineConfig

__all__ = ["PredictiveRendezvousPolicy"]


class PredictiveRendezvousPolicy(FlowControlPolicy):
    """Let predicted long messages skip the rendezvous handshake.

    Parameters
    ----------
    horizon:
        Prediction horizon consulted when a long message is about to be sent.
    match_size:
        If True (default), the bypass requires the predicted size to match the
        actual size (the receiver pre-allocated exactly that buffer); if
        False, predicting the sender alone is enough.
    """

    name = "predictive-rendezvous"

    def __init__(
        self,
        horizon: int = 5,
        match_size: bool = True,
        predictor: OnlineMessagePredictor | None = None,
    ) -> None:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.horizon = horizon
        self.match_size = bool(match_size)
        self._predictor = predictor
        self.bypasses = 0
        self.fallbacks = 0

    def bind(self, machine: MachineConfig, nprocs: int) -> None:
        super().bind(machine, nprocs)
        if self._predictor is None:
            self._predictor = OnlineMessagePredictor(nprocs, horizon=self.horizon)

    @property
    def predictor(self) -> OnlineMessagePredictor:
        """The online predictor consulted for bypass decisions."""
        if self._predictor is None:
            raise RuntimeError("policy is not bound to a transport yet")
        return self._predictor

    # ------------------------------------------------------------------
    def allows_eager(self, src: int, dst: int, nbytes: int, kind: str, now: float) -> bool:
        if nbytes <= self.machine.eager_threshold:
            return True
        expected = self.predictor.expects_message(
            dst, src, nbytes if self.match_size else None, self.horizon
        )
        if expected:
            self.bypasses += 1
            return True
        self.fallbacks += 1
        return False

    def on_message_delivered(
        self, dst: int, src: int, nbytes: int, tag: int, kind: str, now: float
    ) -> None:
        self.predictor.observe(dst, src, nbytes)

    def on_burst_delivered(
        self, dst: int, messages: list[tuple[int, int, int, str]], now: float
    ) -> None:
        """Feed a whole delivery burst through the predictor's batch path."""
        self.predictor.observe_batch(
            dst, [m[0] for m in messages], [m[1] for m in messages]
        )

    # ------------------------------------------------------------------
    def bypass_summary(self) -> dict:
        """Counters for the Section 2.3 experiment."""
        total = self.bypasses + self.fallbacks
        return {
            "policy": self.name,
            "long_messages": total,
            "bypasses": self.bypasses,
            "fallbacks": self.fallbacks,
            "bypass_rate": self.bypasses / total if total else 0.0,
        }
