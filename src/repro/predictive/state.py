"""Predictor-state extraction and resident-size accounting.

The serving plane (:mod:`repro.serve`) keeps one predictor pair per live
stream and must (a) bound the total resident memory of its stream tables and
(b) move a stream's state between processes byte-exactly (snapshot/restore,
shard drains).  Both needs are predictor-agnostic — any registry predictor
can be served — so this module provides the two generic primitives:

* :func:`state_nbytes` — a deep resident-size estimate of an arbitrary
  predictor object graph (NumPy buffers counted by ``nbytes``, containers
  and ``__dict__``/``__slots__`` objects walked recursively, shared objects
  counted once);
* :func:`freeze_state` / :func:`thaw_state` — a byte-exact state codec
  (pickle protocol 4) used by the snapshot format of
  :mod:`repro.serve.snapshot`.  Restoring a frozen state reproduces the
  exact object state, so subsequent predictions are bit-identical — the
  serve plane's snapshot round-trip invariant rides on this.

The size estimate is deterministic for a given object graph (it never reads
clocks or addresses beyond identity-based deduplication), which keeps the
LRU tables' eviction decisions reproducible.
"""

from __future__ import annotations

import pickle
import sys

import numpy as np

__all__ = ["state_nbytes", "freeze_state", "thaw_state", "PICKLE_PROTOCOL"]

#: Pickle protocol used for frozen predictor state (fixed so snapshots
#: written by newer interpreters stay loadable by the documented format).
PICKLE_PROTOCOL = 4

#: Primitive types whose ``sys.getsizeof`` is the whole story.
_ATOMS = (int, float, bool, bytes, str, complex, type(None))


def state_nbytes(obj) -> int:
    """Deep resident-size estimate (bytes) of a predictor object graph.

    Walks containers, ``__dict__`` and ``__slots__`` attributes; NumPy
    arrays contribute their buffer size (``nbytes``) plus the array-object
    overhead (views share their base's buffer, which is counted once via
    the identity memo).  Objects reachable twice are counted once.

    This is an *estimate* — interpreter-internal sharing (small-int cache,
    string interning) is deliberately ignored — but it is stable for a
    fixed object graph, monotone in history growth, and cheap enough to
    refresh periodically on the serve ingest path.
    """
    seen: set[int] = set()
    return _deep_nbytes(obj, seen)


def _deep_nbytes(obj, seen: set[int]) -> int:
    identity = id(obj)
    if identity in seen:
        return 0
    seen.add(identity)
    if isinstance(obj, np.ndarray):
        total = int(sys.getsizeof(obj))
        base = obj.base
        if base is None:
            # getsizeof already includes the owned buffer for ndarrays,
            # but not always for non-contiguous ones; be explicit instead.
            total = 128 + int(obj.nbytes)
        else:
            total = 128 + _deep_nbytes(base, seen)
        return total
    if isinstance(obj, _ATOMS):
        return int(sys.getsizeof(obj))
    if isinstance(obj, (list, tuple, set, frozenset)):
        return int(sys.getsizeof(obj)) + sum(_deep_nbytes(item, seen) for item in obj)
    if isinstance(obj, dict):
        return int(sys.getsizeof(obj)) + sum(
            _deep_nbytes(key, seen) + _deep_nbytes(value, seen) for key, value in obj.items()
        )
    total = int(sys.getsizeof(obj))
    attributes = getattr(obj, "__dict__", None)
    if attributes is not None:
        total += _deep_nbytes(attributes, seen)
    slots = getattr(type(obj), "__slots__", ())
    if isinstance(slots, str):
        slots = (slots,)
    for name in slots:
        if hasattr(obj, name):
            total += _deep_nbytes(getattr(obj, name), seen)
    return total


def freeze_state(obj) -> bytes:
    """Serialise a predictor state object graph byte-exactly."""
    return pickle.dumps(obj, protocol=PICKLE_PROTOCOL)


def thaw_state(blob: bytes):
    """Inverse of :func:`freeze_state` (exact object state back)."""
    return pickle.loads(blob)
