"""repro — reproduction of "Exploring the Predictability of MPI Messages".

Freitag, Caubet, Farrera, Cortes, Labarta — IPDPS 2003.

The package is organised bottom-up:

* :mod:`repro.sim` — discrete-event simulation engine and machine/network
  cost models (the stand-in for the paper's IBM RS/6000 + MPICH testbed).
* :mod:`repro.mpi` — an MPI-like library (point-to-point, collectives,
  requests) whose operations rank programs ``yield`` to the engine.
* :mod:`repro.runtime` — eager/rendezvous protocols, matching queues, eager
  buffer pools, credits and runtime statistics.
* :mod:`repro.trace` — the two-level (logical/physical) tracer and stream
  extraction.
* :mod:`repro.workloads` — communication skeletons of NAS BT/CG/LU/IS and
  ASCI Sweep3D plus synthetic workloads.
* :mod:`repro.core` — the paper's contribution: the dynamic periodicity
  detector (DPD), the multi-step message predictor, baseline predictors and
  the accuracy evaluation harness.
* :mod:`repro.predictive` — the Section 2 prediction-driven runtime policies
  (buffer management, credits, rendezvous bypass) and the policy/predictor
  registries.
* :mod:`repro.scenario` — the declarative front door: ``ScenarioSpec`` trees
  (Python / dicts / TOML / string shorthand), the ``Scenario`` run facade,
  and the ``Sweep`` expansion + sharded-execution engine.
* :mod:`repro.analysis` — regeneration of Table 1 and Figures 1-4, the
  extension experiments and the ablations.

Quickstart
----------
>>> from repro import Scenario
>>> result = Scenario({"workload": "bt.9:scale=0.2", "seed": 7}).run()
>>> result.predict("sender").accuracy(1) > 0.9
True

(`run_workload` remains available as a compatibility shim over the same
machinery; see :mod:`repro.workloads.runner`.)
"""

# numpy is the package's only hard dependency (typed event queue, vectorised
# cohort engine, columnar traces).  Older releases lack APIs the kernels use;
# fail at import with an actionable message instead of deep inside one.
_NUMPY_MIN = (1, 22)
try:
    import numpy as _numpy
except ImportError as _error:  # pragma: no cover - environment-dependent
    raise ImportError(
        "repro requires numpy >= "
        + ".".join(str(part) for part in _NUMPY_MIN)
        + " (install it with 'pip install numpy')"
    ) from _error
if tuple(int(part) for part in _numpy.__version__.split(".")[:2]) < _NUMPY_MIN:
    raise ImportError(  # pragma: no cover - environment-dependent
        f"repro requires numpy >= {'.'.join(str(p) for p in _NUMPY_MIN)}, "
        f"found {_numpy.__version__}; upgrade with 'pip install -U numpy'"
    )
del _numpy

from repro.core.baselines import (
    CyclePredictor,
    LastValuePredictor,
    MarkovPredictor,
    MostFrequentPredictor,
    StridePredictor,
)
from repro.core.dpd import DynamicPeriodicityDetector
from repro.core.evaluation import evaluate_stream, evaluate_unordered
from repro.core.predictor import PeriodicityPredictor
from repro.scenario import (
    MachineSpec,
    NetworkSpec,
    PolicySpec,
    PredictorSpec,
    Scenario,
    ScenarioResult,
    ScenarioSpec,
    Sweep,
    TraceSpec,
    WorkloadSpec,
    load_sweep,
)
from repro.sim.engine import SimulationResult, Simulator
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkConfig, NetworkModel
from repro.trace.tracer import TwoLevelTracer
from repro.workloads.registry import create_workload, paper_configurations, workload_names
from repro.workloads.runner import run_workload

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # simulation substrate
    "Simulator",
    "SimulationResult",
    "MachineConfig",
    "NetworkConfig",
    "NetworkModel",
    "TwoLevelTracer",
    # workloads
    "create_workload",
    "run_workload",
    "workload_names",
    "paper_configurations",
    # declarative scenario API
    "Scenario",
    "ScenarioResult",
    "ScenarioSpec",
    "WorkloadSpec",
    "MachineSpec",
    "NetworkSpec",
    "PolicySpec",
    "PredictorSpec",
    "TraceSpec",
    "Sweep",
    "load_sweep",
    # predictor (the paper's contribution)
    "DynamicPeriodicityDetector",
    "PeriodicityPredictor",
    "LastValuePredictor",
    "MostFrequentPredictor",
    "CyclePredictor",
    "MarkovPredictor",
    "StridePredictor",
    "evaluate_stream",
    "evaluate_unordered",
]
