"""repro — reproduction of "Exploring the Predictability of MPI Messages".

Freitag, Caubet, Farrera, Cortes, Labarta — IPDPS 2003.

The package is organised bottom-up:

* :mod:`repro.sim` — discrete-event simulation engine and machine/network
  cost models (the stand-in for the paper's IBM RS/6000 + MPICH testbed).
* :mod:`repro.mpi` — an MPI-like library (point-to-point, collectives,
  requests) whose operations rank programs ``yield`` to the engine.
* :mod:`repro.runtime` — eager/rendezvous protocols, matching queues, eager
  buffer pools, credits and runtime statistics.
* :mod:`repro.trace` — the two-level (logical/physical) tracer and stream
  extraction.
* :mod:`repro.workloads` — communication skeletons of NAS BT/CG/LU/IS and
  ASCI Sweep3D plus synthetic workloads.
* :mod:`repro.core` — the paper's contribution: the dynamic periodicity
  detector (DPD), the multi-step message predictor, baseline predictors and
  the accuracy evaluation harness.
* :mod:`repro.predictive` — the Section 2 prediction-driven runtime policies
  (buffer management, credits, rendezvous bypass).
* :mod:`repro.analysis` — regeneration of Table 1 and Figures 1-4, the
  extension experiments and the ablations.

Quickstart
----------
>>> from repro import PeriodicityPredictor, create_workload, run_workload
>>> from repro.trace import sender_stream
>>> from repro.core import evaluate_stream
>>> workload = create_workload("bt", nprocs=9, scale=0.2)
>>> result = run_workload(workload, seed=7)
>>> stream = sender_stream(result.trace_for(3).logical)
>>> accuracy = evaluate_stream(
...     stream, lambda: PeriodicityPredictor(window_size=24, max_period=256), horizon=5
... )
>>> accuracy.accuracy(1) > 0.9
True
"""

from repro.core.baselines import (
    CyclePredictor,
    LastValuePredictor,
    MarkovPredictor,
    MostFrequentPredictor,
    StridePredictor,
)
from repro.core.dpd import DynamicPeriodicityDetector
from repro.core.evaluation import evaluate_stream, evaluate_unordered
from repro.core.predictor import PeriodicityPredictor
from repro.sim.engine import SimulationResult, Simulator
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkConfig, NetworkModel
from repro.trace.tracer import TwoLevelTracer
from repro.workloads.registry import create_workload, paper_configurations, workload_names
from repro.workloads.runner import run_workload

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # simulation substrate
    "Simulator",
    "SimulationResult",
    "MachineConfig",
    "NetworkConfig",
    "NetworkModel",
    "TwoLevelTracer",
    # workloads
    "create_workload",
    "run_workload",
    "workload_names",
    "paper_configurations",
    # predictor (the paper's contribution)
    "DynamicPeriodicityDetector",
    "PeriodicityPredictor",
    "LastValuePredictor",
    "MostFrequentPredictor",
    "CyclePredictor",
    "MarkovPredictor",
    "StridePredictor",
    "evaluate_stream",
    "evaluate_unordered",
]
