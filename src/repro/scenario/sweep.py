"""The sweep engine: expand a spec template into cells and run them all.

A :class:`Sweep` describes a family of scenarios three ways, freely combined:

* ``base`` — a template :class:`~repro.scenario.spec.ScenarioSpec`;
* ``grid`` — an ordered mapping of dotted spec paths to value lists
  (``{"workload.nprocs": [4, 9], "network.overrides.jitter_sigma":
  [0.0, 0.2]}``), expanded as a cartesian product over patched copies of
  ``base``;
* ``cells`` — an explicit list of cells, each either a full spec or a patch
  dict deep-merged over ``base`` (so a cell states only what differs).

:meth:`Sweep.expand` materialises the cell list in deterministic order (grid
cells first, in row-major product order; explicit cells after).  Every cell
is an independent seeded simulation, so :meth:`Sweep.run_all` with
``jobs > 1`` shards the cells over a :class:`concurrent.futures.ProcessPoolExecutor`
— longest-expected-first submission, results merged back in expansion
order — and is bit-identical to a sequential run, the same contract the
paper-sweep runner has had since the sharded experiment context.

TOML form (``repro sweep my_sweep.toml``)::

    name = "jitter-sweep"

    [base]
    seed = 2003
    workload = "bt.4:scale=0.05"

    [grid]
    "network.overrides.jitter_sigma" = [0.0, 0.2, 0.5]

    [[cells]]
    workload = "cg:nprocs=4,scale=0.05"
    policy = "credit:horizon=5"

A TOML file without ``base``/``grid``/``cells`` keys is read as a single
:class:`ScenarioSpec` and becomes a one-cell sweep.
"""

from __future__ import annotations

import copy
import itertools
import tomllib
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Mapping, Sequence

from repro.scenario.scenario import Scenario, ScenarioResult
from repro.scenario.spec import ScenarioSpec

__all__ = ["Sweep", "load_sweep"]


def _run_spec(spec: ScenarioSpec) -> ScenarioResult:
    """Run one cell (module-level so the process pool can pickle it)."""
    return Scenario(spec).run()


def _set_path(data: dict, path: str, value) -> None:
    """Set ``value`` at a dotted ``path`` inside nested dicts (creating)."""
    keys = [key for key in path.split(".") if key]
    if not keys:
        raise ValueError("empty grid path")
    node = data
    for key in keys[:-1]:
        child = node.get(key)
        if child is None:
            child = node[key] = {}
        elif not isinstance(child, dict):
            raise ValueError(
                f"grid path {path!r} descends into non-table value {child!r}"
            )
        node = child
    node[keys[-1]] = value


def _deep_merge(base: dict, patch: Mapping) -> dict:
    """Recursively merge ``patch`` over ``base`` (tables merge, leaves replace)."""
    merged = copy.deepcopy(base)
    for key, value in patch.items():
        if (
            isinstance(value, Mapping)
            and isinstance(merged.get(key), dict)
        ):
            merged[key] = _deep_merge(merged[key], value)
        else:
            merged[key] = copy.deepcopy(value) if isinstance(value, (dict, list)) else value
    return merged


class Sweep:
    """A family of scenario cells expanded from a base spec, a grid, and
    explicit cells.

    Parameters
    ----------
    base:
        Template spec the grid and patch-style cells derive from (anything
        :meth:`ScenarioSpec.coerce` accepts).  Optional when every cell is a
        full spec.
    grid:
        Ordered mapping of dotted spec paths to value lists; expanded as a
        cartesian product over ``base`` in row-major order (first path varies
        slowest).
    cells:
        Explicit cells: full specs, or patch dicts merged over ``base``.
    name:
        Display name of the sweep.
    """

    def __init__(
        self,
        base=None,
        grid: Mapping[str, Sequence] | None = None,
        cells: Sequence | None = None,
        name: str | None = None,
    ) -> None:
        self.base = ScenarioSpec.coerce(base) if base is not None else None
        self.grid = {str(path): list(values) for path, values in (grid or {}).items()}
        self.name = name
        self.cells: list[ScenarioSpec] = []
        for cell in cells or ():
            if isinstance(cell, Mapping) and self.base is not None:
                merged = _deep_merge(self.base.to_dict(), cell)
                self.cells.append(ScenarioSpec.from_dict(merged))
            else:
                self.cells.append(ScenarioSpec.coerce(cell))
        if self.grid and self.base is None:
            raise ValueError("a grid sweep needs a base spec to patch")
        for path, values in self.grid.items():
            if not values:
                raise ValueError(f"grid path {path!r} has no values")

    @classmethod
    def from_dict(cls, data: Mapping) -> "Sweep":
        """Build a sweep from its dict (TOML) form.

        A mapping without ``base``/``grid``/``cells`` keys is interpreted as
        a single scenario spec.
        """
        if not any(key in data for key in ("base", "grid", "cells")):
            spec = ScenarioSpec.from_dict(data)
            return cls(cells=[spec], name=spec.name)
        data = dict(data)
        name = data.pop("name", None)
        base = data.pop("base", None)
        grid = data.pop("grid", None)
        cells = data.pop("cells", None)
        if data:
            raise ValueError(
                f"unknown sweep keys {sorted(data)}; expected "
                "name/base/grid/cells (or a bare scenario spec)"
            )
        return cls(base=base, grid=grid, cells=cells, name=name)

    @classmethod
    def from_toml(cls, path: str | Path) -> "Sweep":
        """Load a sweep (or a single scenario) from a TOML file."""
        with Path(path).open("rb") as handle:
            return cls.from_dict(tomllib.load(handle))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Sweep(name={self.name!r}, grid_paths={list(self.grid)}, "
            f"cells={len(self.cells)})"
        )

    # ------------------------------------------------------------------
    def expand(self) -> list[ScenarioSpec]:
        """The concrete cell list, in deterministic order.

        Grid cells come first (row-major cartesian order), explicit cells
        after.  A sweep with neither grid nor cells is just ``[base]``.
        """
        specs: list[ScenarioSpec] = []
        if self.grid:
            base_dict = self.base.to_dict()
            paths = list(self.grid)
            for combo in itertools.product(*(self.grid[path] for path in paths)):
                patched = copy.deepcopy(base_dict)
                for path, value in zip(paths, combo):
                    _set_path(patched, path, value)
                specs.append(ScenarioSpec.from_dict(patched))
        elif self.base is not None and not self.cells:
            specs.append(self.base)
        specs.extend(self.cells)
        trace_paths = [spec.trace.path for spec in specs if spec.trace.path]
        if len(trace_paths) != len(set(trace_paths)):
            # Typically a base trace.path inherited by every expanded cell:
            # sequentially the last cell silently wins, sharded the workers
            # race on one file.  Use `repro sweep --out/--save-traces` (or
            # per-cell paths) instead.
            raise ValueError(
                "multiple sweep cells share a trace save path; give each "
                "cell its own trace.path or save traces after run_all()"
            )
        return specs

    def run_all(self, jobs: int | None = None) -> list[ScenarioResult]:
        """Run every cell and return results in :meth:`expand` order.

        ``jobs`` of ``None``/``1`` runs sequentially in-process; ``jobs > 1``
        fans the cells over a process pool (longest-expected-first
        submission, deterministic merge).  Each cell derives all its
        randomness from its own spec, so sharded results are bit-identical
        to sequential ones.
        """
        specs = self.expand()
        if not specs:
            return []
        if jobs is None or jobs <= 1 or len(specs) == 1:
            return [_run_spec(spec) for spec in specs]
        by_cost = sorted(
            range(len(specs)), key=lambda i: specs[i].cost_hint(), reverse=True
        )
        results: list[ScenarioResult | None] = [None] * len(specs)
        with ProcessPoolExecutor(max_workers=min(jobs, len(specs))) as pool:
            futures = {index: pool.submit(_run_spec, specs[index]) for index in by_cost}
            for index in range(len(specs)):
                results[index] = futures[index].result()
        return results  # type: ignore[return-value]


def load_sweep(path: str | Path) -> Sweep:
    """Read ``path`` as a sweep TOML (single-scenario files become one cell)."""
    return Sweep.from_toml(path)
