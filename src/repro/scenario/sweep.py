"""The sweep engine: expand a spec template into cells and run them all.

A :class:`Sweep` describes a family of scenarios three ways, freely combined:

* ``base`` — a template :class:`~repro.scenario.spec.ScenarioSpec`;
* ``grid`` — an ordered mapping of dotted spec paths to value lists
  (``{"workload.nprocs": [4, 9], "network.overrides.jitter_sigma":
  [0.0, 0.2]}``), expanded as a cartesian product over patched copies of
  ``base``;
* ``cells`` — an explicit list of cells, each either a full spec or a patch
  dict deep-merged over ``base`` (so a cell states only what differs).

Grid paths are validated against the spec schema at construction time, so a
typo (``"network.overrides.jitter_sgima"``) fails immediately with the
nearest valid paths instead of silently materialising a table nobody reads.

:meth:`Sweep.expand` materialises the cell list in deterministic order (grid
cells first, in row-major product order; explicit cells after).  Every cell
is an independent seeded simulation, so :meth:`Sweep.run_all` with
``jobs > 1`` shards the cells over a :class:`concurrent.futures.ProcessPoolExecutor`
— longest-expected-first submission, results merged back in expansion
order — and is bit-identical to a sequential run, the same contract the
paper-sweep runner has had since the sharded experiment context.

Fault tolerance: each cell runs isolated.  A cell that raises produces a
structured :class:`CellFailure` in the result list (the other cells still
run and return); transient failures — a worker process dying, a cell blowing
its wall-clock budget — are retried with exponential backoff; with an output
directory, finished cells are checkpointed on disk (``cells/<hash>.json``,
keyed by :meth:`ScenarioSpec.content_hash`) so ``resume=True`` re-runs only
the cells that have not completed.  See :doc:`docs/scenarios` for the full
failure-handling contract.

TOML form (``repro sweep my_sweep.toml``)::

    name = "jitter-sweep"

    [base]
    seed = 2003
    workload = "bt.4:scale=0.05"

    [grid]
    "network.overrides.jitter_sigma" = [0.0, 0.2, 0.5]

    [[cells]]
    workload = "cg:nprocs=4,scale=0.05"
    policy = "credit:horizon=5"

A TOML file without ``base``/``grid``/``cells`` keys is read as a single
:class:`ScenarioSpec` and becomes a one-cell sweep.
"""

from __future__ import annotations

import copy
import dataclasses
import difflib
import itertools
import json
import os
import time
import tomllib
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.scenario.scenario import Scenario, ScenarioResult
from repro.scenario.spec import ScenarioSpec
from repro.sim.errors import TimeLimitExceeded
from repro.sim.faults import FaultConfig
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkConfig

__all__ = [
    "CachedCell",
    "CellFailure",
    "Sweep",
    "SweepAborted",
    "cell_record",
    "load_sweep",
    "sweep_accuracy_table",
]


def _run_spec(spec: ScenarioSpec) -> ScenarioResult:
    """Run one cell (module-level so the process pool can pickle it)."""
    return Scenario(spec).run()


def _run_cell(spec: ScenarioSpec, timeout: float | None) -> ScenarioResult:
    """Run one cell under an optional wall-clock budget.

    The budget rides on the simulator's own ``max_wall_seconds`` guard, so a
    livelocked cell kills *itself* (with :class:`TimeLimitExceeded`) instead
    of leaving a hung worker process behind — and the guard works the same
    whether the cell runs in-process or in a pool worker.  The returned
    result keeps the caller's original spec so checkpoints and summaries are
    byte-identical with and without a timeout in force.
    """
    run_spec = spec
    if timeout is not None and (
        spec.max_wall_seconds is None or timeout < spec.max_wall_seconds
    ):
        run_spec = spec.with_overrides(max_wall_seconds=timeout)
    result = Scenario(run_spec).run()
    if run_spec is not spec:
        result.spec = spec
    return result


# ----------------------------------------------------------------------
# Cell outcomes
# ----------------------------------------------------------------------
@dataclass
class CellFailure:
    """One cell that did not produce a result.

    Appears in :meth:`Sweep.run_all` output in place of the cell's
    :class:`ScenarioResult`; the other cells are unaffected.  The record is
    deterministic (exception type and message, no wall times), so a summary
    that includes failures is still byte-stable across reruns.
    """

    spec: ScenarioSpec
    error_type: str
    error_message: str
    attempts: int = 1

    @property
    def label(self) -> str:
        return self.spec.label

    @property
    def spec_hash(self) -> str:
        return self.spec.content_hash()

    def record(self) -> dict:
        """Deterministic JSON-able form (what ``summary.json`` stores)."""
        return {
            "label": self.label,
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec_hash,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "attempts": self.attempts,
        }


@dataclass
class CachedCell:
    """A cell satisfied from the on-disk checkpoint instead of re-running.

    Holds the stored :func:`cell_record` payload; the heavyweight
    :class:`ScenarioResult` (traces, streams) is gone — a resumed sweep
    trades re-simulation for summary-level results on the finished cells.
    """

    spec: ScenarioSpec
    record: dict = field(repr=False)

    @property
    def label(self) -> str:
        return self.spec.label

    @property
    def spec_hash(self) -> str:
        return self.spec.content_hash()


class SweepAborted(RuntimeError):
    """Raised by ``run_all(fail_fast=True)`` on the first cell failure.

    Carries the triggering :class:`CellFailure`; pending cells were cancelled
    and the worker pool was shut down before this was raised.
    """

    def __init__(self, failure: CellFailure) -> None:
        self.failure = failure
        super().__init__(
            f"sweep aborted (fail-fast): cell {failure.label!r} failed with "
            f"{failure.error_type}: {failure.error_message}"
        )


def cell_record(scenario_result: ScenarioResult) -> dict:
    """Deterministic JSON-able record of one finished sweep cell.

    This is both the per-cell payload of ``repro sweep``'s ``summary.json``
    and the checkpoint format of the resumable manifest.  Traceless runs
    (``trace.enabled = false``) get ``stream: null``; fault-injected runs
    carry the injector's counters.
    """
    stats = scenario_result.stats.summary()
    record = {
        "label": scenario_result.label,
        "spec": scenario_result.spec.to_dict(),
        "spec_hash": scenario_result.spec.content_hash(),
        "makespan": scenario_result.makespan,
        "stats": stats,
        "representative_rank": scenario_result.representative_rank,
    }
    if scenario_result.result.tracer is not None:
        stream = scenario_result.summary()
        record["stream"] = {
            "total_messages": stream.total_messages,
            "p2p_messages": stream.p2p_messages,
            "collective_messages": stream.collective_messages,
            "num_distinct_senders": stream.num_distinct_senders,
            "num_distinct_sizes": stream.num_distinct_sizes,
        }
    else:
        record["stream"] = None
    if scenario_result.result.fault_stats is not None:
        record["fault_stats"] = scenario_result.result.fault_stats
    return record


# ----------------------------------------------------------------------
# Resumable on-disk manifest
# ----------------------------------------------------------------------
class _Manifest:
    """Content-addressed checkpoint store under ``<out>/cells/``.

    One JSON file per *successful* cell, named by the spec's
    :meth:`~ScenarioSpec.content_hash` — failures are never checkpointed, so
    a resumed sweep re-runs exactly the cells that have not succeeded yet,
    regardless of what changed between invocations.
    """

    def __init__(self, out: str | Path) -> None:
        self.dir = Path(out) / "cells"
        self.dir.mkdir(parents=True, exist_ok=True)

    def load(self, spec_hash: str) -> dict | None:
        path = self.dir / f"{spec_hash}.json"
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def store(self, spec_hash: str, record: dict) -> None:
        path = self.dir / f"{spec_hash}.json"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, path)  # atomic: a killed sweep never leaves torn cells


# ----------------------------------------------------------------------
# Grid-path validation
# ----------------------------------------------------------------------
#: Scalar ScenarioSpec fields: a grid path may target them but not descend.
_SCALAR_FIELDS = (
    "seed", "name", "max_events", "max_wall_seconds", "compiled", "engine",
    "engine_jobs",
)

#: Config-backed nodes: structural spec keys plus the backing dataclass whose
#: field names are valid both flat (``network.latency``) and under
#: ``overrides.`` (``network.overrides.latency``).
_CONFIG_NODES = {
    "machine": (MachineConfig, ("preset", "overrides")),
    "network": (NetworkConfig, ("preset", "seed", "overrides")),
    "faults": (FaultConfig, ("preset", "seed", "overrides")),
}

#: Open-parameter nodes: unknown second keys are component constructor
#: parameters by design (they land in ``params``), so any flat key passes.
_PARAM_NODES = ("workload", "policy", "predictor")


def _suggest(key: str, candidates) -> str:
    matches = difflib.get_close_matches(key, sorted(candidates), n=3)
    if matches:
        return f"; did you mean {' or '.join(repr(m) for m in matches)}?"
    return f"; valid keys: {sorted(candidates)}"


def _validate_grid_path(path: str) -> None:
    """Check one dotted grid path against the ScenarioSpec schema.

    Raises ValueError naming the bad path and the nearest valid keys.  This
    runs at :class:`Sweep` construction, before any cell is expanded — a
    typo'd path used to silently create a nested table that nothing reads.
    """
    keys = [key for key in path.split(".") if key]
    if not keys:
        raise ValueError("empty grid path")
    head = keys[0]
    if head not in ScenarioSpec._FIELDS:
        raise ValueError(
            f"grid path {path!r}: {head!r} is not a scenario spec field"
            + _suggest(head, ScenarioSpec._FIELDS)
        )
    if head in _SCALAR_FIELDS:
        if len(keys) > 1:
            raise ValueError(
                f"grid path {path!r} descends into scalar field {head!r}; "
                f"use {head!r} itself"
            )
        return
    if head == "trace":
        if len(keys) == 1:
            return
        if len(keys) == 2 and keys[1] in ("enabled", "path"):
            return
        raise ValueError(
            f"grid path {path!r}: trace keys are 'enabled' and 'path'"
            + ("" if len(keys) == 2 else " (one level deep)")
        )
    if head in _CONFIG_NODES:
        config_cls, structural = _CONFIG_NODES[head]
        fields = tuple(f.name for f in dataclasses.fields(config_cls))
        if len(keys) == 1:
            return  # whole-node replacement (shorthand strings / tables)
        if len(keys) == 2:
            if keys[1] in structural or keys[1] in fields:
                return
            raise ValueError(
                f"grid path {path!r}: {keys[1]!r} is neither a {head} spec "
                f"key nor a {config_cls.__name__} field"
                + _suggest(keys[1], set(structural) | set(fields))
            )
        if len(keys) == 3 and keys[1] == "overrides":
            if keys[2] in fields:
                return
            raise ValueError(
                f"grid path {path!r}: {keys[2]!r} is not a "
                f"{config_cls.__name__} field" + _suggest(keys[2], fields)
            )
        raise ValueError(
            f"grid path {path!r} is too deep for {head!r}; sweep "
            f"'{head}.<field>' or '{head}.overrides.<field>'"
        )
    # Open-parameter nodes (workload / policy / predictor).
    if len(keys) <= 2:
        return  # flat keys become constructor params by design
    if len(keys) == 3 and keys[1] == "params":
        return
    raise ValueError(
        f"grid path {path!r} is too deep for {head!r}; sweep "
        f"'{head}.<key>' or '{head}.params.<key>'"
    )


def _set_path(data: dict, path: str, value) -> None:
    """Set ``value`` at a dotted ``path`` inside nested dicts (creating)."""
    keys = [key for key in path.split(".") if key]
    if not keys:
        raise ValueError("empty grid path")
    node = data
    for key in keys[:-1]:
        child = node.get(key)
        if child is None:
            child = node[key] = {}
        elif not isinstance(child, dict):
            raise ValueError(
                f"grid path {path!r} descends into non-table value {child!r}"
            )
        node = child
    node[keys[-1]] = value


def _deep_merge(base: dict, patch: Mapping) -> dict:
    """Recursively merge ``patch`` over ``base`` (tables merge, leaves replace)."""
    merged = copy.deepcopy(base)
    for key, value in patch.items():
        if (
            isinstance(value, Mapping)
            and isinstance(merged.get(key), dict)
        ):
            merged[key] = _deep_merge(merged[key], value)
        else:
            merged[key] = copy.deepcopy(value) if isinstance(value, (dict, list)) else value
    return merged


class Sweep:
    """A family of scenario cells expanded from a base spec, a grid, and
    explicit cells.

    Parameters
    ----------
    base:
        Template spec the grid and patch-style cells derive from (anything
        :meth:`ScenarioSpec.coerce` accepts).  Optional when every cell is a
        full spec.
    grid:
        Ordered mapping of dotted spec paths to value lists; expanded as a
        cartesian product over ``base`` in row-major order (first path varies
        slowest).  Paths are validated against the spec schema here, at
        construction.
    cells:
        Explicit cells: full specs, or patch dicts merged over ``base``.
    name:
        Display name of the sweep.
    """

    def __init__(
        self,
        base=None,
        grid: Mapping[str, Sequence] | None = None,
        cells: Sequence | None = None,
        name: str | None = None,
    ) -> None:
        self.base = ScenarioSpec.coerce(base) if base is not None else None
        self.grid = {str(path): list(values) for path, values in (grid or {}).items()}
        self.name = name
        self.cells: list[ScenarioSpec] = []
        for cell in cells or ():
            if isinstance(cell, Mapping) and self.base is not None:
                merged = _deep_merge(self.base.to_dict(), cell)
                self.cells.append(ScenarioSpec.from_dict(merged))
            else:
                self.cells.append(ScenarioSpec.coerce(cell))
        if self.grid and self.base is None:
            raise ValueError("a grid sweep needs a base spec to patch")
        for path, values in self.grid.items():
            _validate_grid_path(path)
            if not values:
                raise ValueError(f"grid path {path!r} has no values")

    @classmethod
    def from_dict(cls, data: Mapping) -> "Sweep":
        """Build a sweep from its dict (TOML) form.

        A mapping without ``base``/``grid``/``cells`` keys is interpreted as
        a single scenario spec.
        """
        if not any(key in data for key in ("base", "grid", "cells")):
            spec = ScenarioSpec.from_dict(data)
            return cls(cells=[spec], name=spec.name)
        data = dict(data)
        name = data.pop("name", None)
        base = data.pop("base", None)
        grid = data.pop("grid", None)
        cells = data.pop("cells", None)
        if data:
            raise ValueError(
                f"unknown sweep keys {sorted(data)}; expected "
                "name/base/grid/cells (or a bare scenario spec)"
            )
        return cls(base=base, grid=grid, cells=cells, name=name)

    @classmethod
    def from_toml(cls, path: str | Path) -> "Sweep":
        """Load a sweep (or a single scenario) from a TOML file."""
        with Path(path).open("rb") as handle:
            return cls.from_dict(tomllib.load(handle))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Sweep(name={self.name!r}, grid_paths={list(self.grid)}, "
            f"cells={len(self.cells)})"
        )

    # ------------------------------------------------------------------
    def expand(self) -> list[ScenarioSpec]:
        """The concrete cell list, in deterministic order.

        Grid cells come first (row-major cartesian order), explicit cells
        after.  A sweep with neither grid nor cells is just ``[base]``.
        """
        specs: list[ScenarioSpec] = []
        if self.grid:
            base_dict = self.base.to_dict()
            paths = list(self.grid)
            for combo in itertools.product(*(self.grid[path] for path in paths)):
                patched = copy.deepcopy(base_dict)
                for path, value in zip(paths, combo):
                    _set_path(patched, path, value)
                specs.append(ScenarioSpec.from_dict(patched))
        elif self.base is not None and not self.cells:
            specs.append(self.base)
        specs.extend(self.cells)
        trace_paths = [spec.trace.path for spec in specs if spec.trace.path]
        if len(trace_paths) != len(set(trace_paths)):
            # Typically a base trace.path inherited by every expanded cell:
            # sequentially the last cell silently wins, sharded the workers
            # race on one file.  Use `repro sweep --out/--save-traces` (or
            # per-cell paths) instead.
            raise ValueError(
                "multiple sweep cells share a trace save path; give each "
                "cell its own trace.path or save traces after run_all()"
            )
        return specs

    def run_all(
        self,
        jobs: int | None = None,
        *,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        timeout: float | None = None,
        fail_fast: bool = False,
        out: str | Path | None = None,
        resume: bool = False,
        engine: str | None = None,
        engine_jobs: int | None = None,
    ) -> list[ScenarioResult | CachedCell | CellFailure]:
        """Run every cell and return outcomes in :meth:`expand` order.

        ``jobs`` of ``None``/``1`` runs sequentially in-process; ``jobs > 1``
        fans the cells over a process pool (longest-expected-first
        submission, deterministic merge).  Each cell derives all its
        randomness from its own spec, so sharded results are bit-identical
        to sequential ones.

        Cells are isolated: a raising cell yields a :class:`CellFailure` in
        its slot and every other cell still runs.  *Transient* failures — a
        worker process dying (:class:`BrokenProcessPool`) or a cell
        exceeding ``timeout`` seconds of wall clock
        (:class:`~repro.sim.errors.TimeLimitExceeded`) — are retried up to
        ``max_retries`` times with exponential backoff
        (``retry_backoff * 2**attempt`` seconds); deterministic exceptions
        are not retried, the rerun would fail identically.  After a worker
        death the pool is unusable and cannot name the culprit, so the
        remaining cells re-run in *quarantine*: one single-worker pool each,
        where a crash indicts exactly one cell.

        ``out`` checkpoints each successful cell under ``<out>/cells/`` keyed
        by spec content hash; ``resume=True`` (requires ``out``) satisfies
        already-checkpointed cells from disk as :class:`CachedCell` without
        re-running them.  ``fail_fast=True`` cancels pending cells, shuts the
        pool down (no leaked workers), and raises :class:`SweepAborted` on
        the first failure instead of recording it.

        ``engine`` (``"auto"``/``"scalar"``/``"vectorised"``/``"parallel"``)
        overrides the run-loop drain of *every* cell — the A/B switch for
        the vectorised and parallel engines — and ``engine_jobs`` overrides
        the parallel engine's per-cell worker count.  Neither can change
        results (outputs are bit-identical across drains, and the spec
        content hash excludes both), so checkpoints and summaries are
        engine-agnostic.  When parallel cells meet a sharded pool, the pool
        width is capped so ``jobs x engine_jobs`` does not oversubscribe the
        machine's CPUs (a ``RuntimeWarning`` reports the applied cap).
        """
        if resume and out is None:
            raise ValueError("run_all(resume=True) needs an output directory (out=)")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        specs = self.expand()
        if engine is not None:
            specs = [spec.with_overrides(engine=engine) for spec in specs]
        if engine_jobs is not None:
            specs = [spec.with_overrides(engine_jobs=engine_jobs) for spec in specs]
        if not specs:
            return []
        if jobs is not None and jobs > 1:
            cpus = os.cpu_count() or 1
            # engine_jobs == 0 is "auto": the engine resolves it to the CPU
            # count, so the cap must budget for that resolved width.
            widest = max(
                (s.engine_jobs or cpus for s in specs if s.engine == "parallel"),
                default=1,
            )
            if widest > 1 and jobs * widest > cpus:
                capped = max(1, cpus // widest)
                warnings.warn(
                    f"sweep jobs={jobs} x engine_jobs={widest} would "
                    f"oversubscribe {cpus} CPUs; capping the cell pool to "
                    f"{capped} worker(s)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                jobs = capped
        manifest = _Manifest(out) if out is not None else None
        results: list[ScenarioResult | CachedCell | CellFailure | None]
        results = [None] * len(specs)
        pending: list[int] = []
        for index, spec in enumerate(specs):
            cached = manifest.load(spec.content_hash()) if resume else None
            if cached is not None:
                results[index] = CachedCell(spec=spec, record=cached)
            else:
                pending.append(index)

        runner = _CellRunner(
            specs=specs,
            results=results,
            manifest=manifest,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            timeout=timeout,
            fail_fast=fail_fast,
        )
        if jobs is None or jobs <= 1 or len(pending) <= 1:
            runner.run_sequential(pending)
        else:
            runner.run_pooled(pending, jobs)
        return results  # type: ignore[return-value]


class _CellRunner:
    """Shared state of one :meth:`Sweep.run_all` invocation."""

    def __init__(
        self, *, specs, results, manifest, max_retries, retry_backoff, timeout,
        fail_fast,
    ) -> None:
        self.specs = specs
        self.results = results
        self.manifest = manifest
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.timeout = timeout
        self.fail_fast = fail_fast

    # -- outcome bookkeeping -------------------------------------------
    def _record_success(self, index: int, result: ScenarioResult) -> None:
        self.results[index] = result
        if self.manifest is not None:
            self.manifest.store(result.spec.content_hash(), cell_record(result))

    def _record_failure(self, index: int, failure: CellFailure) -> None:
        if self.fail_fast:
            raise SweepAborted(failure)
        self.results[index] = failure

    def _backoff(self, attempt: int) -> None:
        time.sleep(self.retry_backoff * (2 ** (attempt - 1)))

    def _failure(self, index: int, exc: BaseException, attempts: int) -> CellFailure:
        return CellFailure(
            spec=self.specs[index],
            error_type=type(exc).__name__,
            error_message=str(exc),
            attempts=attempts,
        )

    # -- sequential ----------------------------------------------------
    def run_sequential(self, pending: list[int]) -> None:
        for index in pending:
            attempts = 0
            while True:
                attempts += 1
                try:
                    self._record_success(
                        index, _run_cell(self.specs[index], self.timeout)
                    )
                    break
                except TimeLimitExceeded as exc:
                    if attempts > self.max_retries:
                        self._record_failure(index, self._failure(index, exc, attempts))
                        break
                    self._backoff(attempts)
                except Exception as exc:  # deterministic: a retry fails the same way
                    self._record_failure(index, self._failure(index, exc, attempts))
                    break

    # -- pooled --------------------------------------------------------
    def run_pooled(self, pending: list[int], jobs: int) -> None:
        unfinished = list(pending)
        attempts = {index: 0 for index in pending}
        round_number = 0
        while unfinished:
            round_number += 1
            if round_number > 1:
                self._backoff(round_number - 1)
            unfinished = self._pool_round(unfinished, jobs, attempts)

    def _pool_round(
        self, pending: list[int], jobs: int, attempts: dict[int, int]
    ) -> list[int]:
        """One pool pass over ``pending``; returns indices needing another.

        Healthy path: every future resolves, transient failures collect for
        the next round.  If the pool breaks (a worker died), completed
        futures are still harvested, and the survivors re-run in quarantine
        — one single-worker pool per cell — so the next crash indicts
        exactly one cell instead of poisoning the batch.
        """
        by_cost = sorted(
            pending, key=lambda index: self.specs[index].cost_hint(), reverse=True
        )
        retry: list[int] = []
        broken = False
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(pending)))
        try:
            futures = {}
            for index in by_cost:
                attempts[index] += 1
                futures[index] = pool.submit(
                    _run_cell, self.specs[index], self.timeout
                )
            for index in pending:
                future = futures[index]
                try:
                    self._record_success(index, future.result())
                except BrokenProcessPool:
                    broken = True
                    break
                except TimeLimitExceeded as exc:
                    if attempts[index] > self.max_retries:
                        self._record_failure(
                            index, self._failure(index, exc, attempts[index])
                        )
                    else:
                        retry.append(index)
                except Exception as exc:
                    self._record_failure(
                        index, self._failure(index, exc, attempts[index])
                    )
            if broken:
                retry.extend(self._harvest_broken(futures, pending, attempts))
        finally:
            # Covers the fail-fast SweepAborted path too: futures that never
            # started are cancelled, running workers drain, nothing leaks.
            pool.shutdown(wait=True, cancel_futures=True)
        if broken and retry:
            return self._quarantine(retry, attempts)
        return retry

    def _harvest_broken(
        self, futures: dict, pending: list[int], attempts: dict[int, int]
    ) -> list[int]:
        """Salvage finished futures from a broken pool; the rest re-run.

        A cell whose future never ran (cancelled or broken-pool poisoned)
        was not genuinely attempted, so its attempt charge is refunded —
        only the crash culprit should burn retry budget, and quarantine is
        what identifies it.
        """
        unfinished: list[int] = []
        for index in pending:
            if self.results[index] is not None:
                continue
            future = futures[index]
            try:
                self._record_success(index, future.result(timeout=0))
            except Exception:
                attempts[index] -= 1
                unfinished.append(index)
        return unfinished

    def _quarantine(self, pending: list[int], attempts: dict[int, int]) -> list[int]:
        """Re-run cells one per single-worker pool after a worker death."""
        retry: list[int] = []
        for index in pending:
            attempts[index] += 1
            try:
                with ProcessPoolExecutor(max_workers=1) as solo:
                    self._record_success(
                        index,
                        solo.submit(_run_cell, self.specs[index], self.timeout)
                        .result(),
                    )
            except (BrokenProcessPool, TimeLimitExceeded) as exc:
                if attempts[index] > self.max_retries:
                    failure = self._failure(index, exc, attempts[index])
                    if isinstance(exc, BrokenProcessPool):
                        failure.error_type = "WorkerCrash"
                        failure.error_message = (
                            "worker process died while running this cell "
                            "(killed or crashed hard)"
                        )
                    self._record_failure(index, failure)
                else:
                    retry.append(index)
            except Exception as exc:
                self._record_failure(index, self._failure(index, exc, attempts[index]))
        if retry:
            self._backoff(max(attempts[index] for index in retry))
            return self._quarantine(retry, attempts)
        return []


def load_sweep(path: str | Path) -> Sweep:
    """Read ``path`` as a sweep TOML (single-scenario files become one cell)."""
    return Sweep.from_toml(path)


def sweep_accuracy_table(
    outcomes: Sequence,
    kind: str = "sender",
    level: str = "logical",
    warmup: int = 0,
) -> list[dict]:
    """Cross-cell predictor accuracy over a finished sweep.

    Takes the outcome list of :meth:`Sweep.run_all` and evaluates each
    finished cell's predictor (the spec's own ``predictor`` configuration)
    over the representative rank's ``kind`` stream at ``level`` via
    :meth:`~repro.scenario.scenario.ScenarioResult.predict`.  Returns one
    row dict per cell, in sweep order::

        {"cell": 0, "label": "bt.4", "policy": "standard",
         "workload": "bt", "nprocs": 4, "rank": 2, "status": "ok",
         "stream_length": 123,
         "accuracy_pct": [93.5, ...],   # one entry per horizon, +1 first
         "coverage_pct": 97.1}          # fraction of +1 positions predicted

    Cells that produced no evaluable stream keep their slot with a non-"ok"
    status and ``None`` metrics: failures ("failed"), cache hits restored
    from disk without traces ("cached"), and cells run with tracing disabled
    ("untraced").
    """
    rows: list[dict] = []
    for index, outcome in enumerate(outcomes):
        spec = outcome.spec
        row = {
            "cell": index,
            "label": spec.label,
            "policy": spec.policy.kind,
            "workload": spec.workload.name,
            "nprocs": spec.workload.nprocs,
            "rank": None,
            "status": "ok",
            "stream_length": None,
            "accuracy_pct": None,
            "coverage_pct": None,
        }
        if isinstance(outcome, CellFailure):
            row["status"] = "failed"
        elif isinstance(outcome, CachedCell):
            row["status"] = "cached"
        elif outcome.result.tracer is None:
            row["status"] = "untraced"
        else:
            accuracy = outcome.predict(kind=kind, level=level, warmup=warmup)
            row["rank"] = outcome.representative_rank
            row["stream_length"] = accuracy.stream_length
            row["accuracy_pct"] = [round(a, 2) for a in accuracy.as_percentages()]
            row["coverage_pct"] = round(100.0 * accuracy.coverage(1), 2)
        rows.append(row)
    return rows
