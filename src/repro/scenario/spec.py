"""The declarative scenario specification tree.

A :class:`ScenarioSpec` is a frozen, picklable, JSON/TOML-able description of
one simulation: which workload at which size, on which machine and network
cost models, under which flow-control policy, evaluated with which predictor,
traced or not.  It is the single front door of the reproduction — the CLI,
the sweep engine, the paper's experiment context and the ``run_workload``
compat shim all construct one of these and hand it to
:class:`repro.scenario.Scenario`.

Every node accepts three equivalent forms:

* **Python**: ``ScenarioSpec(workload=WorkloadSpec("bt", 9, scale=0.2))``
* **dicts** (and therefore TOML tables): ``{"workload": {"name": "bt",
  "nprocs": 9, "scale": 0.2}, "policy": {"kind": "credit"}}``
* **string shorthand**: ``ScenarioSpec(workload="bt.9:scale=0.2",
  policy="credit:horizon=5")``

Component names are resolved through the registries in
:mod:`repro.sim.registry` (machine/network presets) and
:mod:`repro.predictive.registry` (policies, predictors) at *build* time, so
specs can be constructed before custom components are registered and stay
cheap to create, compare and pickle.

Seed plumbing: :class:`NetworkSpec` (like :class:`~repro.sim.network.NetworkConfig`)
leaves its seed ``None`` by default, meaning "derive from the scenario
seed" — an override-only network configuration follows the experiment seed
exactly like the default one, on every path.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import tomllib
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Mapping

from repro.scenario.shorthand import split_shorthand
from repro.sim.faults import FaultConfig
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkConfig
from repro.sim.registry import create_faults, create_machine, create_network
from repro.predictive.registry import create_policy, predictor_factory
from repro.workloads.base import Workload
from repro.workloads.registry import LABEL_ABBREVIATIONS, create_workload

__all__ = [
    "WorkloadSpec",
    "MachineSpec",
    "NetworkSpec",
    "FaultSpec",
    "PolicySpec",
    "PredictorSpec",
    "TraceSpec",
    "ScenarioSpec",
]

#: Paper-label abbreviations (``sw.32`` on the figures means sweep3d at 32),
#: shared with ``PaperConfiguration.label``.
_LABEL_SHORT = LABEL_ABBREVIATIONS
_LABEL_EXPAND = {short: full for full, short in _LABEL_SHORT.items()}


# ----------------------------------------------------------------------
# Frozen key/value payloads
# ----------------------------------------------------------------------
def _freeze_items(value) -> tuple[tuple[str, object], ...]:
    """Normalise a params payload to a canonical tuple of (key, value) pairs."""
    if value is None:
        return ()
    if isinstance(value, Mapping):
        items = value.items()
    else:
        items = list(value)
    frozen = []
    for item in items:
        key, val = item
        if not isinstance(key, str):
            raise TypeError(f"parameter names must be strings, got {key!r}")
        frozen.append((key, val))
    frozen.sort(key=lambda pair: pair[0])
    keys = [key for key, _ in frozen]
    if len(set(keys)) != len(keys):
        raise ValueError(f"duplicate parameter names in {keys}")
    return tuple(frozen)


def _items_dict(pairs: tuple[tuple[str, object], ...]) -> dict:
    """The tuple-of-pairs payload back as a plain dict."""
    return dict(pairs)


def _config_overrides(config, exclude: tuple[str, ...] = ()) -> dict:
    """Fields of a frozen config dataclass that differ from its defaults."""
    overrides = {}
    for field in dataclasses.fields(config):
        if field.name in exclude:
            continue
        value = getattr(config, field.name)
        if value != field.default:
            overrides[field.name] = value
    return overrides


def _reject_unknown_keys(kind: str, data: Mapping, known: tuple[str, ...]) -> None:
    unknown = sorted(set(data) - set(known))
    if unknown:
        raise ValueError(
            f"unknown {kind} spec keys {unknown}; expected a subset of {sorted(known)}"
        )


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """Which workload skeleton to run, at which size and scale.

    ``None`` fields are *unset*: the workload class default applies (exactly
    as if the keyword were not passed to its constructor).  ``params`` holds
    extra workload-specific constructor keywords as a canonical tuple of
    pairs (use a dict when constructing; it is frozen automatically).
    """

    name: str
    nprocs: int
    scale: float | None = None
    iterations: int | None = None
    compute_time: float | None = None
    compute_noise: float | None = None
    params: tuple = ()

    _FIELDS = ("name", "nprocs", "scale", "iterations", "compute_time",
               "compute_noise", "params")

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _freeze_items(self.params))
        if not self.name:
            raise ValueError("workload spec needs a workload name")
        # nprocs == 0 is the "resolved by the workload" sentinel: trace
        # replay (``replay:file=...``) takes its process count from the
        # file.  Workloads that need an explicit count still reject 0 in
        # their own constructors, with the same error they always raised.
        if int(self.nprocs) < 0:
            raise ValueError(f"nprocs must be positive, got {self.nprocs}")
        object.__setattr__(self, "nprocs", int(self.nprocs))

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``bt.9`` (``sw.32`` for sweep3d)."""
        short = _LABEL_SHORT.get(self.name, self.name)
        return short if self.nprocs == 0 else f"{short}.{self.nprocs}"

    def build(self) -> Workload:
        """Instantiate the workload through the registry."""
        kwargs = _items_dict(self.params)
        for field in ("scale", "iterations", "compute_time", "compute_noise"):
            value = getattr(self, field)
            if value is not None:
                kwargs[field] = value
        return create_workload(self.name, nprocs=self.nprocs, **kwargs)

    # -- construction ------------------------------------------------------
    @classmethod
    def coerce(cls, value) -> "WorkloadSpec":
        """Accept a spec, a dict, a shorthand string, or a Workload instance."""
        if isinstance(value, cls):
            return value
        if isinstance(value, Workload):
            return cls.from_workload(value)
        if isinstance(value, str):
            return cls.from_shorthand(value)
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        raise TypeError(f"cannot build a WorkloadSpec from {value!r}")

    @classmethod
    def from_shorthand(cls, text: str) -> "WorkloadSpec":
        """Parse ``"bt.9:scale=0.2"`` / ``"bt:nprocs=9,scale=0.2"``."""
        head, params = split_shorthand(text)
        name, dot, count = head.rpartition(".")
        if dot and count.isdigit():
            if "nprocs" in params:
                raise ValueError(
                    f"workload shorthand {text!r} gives nprocs twice"
                )
            params["nprocs"] = int(count)
            head = name
        head = _LABEL_EXPAND.get(head, head)
        return cls.from_dict({"name": head, **params})

    @classmethod
    def from_dict(cls, data: Mapping) -> "WorkloadSpec":
        """Build from a dict; non-field keys land in ``params``."""
        data = dict(data)
        if "name" not in data:
            raise ValueError(f"workload spec {data!r} is missing 'name'")
        # A missing nprocs means the sentinel 0 (see __post_init__): legal
        # for replay specs, and a clear "nprocs must be positive" error at
        # build time for every other workload.
        data.setdefault("nprocs", 0)
        params = dict(data.pop("params", {}))
        kwargs = {}
        for field in cls._FIELDS:
            if field in data:
                kwargs[field] = data.pop(field)
        params.update(data)  # remaining keys are workload-specific knobs
        return cls(params=params, **kwargs)

    @classmethod
    def from_workload(cls, workload: Workload) -> "WorkloadSpec":
        """Describe an existing workload instance (best effort).

        Captures the structural knobs the :class:`Workload` base class owns
        (size, scale, the pinned iteration count, compute timing).  Workload
        *subclass* constructor knobs are not recoverable from an instance
        (``parameters()`` reports derived quantities, not constructor
        arguments), so a spec built this way rebuilds subclass defaults; the
        ``run_workload`` compat shim — the main caller — injects the original
        instance and only uses the spec for metadata.
        """
        return cls(
            name=workload.name,
            nprocs=workload.nprocs,
            scale=workload.scale,
            iterations=workload.iterations,
            compute_time=workload.compute_time,
            compute_noise=workload.compute_noise,
        )

    def to_dict(self) -> dict:
        """Canonical JSON-able form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "nprocs": self.nprocs,
            "scale": self.scale,
            "iterations": self.iterations,
            "compute_time": self.compute_time,
            "compute_noise": self.compute_noise,
            "params": _items_dict(self.params),
        }


# ----------------------------------------------------------------------
# Machine / network cost models
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MachineSpec:
    """A machine preset name plus field overrides."""

    preset: str = "default"
    overrides: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "overrides", _freeze_items(self.overrides))

    def build(self) -> MachineConfig:
        """Resolve the preset through :mod:`repro.sim.registry`."""
        return create_machine(self.preset, **_items_dict(self.overrides))

    @classmethod
    def coerce(cls, value) -> "MachineSpec":
        """Accept a spec, None, a shorthand string, a dict, or a MachineConfig."""
        if isinstance(value, cls):
            return value
        if value is None:
            return cls()
        if isinstance(value, MachineConfig):
            return cls(overrides=_config_overrides(value))
        if isinstance(value, str):
            preset, params = split_shorthand(value)
            return cls(preset=preset, overrides=params)
        if isinstance(value, Mapping):
            data = dict(value)
            preset = data.pop("preset", "default")
            overrides = dict(data.pop("overrides", {}))
            overrides.update(data)  # flat form: remaining keys are overrides
            return cls(preset=preset, overrides=overrides)
        raise TypeError(f"cannot build a MachineSpec from {value!r}")

    def to_dict(self) -> dict:
        return {"preset": self.preset, "overrides": _items_dict(self.overrides)}


@dataclass(frozen=True)
class NetworkSpec:
    """A network preset name, an optional pinned seed, and field overrides.

    ``seed=None`` (the default) derives the jitter seed from the scenario
    seed, which is the paper recipe — every random stream of a run follows
    one experiment seed.  Pinning ``seed`` decouples the network stream (the
    jitter ablations pin it to compare policies under identical noise).
    """

    preset: str = "default"
    seed: int | None = None
    overrides: tuple = ()

    def __post_init__(self) -> None:
        overrides = dict(_freeze_items(self.overrides))
        if "seed" in overrides:  # normalise: the field owns the seed
            pinned = overrides.pop("seed")
            if self.seed is not None and self.seed != pinned:
                raise ValueError(
                    f"network spec pins seed twice: {self.seed} and {pinned}"
                )
            object.__setattr__(self, "seed", pinned)
        object.__setattr__(self, "overrides", _freeze_items(overrides))

    def build(self, run_seed: int) -> NetworkConfig:
        """Resolve to a :class:`NetworkConfig` with the seed settled.

        The pinned ``seed`` wins; otherwise ``run_seed`` (the scenario seed)
        is used, matching ``NetworkConfig(seed=run_seed)`` bit for bit.
        """
        seed = self.seed if self.seed is not None else run_seed
        return create_network(
            self.preset, seed=seed, **_items_dict(self.overrides)
        )

    @classmethod
    def coerce(cls, value) -> "NetworkSpec":
        """Accept a spec, None, a shorthand string, a dict, or a NetworkConfig."""
        if isinstance(value, cls):
            return value
        if value is None:
            return cls()
        if isinstance(value, NetworkConfig):
            return cls.from_config(value)
        if isinstance(value, str):
            preset, params = split_shorthand(value)
            return cls(preset=preset, overrides=params)
        if isinstance(value, Mapping):
            data = dict(value)
            preset = data.pop("preset", "default")
            seed = data.pop("seed", None)
            overrides = dict(data.pop("overrides", {}))
            overrides.update(data)
            return cls(preset=preset, seed=seed, overrides=overrides)
        raise TypeError(f"cannot build a NetworkSpec from {value!r}")

    @classmethod
    def from_config(cls, config: NetworkConfig) -> "NetworkSpec":
        """Spec-ify an existing configuration (non-default fields become
        overrides; an unpinned seed stays derivable)."""
        return cls(
            seed=config.seed,
            overrides=_config_overrides(config, exclude=("seed",)),
        )

    def to_dict(self) -> dict:
        return {
            "preset": self.preset,
            "seed": self.seed,
            "overrides": _items_dict(self.overrides),
        }


@dataclass(frozen=True)
class FaultSpec:
    """A fault-injection preset name, an optional pinned seed, and overrides.

    The default preset ``"none"`` resolves to a null :class:`FaultConfig`
    (all rates zero), for which the scenario layer builds *no* injector at
    all — a spec with the default fault table is bit-identical to one that
    predates fault injection.  ``seed=None`` derives the fault streams from
    the scenario seed; pinning it holds the fault schedule fixed while the
    rest of the run (jitter, compute noise) varies with the experiment seed.
    """

    preset: str = "none"
    seed: int | None = None
    overrides: tuple = ()

    def __post_init__(self) -> None:
        overrides = dict(_freeze_items(self.overrides))
        if "seed" in overrides:  # normalise: the field owns the seed
            pinned = overrides.pop("seed")
            if self.seed is not None and self.seed != pinned:
                raise ValueError(
                    f"fault spec pins seed twice: {self.seed} and {pinned}"
                )
            object.__setattr__(self, "seed", pinned)
        object.__setattr__(self, "overrides", _freeze_items(overrides))

    def build(self, run_seed: int) -> FaultConfig:
        """Resolve to a :class:`FaultConfig` with the seed settled."""
        seed = self.seed if self.seed is not None else run_seed
        return create_faults(self.preset, seed=seed, **_items_dict(self.overrides))

    @classmethod
    def coerce(cls, value) -> "FaultSpec":
        """Accept a spec, None, a shorthand string, a dict, or a FaultConfig."""
        if isinstance(value, cls):
            return value
        if value is None:
            return cls()
        if isinstance(value, FaultConfig):
            return cls.from_config(value)
        if isinstance(value, str):
            preset, params = split_shorthand(value)
            return cls(preset=preset, overrides=params)
        if isinstance(value, Mapping):
            data = dict(value)
            preset = data.pop("preset", "none")
            seed = data.pop("seed", None)
            overrides = dict(data.pop("overrides", {}))
            overrides.update(data)
            return cls(preset=preset, seed=seed, overrides=overrides)
        raise TypeError(f"cannot build a FaultSpec from {value!r}")

    @classmethod
    def from_config(cls, config: FaultConfig) -> "FaultSpec":
        """Spec-ify an existing configuration (non-default fields become
        overrides; an unpinned seed stays derivable)."""
        return cls(
            seed=config.seed,
            overrides=_config_overrides(config, exclude=("seed",)),
        )

    def to_dict(self) -> dict:
        return {
            "preset": self.preset,
            "seed": self.seed,
            "overrides": _items_dict(self.overrides),
        }


# ----------------------------------------------------------------------
# Policy / predictor / trace
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PolicySpec:
    """A registered flow-control policy by name, with constructor params."""

    kind: str = "standard"
    params: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _freeze_items(self.params))

    def build(self):
        """Instantiate through :mod:`repro.predictive.registry`."""
        return create_policy(self.kind, **_items_dict(self.params))

    @classmethod
    def coerce(cls, value) -> "PolicySpec":
        if isinstance(value, cls):
            return value
        if value is None:
            return cls()
        if isinstance(value, str):
            kind, params = split_shorthand(value)
            return cls(kind=kind, params=params)
        if isinstance(value, Mapping):
            data = dict(value)
            kind = data.pop("kind", "standard")
            params = dict(data.pop("params", {}))
            params.update(data)
            return cls(kind=kind, params=params)
        raise TypeError(f"cannot build a PolicySpec from {value!r}")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": _items_dict(self.params)}


@dataclass(frozen=True)
class PredictorSpec:
    """The predictor evaluated over a scenario's streams, plus the horizon."""

    kind: str = "periodicity"
    horizon: int = 5
    params: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _freeze_items(self.params))
        if int(self.horizon) <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        object.__setattr__(self, "horizon", int(self.horizon))

    def factory(self) -> Callable[[], object]:
        """A zero-argument factory of fresh predictor instances."""
        return predictor_factory(self.kind, **_items_dict(self.params))

    @classmethod
    def coerce(cls, value) -> "PredictorSpec":
        if isinstance(value, cls):
            return value
        if value is None:
            return cls()
        if isinstance(value, str):
            kind, params = split_shorthand(value)
            horizon = params.pop("horizon", 5)
            return cls(kind=kind, horizon=horizon, params=params)
        if isinstance(value, Mapping):
            data = dict(value)
            kind = data.pop("kind", "periodicity")
            horizon = data.pop("horizon", 5)
            params = dict(data.pop("params", {}))
            params.update(data)
            return cls(kind=kind, horizon=horizon, params=params)
        raise TypeError(f"cannot build a PredictorSpec from {value!r}")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "horizon": self.horizon,
            "params": _items_dict(self.params),
        }


@dataclass(frozen=True)
class TraceSpec:
    """Whether to record two-level traces, and where to save them."""

    enabled: bool = True
    path: str | None = None

    def __post_init__(self) -> None:
        if self.path is not None and not self.enabled:
            raise ValueError("trace spec has a save path but tracing disabled")

    @classmethod
    def coerce(cls, value) -> "TraceSpec":
        if isinstance(value, cls):
            return value
        if value is None:
            return cls()
        if isinstance(value, bool):
            return cls(enabled=value)
        if isinstance(value, str):
            return cls(path=value)
        if isinstance(value, Mapping):
            _reject_unknown_keys("trace", value, ("enabled", "path"))
            return cls(**value)
        raise TypeError(f"cannot build a TraceSpec from {value!r}")

    def to_dict(self) -> dict:
        return {"enabled": self.enabled, "path": self.path}


# ----------------------------------------------------------------------
# The scenario root
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-described simulation scenario.

    Every sub-spec field coerces on construction, so all of these are
    equivalent::

        ScenarioSpec(workload=WorkloadSpec("bt", 9), policy=PolicySpec("credit"))
        ScenarioSpec(workload="bt.9", policy="credit")
        ScenarioSpec.from_dict({"workload": "bt.9", "policy": "credit"})
        ScenarioSpec.from_toml("scenario.toml")    # same keys as TOML tables
    """

    workload: WorkloadSpec
    seed: int = 2003
    machine: MachineSpec = MachineSpec()
    network: NetworkSpec = NetworkSpec()
    faults: FaultSpec = FaultSpec()
    policy: PolicySpec = PolicySpec()
    predictor: PredictorSpec = PredictorSpec()
    trace: TraceSpec = TraceSpec()
    name: str | None = None
    max_events: int | None = None
    max_wall_seconds: float | None = None
    compiled: bool = True
    #: Engine drain selection forwarded to :class:`repro.sim.engine.Simulator`
    #: (``"auto"``/``"scalar"``/``"vectorised"``/``"parallel"``).  Deliberately
    #: **excluded** from :meth:`to_dict` and :meth:`content_hash`: all drains
    #: produce bit-identical results, so the knob is an execution detail —
    #: specs that differ only in it share sweep cache cells and summary output.
    engine: str = "auto"
    #: Worker-process count for ``engine="parallel"`` (ignored otherwise).
    #: 0 means auto-tune: the engine resolves it to ``os.cpu_count()``.
    #: Excluded from identity for the same reason as ``engine``.
    engine_jobs: int = 2

    _FIELDS = ("workload", "seed", "machine", "network", "faults", "policy",
               "predictor", "trace", "name", "max_events", "max_wall_seconds",
               "compiled", "engine", "engine_jobs")

    def __post_init__(self) -> None:
        coerce = object.__setattr__
        coerce(self, "workload", WorkloadSpec.coerce(self.workload))
        coerce(self, "machine", MachineSpec.coerce(self.machine))
        coerce(self, "network", NetworkSpec.coerce(self.network))
        coerce(self, "faults", FaultSpec.coerce(self.faults))
        coerce(self, "policy", PolicySpec.coerce(self.policy))
        coerce(self, "predictor", PredictorSpec.coerce(self.predictor))
        coerce(self, "trace", TraceSpec.coerce(self.trace))
        coerce(self, "seed", int(self.seed))
        if self.max_wall_seconds is not None and self.max_wall_seconds <= 0:
            raise ValueError(
                f"max_wall_seconds must be positive, got {self.max_wall_seconds}"
            )
        if self.engine not in ("auto", "scalar", "vectorised", "parallel"):
            raise ValueError(
                "engine must be 'auto', 'scalar', 'vectorised' or 'parallel', "
                f"got {self.engine!r}"
            )
        coerce(self, "engine_jobs", int(self.engine_jobs))
        if self.engine_jobs < 0:
            raise ValueError(
                f"engine_jobs must be positive (or 0 for auto), got {self.engine_jobs}"
            )

    # -- identity ----------------------------------------------------------
    @property
    def label(self) -> str:
        """Display label: the explicit name, else the workload label."""
        return self.name if self.name else self.workload.label

    def cost_hint(self) -> float:
        """Relative expected simulation *wall-clock* cost (drives longest-first
        sharding).

        LU's per-scale message volume is ~10x the other applications', the
        same weighting :mod:`repro.analysis.experiments` has always used to
        pack the process pool.  A ``parallel``-engine cell spreads its events
        over ``engine_jobs`` workers, so its wall-clock share shrinks
        accordingly — the sweep scheduler should not treat it as the longest
        job just because its rank count is large.
        """
        scale = self.workload.scale if self.workload.scale is not None else 1.0
        weight = 10.0 if self.workload.name == "lu" else 1.0
        cost = self.workload.nprocs * scale * weight
        if self.engine == "parallel" and self.engine_jobs > 1:
            cost /= self.engine_jobs
        return cost

    def with_overrides(self, **kwargs) -> "ScenarioSpec":
        """A copy with the given fields replaced (sub-specs re-coerce)."""
        return replace(self, **kwargs)

    # -- construction ------------------------------------------------------
    @classmethod
    def coerce(cls, value) -> "ScenarioSpec":
        """Accept a spec, a workload shorthand string, or a dict."""
        if isinstance(value, cls):
            return value
        if isinstance(value, (str, WorkloadSpec, Workload)):
            return cls(workload=value)
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        raise TypeError(f"cannot build a ScenarioSpec from {value!r}")

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        """Build from a plain dict (the TOML table form)."""
        data = dict(data)
        _reject_unknown_keys("scenario", data, cls._FIELDS)
        if "workload" not in data:
            raise ValueError("scenario spec is missing 'workload'")
        return cls(**data)

    @classmethod
    def from_toml(cls, path: str | Path) -> "ScenarioSpec":
        """Load a scenario spec from a TOML file."""
        with Path(path).open("rb") as handle:
            return cls.from_dict(tomllib.load(handle))

    def to_dict(self) -> dict:
        """Canonical nested JSON-able form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "workload": self.workload.to_dict(),
            "machine": self.machine.to_dict(),
            "network": self.network.to_dict(),
            "faults": self.faults.to_dict(),
            "policy": self.policy.to_dict(),
            "predictor": self.predictor.to_dict(),
            "trace": self.trace.to_dict(),
            "max_events": self.max_events,
            "max_wall_seconds": self.max_wall_seconds,
            "compiled": self.compiled,
            # "engine"/"engine_jobs" are intentionally absent: they cannot
            # change results, so they must not change content_hash() or
            # on-disk summaries.
        }

    def content_hash(self) -> str:
        """Stable identity of this spec's canonical dict form.

        The sweep engine keys its resumable on-disk manifest by this hash:
        two specs with identical canonical dicts — however they were
        constructed — share cached results, and any field change produces a
        new cell.  Sixteen hex digits (64 bits) keep manifest file names
        short while making accidental collision within one sweep negligible.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
