"""The ``spec -> run -> result`` facade.

:class:`Scenario` turns a :class:`~repro.scenario.spec.ScenarioSpec` into a
configured :class:`~repro.sim.engine.Simulator`, runs it, and wraps the
outcome in a :class:`ScenarioResult` whose stream/summary/prediction
accessors are lazy and cached — analysis code asks for what it needs and the
result computes it once.

The build recipe is deliberately identical, component for component, to what
``run_workload`` has always done: workload via the registry, machine/network
via their presets, network seed derived from the scenario seed unless pinned.
That is what makes the paper's 19-cell sweep bit-identical whether it runs
through the legacy helpers, a :class:`Scenario`, or a sharded
:meth:`repro.scenario.sweep.Sweep.run_all`.

For compat call sites that already hold concrete objects (a ``Workload``
instance, a warmed ``NetworkModel``, a custom tracer), :class:`Scenario`
accepts them as keyword injections that take precedence over building from
the spec; the ``run_workload`` shim is a thin wrapper over exactly this.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.evaluation import AccuracyResult, evaluate_stream
from repro.scenario.spec import NetworkSpec, ScenarioSpec
from repro.sim.engine import SimulationResult, Simulator
from repro.sim.network import NetworkConfig, NetworkModel
from repro.trace.streams import (
    StreamSummary,
    sender_stream,
    size_stream,
    summarize_stream,
)
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.trace.tracer import ProcessTrace

__all__ = ["Scenario", "ScenarioResult"]

#: Distinguishes "argument not given" from an explicit ``None``.
_UNSET = object()


class Scenario:
    """A runnable scenario: a spec plus optional concrete-object injections.

    Parameters
    ----------
    spec:
        A :class:`ScenarioSpec` (or anything :meth:`ScenarioSpec.coerce`
        accepts: a dict, a workload shorthand string, a workload spec).
    workload, machine, network, policy, tracer:
        Optional pre-built components used *instead of* building from the
        spec — the compat path for callers that already hold instances.
        ``network`` accepts a :class:`NetworkConfig` (normalised through
        :class:`NetworkSpec`, so an unpinned seed still derives from the
        scenario seed) or a stateful :class:`NetworkModel` (used as-is).
    """

    def __init__(
        self,
        spec,
        *,
        workload: Workload | None = None,
        machine=None,
        network=None,
        policy=None,
        tracer=_UNSET,
    ) -> None:
        self.spec = ScenarioSpec.coerce(spec)
        self._workload = workload
        self._machine = machine
        self._network = network
        self._policy = policy
        self._tracer = tracer

    @classmethod
    def from_file(cls, path) -> "Scenario":
        """Load a scenario from a TOML spec file."""
        return cls(ScenarioSpec.from_toml(path))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Scenario({self.spec.label!r}, seed={self.spec.seed})"

    # ------------------------------------------------------------------
    def build_workload(self) -> Workload:
        """The workload instance this scenario will run (injected or built)."""
        if self._workload is not None:
            return self._workload
        return self.spec.workload.build()

    def run(self) -> "ScenarioResult":
        """Run the scenario and return its :class:`ScenarioResult`.

        Saves traces to ``spec.trace.path`` when one is set.
        """
        spec = self.spec
        workload = self.build_workload()
        machine = self._machine if self._machine is not None else spec.machine.build()
        network = self._network
        if network is None:
            network = spec.network.build(spec.seed)
        elif isinstance(network, NetworkConfig):
            # Normalise through NetworkSpec: an explicitly passed config
            # without a pinned seed derives from the scenario seed, exactly
            # like the spec-built path.
            network = NetworkSpec.from_config(network).build(spec.seed)
        policy = self._policy if self._policy is not None else spec.policy.build()
        tracer = self._tracer if self._tracer is not _UNSET else spec.trace.enabled
        simulator = Simulator(
            nprocs=workload.nprocs,
            machine=machine,
            network=network,
            tracer=tracer,
            policy=policy,
            seed=spec.seed,
            max_events=spec.max_events,
            max_wall_seconds=spec.max_wall_seconds,
            faults=spec.faults.build(spec.seed),
            engine=spec.engine,
            engine_jobs=spec.engine_jobs,
        )
        factory = workload.program_for if spec.compiled else workload.program
        result = simulator.run([factory])
        scenario_result = ScenarioResult(spec=spec, workload=workload, result=result)
        if spec.trace.path:
            scenario_result.save_traces(spec.trace.path)
        return scenario_result


class ScenarioResult:
    """A finished scenario: the spec, the workload that ran, and the result.

    Stream extraction, summaries and predictor evaluations are lazy and
    memoised per ``(level, rank, ...)`` key; the underlying
    :class:`SimulationResult` stays fully accessible as :attr:`result`.
    """

    def __init__(
        self, spec: ScenarioSpec, workload: Workload, result: SimulationResult
    ) -> None:
        self.spec = spec
        self.workload = workload
        self.result = result
        self._cache: dict[tuple, object] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScenarioResult({self.spec.label!r}, "
            f"messages={self.result.stats.messages_sent}, "
            f"makespan={self.result.makespan:.6g})"
        )

    # -- plain views -------------------------------------------------------
    @property
    def label(self) -> str:
        """The spec's display label."""
        return self.spec.label

    @property
    def makespan(self) -> float:
        """Simulated completion time of the slowest rank."""
        return self.result.makespan

    @property
    def stats(self):
        """The runtime statistics of the simulation."""
        return self.result.stats

    @property
    def representative_rank(self) -> int:
        """The receiving rank the paper's analysis reports for this workload."""
        return self.workload.representative_rank()

    def _resolve_rank(self, rank: int | None) -> int:
        return self.representative_rank if rank is None else rank

    # -- traces and streams ------------------------------------------------
    def trace(self, rank: int | None = None) -> "ProcessTrace":
        """One rank's two-level trace (default: the representative rank)."""
        return self.result.trace_for(self._resolve_rank(rank))

    def records(self, level: str = "logical", rank: int | None = None):
        """One rank's trace records at ``level`` ("logical" or "physical")."""
        trace = self.trace(rank)
        if level == "logical":
            return trace.logical
        if level == "physical":
            return trace.physical
        raise ValueError(f"unknown trace level {level!r}")

    def stream(
        self, kind: str = "sender", level: str = "logical", rank: int | None = None
    ):
        """The (sender | size) message stream of one rank at one level."""
        key = ("stream", kind, level, self._resolve_rank(rank))
        cached = self._cache.get(key)
        if cached is None:
            records = self.records(level, rank)
            if kind == "sender":
                cached = sender_stream(records)
            elif kind == "size":
                cached = size_stream(records)
            else:
                raise ValueError(f"unknown stream kind {kind!r}")
            self._cache[key] = cached
        return cached

    def summary(
        self, level: str = "logical", rank: int | None = None
    ) -> StreamSummary:
        """Summary statistics of one rank's stream at one level."""
        key = ("summary", level, self._resolve_rank(rank))
        cached = self._cache.get(key)
        if cached is None:
            cached = self._cache[key] = summarize_stream(self.records(level, rank))
        return cached

    # -- prediction --------------------------------------------------------
    def predict(
        self,
        kind: str = "sender",
        level: str = "logical",
        rank: int | None = None,
        horizon: int | None = None,
        warmup: int = 0,
    ) -> AccuracyResult:
        """Evaluate the spec's predictor over one stream of this run.

        ``horizon`` defaults to the spec's ``predictor.horizon``.
        """
        if horizon is None:
            horizon = self.spec.predictor.horizon
        key = ("predict", kind, level, self._resolve_rank(rank), horizon, warmup)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._cache[key] = evaluate_stream(
                self.stream(kind, level, rank),
                self.spec.predictor.factory(),
                horizon=horizon,
                warmup=warmup,
            )
        return cached

    # -- persistence -------------------------------------------------------
    def save_traces(self, path, metadata: dict | None = None) -> int:
        """Save the run's two-level traces (columnar v2 format).

        The saved metadata records the scenario recipe (workload, nprocs,
        scale, seed, policy, label) and accepts extra keys via ``metadata``.
        """
        from repro.trace.io import save_traces

        if self.result.tracer is None:
            raise ValueError("scenario was run without tracing enabled")
        spec = self.spec
        payload = {
            "workload": spec.workload.name,
            "nprocs": spec.workload.nprocs,
            "scale": spec.workload.scale if spec.workload.scale is not None else 1.0,
            "seed": spec.seed,
            "policy": spec.policy.kind,
            "label": spec.label,
        }
        if metadata:
            payload.update(metadata)
        return save_traces(self.result.tracer, path, metadata=payload)
