"""String shorthand for scenario components.

Specs accept compact strings wherever a component table would be verbose::

    policy    = "credit:horizon=5,credit_cap_bytes=65536"
    predictor = "periodicity:window=24,max_period=256"
    network   = "noiseless:latency=1e-6"
    workload  = "bt.9:scale=0.2"          # paper-label form
    workload  = "bt:nprocs=9,scale=0.2"   # explicit form

The grammar is ``head[:key=value,key=value,...]``; values are coerced to
``int`` / ``float`` / ``bool`` / ``None`` when they parse as one, and stay
strings otherwise.  :func:`split_shorthand` returns the head and the parsed
parameter dict; the spec classes decide what the head means (registry name,
preset name, or ``name.nprocs`` workload label).
"""

from __future__ import annotations

__all__ = ["coerce_scalar", "parse_params", "split_shorthand"]

_BOOL_WORDS = {
    "true": True,
    "yes": True,
    "on": True,
    "false": False,
    "no": False,
    "off": False,
}


def coerce_scalar(text: str):
    """Parse ``text`` into the most specific scalar it represents.

    Tries ``bool`` words, ``None`` words, ``int``, then ``float``; anything
    else is returned as the stripped string.
    """
    value = text.strip()
    lowered = value.lower()
    if lowered in _BOOL_WORDS:
        return _BOOL_WORDS[lowered]
    if lowered in ("none", "null"):
        return None
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    return value


def parse_params(text: str) -> dict:
    """Parse ``"key=value,key=value"`` into a dict of coerced scalars."""
    params: dict[str, object] = {}
    text = text.strip()
    if not text:
        return params
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, raw = item.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ValueError(
                f"malformed shorthand parameter {item!r} (expected key=value)"
            )
        if key in params:
            raise ValueError(f"duplicate shorthand parameter {key!r}")
        params[key] = coerce_scalar(raw)
    return params


def split_shorthand(text: str) -> tuple[str, dict]:
    """Split ``"head:key=value,..."`` into ``(head, params)``.

    The head is everything before the first ``:``; a missing ``:`` means no
    parameters.  Raises :class:`ValueError` on an empty head.
    """
    head, _, rest = text.partition(":")
    head = head.strip()
    if not head:
        raise ValueError(f"shorthand {text!r} has no component name")
    return head, parse_params(rest)
