"""Declarative scenario API: specs, the run facade, and the sweep engine.

This package is the single front door of the reproduction.  A scenario is
*described* as a frozen :class:`ScenarioSpec` tree — workload, machine,
network, flow-control policy, predictor, tracing — constructible from Python
objects, plain dicts, TOML files, or string shorthand; a :class:`Scenario`
*runs* one spec and returns a :class:`ScenarioResult` with lazy stream /
summary / prediction accessors; a :class:`Sweep` *expands* a spec template
(cartesian grids plus explicit cells) and runs all cells, optionally sharded
over worker processes bit-identically to a sequential run.

Quickstart::

    from repro.scenario import Scenario

    result = Scenario({"workload": "bt.9:scale=0.2", "seed": 7}).run()
    print(result.summary())                  # representative-rank stream
    print(result.predict("sender").accuracy(1))

Sweeps::

    from repro.scenario import Sweep

    sweep = Sweep(
        base={"workload": "bt.4:scale=0.1", "seed": 2003},
        grid={"network.overrides.jitter_sigma": [0.0, 0.2, 0.5]},
    )
    for cell in sweep.run_all(jobs=4):
        print(cell.label, cell.predict("sender", level="physical").accuracy(1))

Component names (``"credit"``, ``"noiseless"``, ``"periodicity"``) resolve
through the open registries in :mod:`repro.predictive.registry` and
:mod:`repro.sim.registry`; registering a new policy or preset there makes it
addressable from every spec, TOML file, and the ``repro sweep`` CLI.
"""

from repro.scenario.scenario import Scenario, ScenarioResult
from repro.scenario.shorthand import coerce_scalar, parse_params, split_shorthand
from repro.scenario.spec import (
    FaultSpec,
    MachineSpec,
    NetworkSpec,
    PolicySpec,
    PredictorSpec,
    ScenarioSpec,
    TraceSpec,
    WorkloadSpec,
)
from repro.scenario.sweep import (
    CachedCell,
    CellFailure,
    Sweep,
    SweepAborted,
    cell_record,
    load_sweep,
    sweep_accuracy_table,
)

__all__ = [
    "Scenario",
    "ScenarioResult",
    "ScenarioSpec",
    "WorkloadSpec",
    "MachineSpec",
    "NetworkSpec",
    "FaultSpec",
    "PolicySpec",
    "PredictorSpec",
    "TraceSpec",
    "Sweep",
    "SweepAborted",
    "CellFailure",
    "CachedCell",
    "cell_record",
    "load_sweep",
    "sweep_accuracy_table",
    "coerce_scalar",
    "parse_params",
    "split_shorthand",
]
