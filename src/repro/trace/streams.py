"""Stream extraction and per-process summary statistics.

The predictor (and the paper's Table 1) works on two integer streams per
receiving process:

* the **sender stream**: the sequence of source ranks of received messages;
* the **size stream**: the sequence of message sizes.

These helpers turn a trace level into NumPy arrays and compute the Table-1
statistics (message counts by kind, number of distinct senders and sizes,
dominant values).  Every function accepts either a columnar
:class:`repro.trace.columns.TraceColumns` store (``trace.logical`` /
``trace.physical`` — the fast path, vectorised over whole columns) or any
iterable of :class:`repro.trace.records.TraceRecord` (the legacy per-record
path, kept for hand-built record lists); both paths produce identical
results, down to the tie-breaking order of the frequent-value lists.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.mpi.constants import KIND_COLLECTIVE, KIND_P2P
from repro.trace.columns import KIND_CODES, TraceColumns
from repro.trace.records import TraceRecord

__all__ = [
    "sender_stream",
    "size_stream",
    "p2p_count",
    "collective_count",
    "summarize_stream",
    "StreamSummary",
]


def _filtered(records: Iterable[TraceRecord], kinds: Sequence[str] | None) -> list[TraceRecord]:
    if kinds is None:
        return list(records)
    allowed = set(kinds)
    return [r for r in records if r.kind in allowed]


def _kind_mask(columns: TraceColumns, kinds: Sequence[str] | None) -> np.ndarray | None:
    """Boolean selection mask for ``kinds`` (None = keep everything)."""
    if kinds is None:
        return None
    codes = sorted({KIND_CODES[k] for k in kinds if k in KIND_CODES})
    kind_codes = columns.kind_code_array()
    if not codes:
        return np.zeros(len(kind_codes), dtype=bool)
    if len(codes) == len(KIND_CODES):
        return None
    if len(codes) == 1:
        return kind_codes == codes[0]
    return np.isin(kind_codes, codes)


def sender_stream(
    records: Iterable[TraceRecord] | TraceColumns, kinds: Sequence[str] | None = None
) -> np.ndarray:
    """Return the sequence of sender ranks as an int64 array."""
    if isinstance(records, TraceColumns):
        senders = records.sender_array()
        mask = _kind_mask(records, kinds)
        return senders if mask is None else senders[mask]
    return np.array([r.sender for r in _filtered(records, kinds)], dtype=np.int64)


def size_stream(
    records: Iterable[TraceRecord] | TraceColumns, kinds: Sequence[str] | None = None
) -> np.ndarray:
    """Return the sequence of message sizes (bytes) as an int64 array."""
    if isinstance(records, TraceColumns):
        sizes = records.size_array()
        mask = _kind_mask(records, kinds)
        return sizes if mask is None else sizes[mask]
    return np.array([r.nbytes for r in _filtered(records, kinds)], dtype=np.int64)


def p2p_count(records: Iterable[TraceRecord] | TraceColumns) -> int:
    """Number of point-to-point messages in the trace."""
    if isinstance(records, TraceColumns):
        return int(np.count_nonzero(records.kind_code_array() == KIND_CODES[KIND_P2P]))
    return sum(1 for r in records if r.kind == KIND_P2P)


def collective_count(records: Iterable[TraceRecord] | TraceColumns) -> int:
    """Number of collective-generated messages in the trace."""
    if isinstance(records, TraceColumns):
        return int(
            np.count_nonzero(records.kind_code_array() == KIND_CODES[KIND_COLLECTIVE])
        )
    return sum(1 for r in records if r.kind == KIND_COLLECTIVE)


@dataclass(frozen=True)
class StreamSummary:
    """Table-1 style statistics of one receiving process' message stream.

    Attributes
    ----------
    total_messages:
        Total number of received messages (p2p + collective).
    p2p_messages / collective_messages:
        Counts by message kind.
    num_distinct_senders / num_distinct_sizes:
        Number of distinct values appearing in the sender / size streams.
    frequent_senders / frequent_sizes:
        Distinct values covering at least ``coverage`` of the stream, most
        frequent first.  The paper's Table 1 footnote says it reports "the
        number of the frequently appearing sender and message sizes", so the
        analysis layer reports both the raw distinct counts and these
        coverage-filtered counts.
    coverage:
        The coverage threshold used for the frequent-value lists.
    """

    total_messages: int
    p2p_messages: int
    collective_messages: int
    num_distinct_senders: int
    num_distinct_sizes: int
    frequent_senders: tuple[int, ...]
    frequent_sizes: tuple[int, ...]
    coverage: float

    @property
    def num_frequent_senders(self) -> int:
        """Number of senders needed to cover ``coverage`` of the stream."""
        return len(self.frequent_senders)

    @property
    def num_frequent_sizes(self) -> int:
        """Number of sizes needed to cover ``coverage`` of the stream."""
        return len(self.frequent_sizes)


def _frequent_values(values: Sequence[int], coverage: float) -> tuple[int, ...]:
    """Smallest set of most-frequent values covering ``coverage`` of the data."""
    if not len(values):
        return ()
    counts = Counter(int(v) for v in values)
    total = sum(counts.values())
    chosen: list[int] = []
    covered = 0
    for value, count in counts.most_common():
        chosen.append(value)
        covered += count
        if covered / total >= coverage:
            break
    return tuple(chosen)


def _frequent_values_array(values: np.ndarray, coverage: float) -> tuple[int, ...]:
    """Vectorised :func:`_frequent_values` with identical tie-breaking.

    ``Counter.most_common`` orders equal counts by first appearance (stable
    sort over insertion order), so ties here are broken by the index of each
    value's first occurrence.
    """
    if not values.size:
        return ()
    unique, first_index, counts = np.unique(values, return_index=True, return_counts=True)
    order = np.lexsort((first_index, -counts))
    covered = np.cumsum(counts[order])
    total = int(covered[-1])
    stop = int(np.argmax(covered / total >= coverage)) + 1
    return tuple(int(v) for v in unique[order][:stop])


def summarize_stream(
    records: Sequence[TraceRecord] | TraceColumns, coverage: float = 0.98
) -> StreamSummary:
    """Compute Table-1 statistics for one process' received-message trace."""
    if not (0.0 < coverage <= 1.0):
        raise ValueError(f"coverage must be in (0, 1], got {coverage}")
    if isinstance(records, TraceColumns):
        senders = records.sender_array()
        sizes = records.size_array()
        kind_codes = records.kind_code_array()
        p2p = int(np.count_nonzero(kind_codes == KIND_CODES[KIND_P2P]))
        return StreamSummary(
            total_messages=len(kind_codes),
            p2p_messages=p2p,
            collective_messages=int(
                np.count_nonzero(kind_codes == KIND_CODES[KIND_COLLECTIVE])
            ),
            num_distinct_senders=int(np.unique(senders).size),
            num_distinct_sizes=int(np.unique(sizes).size),
            frequent_senders=_frequent_values_array(senders, coverage),
            frequent_sizes=_frequent_values_array(sizes, coverage),
            coverage=coverage,
        )
    records = list(records)
    senders = [r.sender for r in records]
    sizes = [r.nbytes for r in records]
    return StreamSummary(
        total_messages=len(records),
        p2p_messages=p2p_count(records),
        collective_messages=collective_count(records),
        num_distinct_senders=len(set(senders)),
        num_distinct_sizes=len(set(sizes)),
        frequent_senders=_frequent_values(senders, coverage),
        frequent_sizes=_frequent_values(sizes, coverage),
        coverage=coverage,
    )
