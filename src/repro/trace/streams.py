"""Stream extraction and per-process summary statistics.

The predictor (and the paper's Table 1) works on two integer streams per
receiving process:

* the **sender stream**: the sequence of source ranks of received messages;
* the **size stream**: the sequence of message sizes.

These helpers turn a list of :class:`repro.trace.records.TraceRecord` into
NumPy arrays and compute the Table-1 statistics (message counts by kind,
number of distinct senders and sizes, dominant values).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.mpi.constants import KIND_COLLECTIVE, KIND_P2P
from repro.trace.records import TraceRecord

__all__ = [
    "sender_stream",
    "size_stream",
    "p2p_count",
    "collective_count",
    "summarize_stream",
    "StreamSummary",
]


def _filtered(records: Iterable[TraceRecord], kinds: Sequence[str] | None) -> list[TraceRecord]:
    if kinds is None:
        return list(records)
    allowed = set(kinds)
    return [r for r in records if r.kind in allowed]


def sender_stream(
    records: Iterable[TraceRecord], kinds: Sequence[str] | None = None
) -> np.ndarray:
    """Return the sequence of sender ranks as an int64 array."""
    return np.array([r.sender for r in _filtered(records, kinds)], dtype=np.int64)


def size_stream(
    records: Iterable[TraceRecord], kinds: Sequence[str] | None = None
) -> np.ndarray:
    """Return the sequence of message sizes (bytes) as an int64 array."""
    return np.array([r.nbytes for r in _filtered(records, kinds)], dtype=np.int64)


def p2p_count(records: Iterable[TraceRecord]) -> int:
    """Number of point-to-point messages in the trace."""
    return sum(1 for r in records if r.kind == KIND_P2P)


def collective_count(records: Iterable[TraceRecord]) -> int:
    """Number of collective-generated messages in the trace."""
    return sum(1 for r in records if r.kind == KIND_COLLECTIVE)


@dataclass(frozen=True)
class StreamSummary:
    """Table-1 style statistics of one receiving process' message stream.

    Attributes
    ----------
    total_messages:
        Total number of received messages (p2p + collective).
    p2p_messages / collective_messages:
        Counts by message kind.
    num_distinct_senders / num_distinct_sizes:
        Number of distinct values appearing in the sender / size streams.
    frequent_senders / frequent_sizes:
        Distinct values covering at least ``coverage`` of the stream, most
        frequent first.  The paper's Table 1 footnote says it reports "the
        number of the frequently appearing sender and message sizes", so the
        analysis layer reports both the raw distinct counts and these
        coverage-filtered counts.
    coverage:
        The coverage threshold used for the frequent-value lists.
    """

    total_messages: int
    p2p_messages: int
    collective_messages: int
    num_distinct_senders: int
    num_distinct_sizes: int
    frequent_senders: tuple[int, ...]
    frequent_sizes: tuple[int, ...]
    coverage: float

    @property
    def num_frequent_senders(self) -> int:
        """Number of senders needed to cover ``coverage`` of the stream."""
        return len(self.frequent_senders)

    @property
    def num_frequent_sizes(self) -> int:
        """Number of sizes needed to cover ``coverage`` of the stream."""
        return len(self.frequent_sizes)


def _frequent_values(values: Sequence[int], coverage: float) -> tuple[int, ...]:
    """Smallest set of most-frequent values covering ``coverage`` of the data."""
    if not len(values):
        return ()
    counts = Counter(int(v) for v in values)
    total = sum(counts.values())
    chosen: list[int] = []
    covered = 0
    for value, count in counts.most_common():
        chosen.append(value)
        covered += count
        if covered / total >= coverage:
            break
    return tuple(chosen)


def summarize_stream(
    records: Sequence[TraceRecord], coverage: float = 0.98
) -> StreamSummary:
    """Compute Table-1 statistics for one process' received-message trace."""
    if not (0.0 < coverage <= 1.0):
        raise ValueError(f"coverage must be in (0, 1], got {coverage}")
    records = list(records)
    senders = [r.sender for r in records]
    sizes = [r.nbytes for r in records]
    return StreamSummary(
        total_messages=len(records),
        p2p_messages=p2p_count(records),
        collective_messages=collective_count(records),
        num_distinct_senders=len(set(senders)),
        num_distinct_sizes=len(set(sizes)),
        frequent_senders=_frequent_values(senders, coverage),
        frequent_sizes=_frequent_values(sizes, coverage),
        coverage=coverage,
    )
