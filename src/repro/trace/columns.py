"""Columnar (structure-of-arrays) storage for trace records.

The tracer hooks run once or twice per simulated message; building a Python
object (or even a tuple) per record is the last per-message allocation on the
simulation hot path.  :class:`TraceColumns` therefore stores one trace level
of one rank as typed flat columns from the stdlib :mod:`array` module:

``meta``   ``array('q')``  sender, tag and kind-code bit-packed into one int64
``nbytes`` ``array('q')``  payload size in bytes
``time``   ``array('d')``  record timestamp (completion or arrival time)
``seq``    ``array('q')``  stream position, or ``None`` while it is implicit

Packing ``(sender, tag, kind)`` into the single ``meta`` column keeps the
hot-path append count low; both fields are bounded well below 2**31 in any
realistic run (ranks are process counts, tags grow by
:data:`repro.mpi.collectives.TAG_STRIDE` per collective) and the bound is
enforced at append time.  The physical stream's ``seq`` is its insertion
order, so it is not stored at all until :meth:`sort_by_arrival` materialises
the sorted positions.

Consumers read whole columns as NumPy arrays (``sender_array`` and friends)
and the analysis layer operates on those vectors; individual
:class:`repro.trace.records.TraceRecord` views are materialised lazily, only
when someone actually indexes or iterates the column store (the sequence
API keeps legacy record-list consumers working unchanged).
"""

from __future__ import annotations

from array import array
from typing import Iterator, Sequence

import numpy as np

from repro.mpi.constants import KIND_COLLECTIVE, KIND_P2P
from repro.trace.records import TraceRecord

__all__ = ["KIND_CODES", "KIND_NAMES", "TraceColumns", "pack_meta"]

#: Kind-code column encoding: ``"p2p"`` -> 0, ``"collective"`` -> 1.
KIND_CODES: dict[str, int] = {KIND_P2P: 0, KIND_COLLECTIVE: 1}

#: Inverse of :data:`KIND_CODES`, indexed by code.
KIND_NAMES: tuple[str, str] = (KIND_P2P, KIND_COLLECTIVE)

#: Bit layout of the ``meta`` column: ``sender << 32 | tag << 1 | kind``.
META_SENDER_SHIFT = 32
META_TAG_SHIFT = 1
META_KIND_MASK = 1
#: ``sender`` and ``tag`` must both fit in 31 bits for the packed layout.
META_FIELD_LIMIT = 1 << 31
_TAG_MASK = META_FIELD_LIMIT - 1


def pack_meta(sender: int, tag: int, kind_code: int) -> int:
    """Pack ``(sender, tag, kind_code)`` into one meta-column int64."""
    if (sender | tag) >> 31 or sender < 0 or tag < 0:
        raise ValueError(
            f"sender={sender} tag={tag} outside the packed meta-column range "
            f"[0, {META_FIELD_LIMIT})"
        )
    return (sender << META_SENDER_SHIFT) | (tag << META_TAG_SHIFT) | kind_code


class TraceColumns(Sequence):
    """One trace level (logical or physical) of one rank, stored columnar.

    Behaves as an immutable-ish sequence of :class:`TraceRecord` (len, index,
    slice, iterate, compare against record lists), while exposing the raw
    columns and vectorised NumPy accessors to the analysis layer.

    Parameters
    ----------
    receiver:
        The owning rank (the ``receiver`` field of every materialised record).
    explicit_seq:
        Whether stream positions are stored (logical streams, loaded traces)
        or implicit insertion order (physical streams while recording).
    """

    __slots__ = ("receiver", "meta", "nbytes", "time", "seq", "_records_cache")

    def __init__(self, receiver: int, explicit_seq: bool = True) -> None:
        self.receiver = receiver
        self.meta = array("q")
        self.nbytes = array("q")
        self.time = array("d")
        self.seq: array | None = array("q") if explicit_seq else None
        self._records_cache: list[TraceRecord] | None = None

    # ------------------------------------------------------------------
    # Pickling (bound-method append caches never live here, so default
    # slot-state pickling works; spelled out for clarity and stability).
    # ------------------------------------------------------------------
    def __getstate__(self):
        return (self.receiver, self.meta, self.nbytes, self.time, self.seq)

    def __setstate__(self, state) -> None:
        self.receiver, self.meta, self.nbytes, self.time, self.seq = state
        self._records_cache = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(
        self,
        sender: int,
        nbytes: int,
        tag: int,
        kind: str,
        time: float,
        seq: int | None = None,
    ) -> None:
        """Append one record (the convenience path; the tracer appends raw
        scalars through cached bound methods instead)."""
        code = KIND_CODES.get(kind)
        if code is None:
            raise ValueError(
                f"unsupported record kind {kind!r} "
                f"(the columnar store encodes {sorted(KIND_CODES)})"
            )
        self.meta.append(pack_meta(sender, tag, code))
        self.nbytes.append(nbytes)
        self.time.append(time)
        if seq is not None:
            self._ensure_explicit_seq(len(self.meta) - 1)
            self.seq.append(seq)
        elif self.seq is not None:
            self.seq.append(len(self.meta) - 1)
        self._records_cache = None

    def _ensure_explicit_seq(self, existing: int) -> None:
        """Materialise the implicit insertion-order ``seq`` column."""
        if self.seq is None:
            self.seq = array("q", range(existing))

    # ------------------------------------------------------------------
    # Vectorised accessors (fresh NumPy arrays, safe for callers to keep)
    # ------------------------------------------------------------------
    def _meta_np(self) -> np.ndarray:
        return np.frombuffer(self.meta, dtype=np.int64)

    def sender_array(self) -> np.ndarray:
        """Sender ranks as an int64 array."""
        return self._meta_np() >> META_SENDER_SHIFT

    def size_array(self) -> np.ndarray:
        """Message sizes (bytes) as an int64 array."""
        return np.frombuffer(self.nbytes, dtype=np.int64).copy()

    def tag_array(self) -> np.ndarray:
        """Message tags as an int64 array."""
        return (self._meta_np() >> META_TAG_SHIFT) & _TAG_MASK

    def kind_code_array(self) -> np.ndarray:
        """Kind codes (see :data:`KIND_CODES`) as an int64 array."""
        return self._meta_np() & META_KIND_MASK

    def time_array(self) -> np.ndarray:
        """Record timestamps as a float64 array."""
        return np.frombuffer(self.time, dtype=np.float64).copy()

    def seq_array(self) -> np.ndarray:
        """Stream positions as an int64 array (implicit -> 0..n-1)."""
        if self.seq is None:
            return np.arange(len(self.meta), dtype=np.int64)
        return np.frombuffer(self.seq, dtype=np.int64).copy()

    # ------------------------------------------------------------------
    # Sorting (canonical stream orders)
    # ------------------------------------------------------------------
    def _reorder(self, order: np.ndarray) -> None:
        meta = self._meta_np()[order]
        sizes = np.frombuffer(self.nbytes, dtype=np.int64)[order]
        times = np.frombuffer(self.time, dtype=np.float64)[order]
        self.meta = array("q")
        self.meta.frombytes(meta.tobytes())
        self.nbytes = array("q")
        self.nbytes.frombytes(sizes.tobytes())
        self.time = array("d")
        self.time.frombytes(times.tobytes())
        self._records_cache = None

    def sort_by_seq(self) -> None:
        """Sort into stream-position order (the logical canonical order)."""
        if len(self.meta) <= 1:
            return
        if self.seq is None:  # already in insertion == seq order
            return
        seqs = np.frombuffer(self.seq, dtype=np.int64)
        order = np.argsort(seqs, kind="stable")
        self._reorder(order)
        self.seq = array("q")
        self.seq.frombytes(seqs[order].tobytes())

    def sort_by_arrival(self) -> None:
        """Sort by ``(time, sender, tag)`` (the physical canonical order).

        Exact-tie timestamps are real under deterministic networks (the
        symmetric phases of a collective land several senders' payloads on
        one receiver at the same instant), and *insertion* order for such
        ties is an engine artefact: the partitioned parallel drain pushes
        barrier-injected remote arrivals after locally scheduled ones, while
        the single-process drains interleave them in global posting order.
        Breaking ties by the packed ``meta`` word (sender-major, then tag)
        instead makes the canonical stream a pure function of the simulated
        communication, identical across every engine.  The per-channel FIFO
        clamp guarantees two same-sender records never share a timestamp
        (the only exception — a fault-injected duplicate ghost — is bitwise
        identical to its original, so its relative order is unobservable).
        ``seq`` is then simply the canonical position, materialised as the
        explicit ``seq`` column.
        """
        n = len(self.meta)
        times = np.frombuffer(self.time, dtype=np.float64)
        if self.seq is None:
            if n <= 1:
                self._ensure_explicit_seq(n)
                return
            metas = self._meta_np()
            sizes = np.frombuffer(self.nbytes, dtype=np.int64)
            order = np.lexsort((sizes, metas, times))
            self._reorder(order)
            self.seq = array("q")
            self.seq.frombytes(np.arange(n, dtype=np.int64).tobytes())
        else:
            if n <= 1:
                return
            seqs = np.frombuffer(self.seq, dtype=np.int64)
            order = np.lexsort((seqs, times))
            self._reorder(order)
            self.seq = array("q")
            self.seq.frombytes(seqs[order].tobytes())

    # ------------------------------------------------------------------
    # Lazy record views (the API boundary)
    # ------------------------------------------------------------------
    def records(self) -> list[TraceRecord]:
        """Materialise the column store as a list of :class:`TraceRecord`.

        The returned list is the caller's to mutate; the records themselves
        are cached, so repeated calls only pay for the list copy.
        """
        return list(self._records())

    def _records(self) -> list[TraceRecord]:
        """The shared record cache (internal: callers must not mutate it)."""
        cached = self._records_cache
        if cached is not None:
            return cached
        n = len(self.meta)
        if not n:
            self._records_cache = []
            return self._records_cache
        meta = self._meta_np()
        senders = (meta >> META_SENDER_SHIFT).tolist()
        tags = ((meta >> META_TAG_SHIFT) & _TAG_MASK).tolist()
        names = KIND_NAMES
        kinds = [names[code] for code in (meta & META_KIND_MASK).tolist()]
        receiver = self.receiver
        record = TraceRecord
        self._records_cache = [
            record(receiver, s, nb, t, k, tm, q)
            for s, nb, t, k, tm, q in zip(
                senders, self.nbytes.tolist(), tags, kinds,
                self.time.tolist(), self.seq_array().tolist(),
            )
        ]
        return self._records_cache

    def _record_at(self, index: int) -> TraceRecord:
        meta = self.meta[index]
        seq = index if self.seq is None else self.seq[index]
        return TraceRecord(
            self.receiver,
            meta >> META_SENDER_SHIFT,
            self.nbytes[index],
            (meta >> META_TAG_SHIFT) & _TAG_MASK,
            KIND_NAMES[meta & META_KIND_MASK],
            self.time[index],
            seq,
        )

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.meta)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self._records()[index]
        n = len(self.meta)
        if index < 0:
            index += n
        if not (0 <= index < n):
            raise IndexError(f"record index {index} out of range for {n} records")
        return self._record_at(index)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records())

    def __eq__(self, other) -> bool:
        if isinstance(other, TraceColumns):
            return (
                self.receiver == other.receiver
                and self.meta == other.meta
                and self.nbytes == other.nbytes
                and self.time == other.time
                and np.array_equal(self.seq_array(), other.seq_array())
            )
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and self._records() == list(other)
        return NotImplemented

    __hash__ = None  # mutable container

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceColumns(receiver={self.receiver}, records={len(self.meta)})"
