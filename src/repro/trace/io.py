"""Trace persistence: save and load per-process traces as JSON lines.

Simulating the larger configurations takes seconds to minutes; analysing the
resulting streams (prediction sweeps, ablations) is much cheaper and often
repeated.  These helpers let users persist the two-level traces of a run and
re-load them later without re-simulating — the same role the original paper's
trace files played between the instrumented MPICH runs and the off-line
predictor evaluation.

Format: one JSON object per line.  The first line is a header describing the
run; every other line is one trace record with a ``level`` field ("logical"
or "physical").  The format is self-contained and append-friendly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, TextIO

from repro.trace.records import TraceRecord
from repro.trace.tracer import ProcessTrace, TwoLevelTracer

__all__ = ["save_traces", "load_traces", "save_process_trace", "load_process_trace"]

_FORMAT_VERSION = 1


def _record_to_json(record: TraceRecord, level: str) -> dict:
    payload = record._asdict()
    payload["level"] = level
    return payload


def _record_from_json(payload: dict) -> tuple[str, TraceRecord]:
    level = payload.pop("level")
    return level, TraceRecord(**payload)


def save_process_trace(trace: ProcessTrace, stream: TextIO) -> int:
    """Write one rank's logical+physical records to an open text stream.

    Returns the number of records written.
    """
    count = 0
    for record in trace.logical:
        stream.write(json.dumps(_record_to_json(record, "logical")) + "\n")
        count += 1
    for record in trace.physical:
        stream.write(json.dumps(_record_to_json(record, "physical")) + "\n")
        count += 1
    return count


def load_process_trace(rank: int, lines: Iterable[str]) -> ProcessTrace:
    """Rebuild one rank's :class:`ProcessTrace` from JSON lines."""
    trace = ProcessTrace(rank=rank)
    for line in lines:
        line = line.strip()
        if not line:
            continue
        level, record = _record_from_json(json.loads(line))
        if record.receiver != rank:
            continue
        if level == "logical":
            trace.logical.append(record)
        elif level == "physical":
            trace.physical.append(record)
        else:
            raise ValueError(f"unknown trace level {level!r}")
    trace.sort()
    return trace


def save_traces(
    tracer: TwoLevelTracer,
    path: str | Path,
    metadata: dict | None = None,
) -> int:
    """Save every rank's traces to ``path`` (JSON lines).

    Parameters
    ----------
    tracer:
        The finalized tracer of a completed simulation.
    path:
        Destination file.
    metadata:
        Optional run metadata (workload name, seed, ...) stored in the header
        line and returned by :func:`load_traces`.

    Returns
    -------
    int
        Total number of records written.
    """
    path = Path(path)
    tracer.finalize()
    header = {
        "format": "repro-trace",
        "version": _FORMAT_VERSION,
        "nprocs": tracer.nprocs,
        "metadata": metadata or {},
    }
    total = 0
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        for trace in tracer.traces:
            total += save_process_trace(trace, handle)
    return total


def load_traces(path: str | Path) -> tuple[list[ProcessTrace], dict]:
    """Load traces saved by :func:`save_traces`.

    Returns
    -------
    (traces, metadata):
        One :class:`ProcessTrace` per rank (index = rank) and the metadata
        dictionary stored at save time.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError(f"{path} is empty")
        header = json.loads(header_line)
        if header.get("format") != "repro-trace":
            raise ValueError(f"{path} is not a repro trace file")
        if header.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {header.get('version')!r} "
                f"(expected {_FORMAT_VERSION})"
            )
        nprocs = int(header["nprocs"])
        traces = [ProcessTrace(rank=rank) for rank in range(nprocs)]
        for line in handle:
            line = line.strip()
            if not line:
                continue
            level, record = _record_from_json(json.loads(line))
            if not (0 <= record.receiver < nprocs):
                raise ValueError(f"record receiver {record.receiver} out of range")
            target = traces[record.receiver]
            (target.logical if level == "logical" else target.physical).append(record)
    for trace in traces:
        trace.sort()
    return traces, header.get("metadata", {})
