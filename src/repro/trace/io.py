"""Trace persistence: save and load per-process traces as JSON lines.

Simulating the larger configurations takes seconds to minutes; analysing the
resulting streams (prediction sweeps, ablations) is much cheaper and often
repeated.  These helpers let users persist the two-level traces of a run and
re-load them later without re-simulating — the same role the original paper's
trace files played between the instrumented MPICH runs and the off-line
predictor evaluation.

Format (version 2, columnar): one JSON object per line.  The first line is a
header describing the run; every other line is **one rank's whole trace** —
the logical and physical column vectors (sender, nbytes, tag, kind_code,
time, seq) serialised as parallel lists.  One object per rank instead of one
per record keeps both the file size and the save/load cost per message tiny:
serialisation runs over whole columns, never over Python record objects.

The version-1 format (one JSON object per record, with a ``level`` field) is
still read transparently by :func:`load_traces`, and
:func:`save_process_trace` / :func:`load_process_trace` keep speaking it for
interoperability with old files and external tooling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, TextIO

import numpy as np

from repro.trace.columns import (
    META_FIELD_LIMIT,
    META_SENDER_SHIFT,
    META_TAG_SHIFT,
    TraceColumns,
)
from repro.trace.records import TraceRecord
from repro.trace.tracer import ProcessTrace, TwoLevelTracer

__all__ = [
    "save_traces",
    "save_traces_to",
    "load_traces",
    "load_traces_from",
    "save_process_trace",
    "load_process_trace",
]

_FORMAT_VERSION = 2
_LEGACY_FORMAT_VERSION = 1

#: Field order of the columnar payload (version 2).
_COLUMN_FIELDS = ("sender", "nbytes", "tag", "kind_code", "time", "seq")


# ----------------------------------------------------------------------
# Version-1 (per-record) helpers — the backward-compatible record format
# ----------------------------------------------------------------------
def _record_to_json(record: TraceRecord, level: str) -> dict:
    payload = record._asdict()
    payload["level"] = level
    return payload


def _record_from_json(payload: dict) -> tuple[str, TraceRecord]:
    level = payload.pop("level")
    return level, TraceRecord(**payload)


def save_process_trace(trace: ProcessTrace, stream: TextIO) -> int:
    """Write one rank's logical+physical records as version-1 JSON lines.

    This is the legacy one-object-per-record format; :func:`save_traces`
    writes the columnar format instead.  Returns the number of records
    written.
    """
    count = 0
    for record in trace.logical:
        stream.write(json.dumps(_record_to_json(record, "logical")) + "\n")
        count += 1
    for record in trace.physical:
        stream.write(json.dumps(_record_to_json(record, "physical")) + "\n")
        count += 1
    return count


def load_process_trace(rank: int, lines: Iterable[str]) -> ProcessTrace:
    """Rebuild one rank's :class:`ProcessTrace` from version-1 JSON lines."""
    trace = ProcessTrace(rank=rank)
    for line in lines:
        line = line.strip()
        if not line:
            continue
        level, record = _record_from_json(json.loads(line))
        if record.receiver != rank:
            continue
        if level == "logical":
            target = trace.logical
        elif level == "physical":
            target = trace.physical
        else:
            raise ValueError(f"unknown trace level {level!r}")
        target.append(record.sender, record.nbytes, record.tag, record.kind,
                      record.time, record.seq)
    trace.sort()
    return trace


# ----------------------------------------------------------------------
# Version-2 (columnar) helpers
# ----------------------------------------------------------------------
def _columns_to_payload(columns: TraceColumns) -> dict:
    """One trace level as parallel column lists (JSON-ready)."""
    return {
        "sender": columns.sender_array().tolist(),
        "nbytes": columns.size_array().tolist(),
        "tag": columns.tag_array().tolist(),
        "kind_code": columns.kind_code_array().tolist(),
        "time": columns.time_array().tolist(),
        "seq": columns.seq_array().tolist(),
    }


def _columns_from_payload(receiver: int, payload: dict) -> TraceColumns:
    """Rebuild a :class:`TraceColumns` from parallel column lists."""
    missing = [field for field in _COLUMN_FIELDS if field not in payload]
    if missing:
        raise ValueError(f"trace payload is missing columns: {missing}")
    lengths = {field: len(payload[field]) for field in _COLUMN_FIELDS}
    if len(set(lengths.values())) > 1:
        raise ValueError(f"trace payload columns have unequal lengths: {lengths}")
    columns = TraceColumns(receiver)
    n = lengths["sender"]
    if not n:
        return columns
    senders = np.asarray(payload["sender"], dtype=np.int64)
    tags = np.asarray(payload["tag"], dtype=np.int64)
    kind_codes = np.asarray(payload["kind_code"], dtype=np.int64)
    for name, values in (("sender", senders), ("tag", tags)):
        if values.min() < 0 or values.max() >= META_FIELD_LIMIT:
            raise ValueError(
                f"trace payload {name} column outside [0, {META_FIELD_LIMIT})"
            )
    if kind_codes.min() < 0 or kind_codes.max() > 1:
        raise ValueError("trace payload kind_code column must be 0 (p2p) or 1 (collective)")
    meta = (senders << META_SENDER_SHIFT) | (tags << META_TAG_SHIFT) | kind_codes
    columns.meta.frombytes(meta.tobytes())
    columns.nbytes.frombytes(np.asarray(payload["nbytes"], dtype=np.int64).tobytes())
    columns.time.frombytes(np.asarray(payload["time"], dtype=np.float64).tobytes())
    columns.seq.frombytes(np.asarray(payload["seq"], dtype=np.int64).tobytes())
    return columns


# ----------------------------------------------------------------------
# Whole-run save/load
# ----------------------------------------------------------------------
def save_traces_to(
    tracer: TwoLevelTracer,
    handle: TextIO,
    metadata: dict | None = None,
) -> int:
    """Write every rank's traces to an open text handle (columnar format).

    Returns the total number of records written.
    """
    tracer.finalize()
    header = {
        "format": "repro-trace",
        "version": _FORMAT_VERSION,
        "nprocs": tracer.nprocs,
        "metadata": metadata or {},
    }
    handle.write(json.dumps(header) + "\n")
    total = 0
    for trace in tracer.traces:
        payload = {
            "rank": trace.rank,
            "logical": _columns_to_payload(trace.logical),
            "physical": _columns_to_payload(trace.physical),
        }
        handle.write(json.dumps(payload) + "\n")
        total += len(trace.logical) + len(trace.physical)
    return total


def save_traces(
    tracer: TwoLevelTracer,
    path: str | Path,
    metadata: dict | None = None,
) -> int:
    """Save every rank's traces to ``path`` (columnar JSON lines).

    Parameters
    ----------
    tracer:
        The finalized tracer of a completed simulation.
    path:
        Destination file.
    metadata:
        Optional run metadata (workload name, seed, ...) stored in the header
        line and returned by :func:`load_traces`.

    Returns
    -------
    int
        Total number of records written.
    """
    with Path(path).open("w", encoding="utf-8") as handle:
        return save_traces_to(tracer, handle, metadata=metadata)


def _load_v1_records(handle: TextIO, traces: list[ProcessTrace]) -> None:
    """Append version-1 per-record lines into per-rank column stores."""
    nprocs = len(traces)
    for line in handle:
        line = line.strip()
        if not line:
            continue
        level, record = _record_from_json(json.loads(line))
        if not (0 <= record.receiver < nprocs):
            raise ValueError(f"record receiver {record.receiver} out of range")
        target = traces[record.receiver]
        columns = target.logical if level == "logical" else target.physical
        columns.append(record.sender, record.nbytes, record.tag, record.kind,
                       record.time, record.seq)


def _load_v2_ranks(handle: TextIO, traces: list[ProcessTrace]) -> None:
    """Load version-2 one-object-per-rank columnar lines."""
    nprocs = len(traces)
    for line in handle:
        line = line.strip()
        if not line:
            continue
        payload = json.loads(line)
        rank = int(payload["rank"])
        if not (0 <= rank < nprocs):
            raise ValueError(f"trace rank {rank} out of range")
        traces[rank] = ProcessTrace(
            rank=rank,
            logical=_columns_from_payload(rank, payload["logical"]),
            physical=_columns_from_payload(rank, payload["physical"]),
        )


def load_traces_from(handle: TextIO) -> tuple[list[ProcessTrace], dict]:
    """Load traces from an open text handle (either format version)."""
    header_line = handle.readline()
    if not header_line:
        raise ValueError("trace stream is empty")
    header = json.loads(header_line)
    if header.get("format") != "repro-trace":
        raise ValueError("not a repro trace file")
    version = header.get("version")
    if version not in (_FORMAT_VERSION, _LEGACY_FORMAT_VERSION):
        raise ValueError(
            f"unsupported trace format version {version!r} "
            f"(expected {_LEGACY_FORMAT_VERSION} or {_FORMAT_VERSION})"
        )
    nprocs = int(header["nprocs"])
    traces = [ProcessTrace(rank=rank) for rank in range(nprocs)]
    if version == _FORMAT_VERSION:
        _load_v2_ranks(handle, traces)
    else:
        _load_v1_records(handle, traces)
    for trace in traces:
        trace.sort()
    return traces, header.get("metadata", {})


def load_traces(path: str | Path) -> tuple[list[ProcessTrace], dict]:
    """Load traces saved by :func:`save_traces` (or the legacy v1 format).

    Returns
    -------
    (traces, metadata):
        One :class:`ProcessTrace` per rank (index = rank) and the metadata
        dictionary stored at save time.
    """
    with Path(path).open("r", encoding="utf-8") as handle:
        return load_traces_from(handle)
