"""Trace record type shared by the logical and physical tracers."""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["TraceRecord"]


class TraceRecord(NamedTuple):
    """One received message, as seen by one of the two trace levels.

    A named tuple rather than a dataclass: two records are built per
    simulated message (one per trace level), and tuple construction is
    allocation-cheap on that hot path.

    Attributes
    ----------
    receiver:
        Rank that received the message.
    sender:
        Rank that sent the message.
    nbytes:
        Message size in bytes.
    tag:
        Message tag (collective-internal tags are >= ``COLLECTIVE_TAG_BASE``).
    kind:
        ``"p2p"`` or ``"collective"``.
    time:
        For physical records, the arrival time; for logical records, the time
        at which the receive completed at the application level.
    seq:
        Position of the record within its stream (0-based).  For logical
        records this is the program-order index of the receive; for physical
        records it is the arrival-order index.
    """

    receiver: int
    sender: int
    nbytes: int
    tag: int
    kind: str
    time: float
    seq: int
