"""Importer for DUMPI-style text trace dumps.

Real MPI trace archives (the SST/DUMPI corpus, LANL's trace releases) are
commonly distributed as one-call-per-line text dumps.  This module parses a
minimal DUMPI-like dialect into the same per-rank *logical receive* records
the native v2 columnar format (:mod:`repro.trace.io`) yields, so
``workload="replay:file=trace.dumpi"`` and ``replay:file=trace.jsonl`` feed
the identical replay pipeline.

Format
------
One event per line::

    <rank> <time> <MPI_Call> key=value [key=value ...]

* ``rank`` — integer rank the call was made on.
* ``time`` — seconds since trace start (float).
* ``MPI_Call`` — the call name; must start with ``MPI_``.

Recognised calls:

* ``MPI_Recv`` / ``MPI_Irecv`` — **required**: ``src=``, ``tag=``,
  ``bytes=``.  These become the replayed logical receive records.
* ``MPI_Send`` / ``MPI_Isend`` — **required**: ``dest=``, ``tag=``,
  ``bytes=``.  Validated but otherwise ignored: the replay reconstructs the
  send side from the receivers' logical records (see
  :mod:`repro.workloads.replay`), so send lines only widen the known rank
  set.
* Any other ``MPI_*`` call (waits, barriers, collectives already flattened
  by the dumper) is skipped.

Non-event lines:

* blank lines and ``#`` comments are ignored;
* an optional ``meta nprocs N`` header pins the process count (otherwise it
  is inferred as ``max rank seen + 1``).

Every syntax or consistency error raises :class:`DumpiParseError` carrying
the 1-based line number, so malformed or truncated inputs fail with a
pointed message instead of replaying garbage.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.trace.columns import META_FIELD_LIMIT

__all__ = ["DumpiParseError", "DumpiEvent", "load_dumpi", "parse_dumpi"]


class DumpiParseError(ValueError):
    """A malformed DUMPI input line (carries the 1-based line number)."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


class DumpiEvent(tuple):
    """One logical receive record: ``(sender, nbytes, tag, kind_code, time, seq)``.

    A plain tuple subclass with named accessors — the replay layer consumes
    these positionally, identical to the v2 columnar field order
    (:data:`repro.trace.io._COLUMN_FIELDS` minus the receiver, which keys
    the per-rank mapping).
    """

    __slots__ = ()

    @property
    def sender(self) -> int:
        return self[0]

    @property
    def nbytes(self) -> int:
        return self[1]

    @property
    def tag(self) -> int:
        return self[2]

    @property
    def kind_code(self) -> int:
        return self[3]

    @property
    def time(self) -> float:
        return self[4]

    @property
    def seq(self) -> int:
        return self[5]


_RECV_CALLS = frozenset({"MPI_Recv", "MPI_Irecv"})
_SEND_CALLS = frozenset({"MPI_Send", "MPI_Isend"})


def _parse_int(raw: str, field: str, line_number: int) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise DumpiParseError(line_number, f"{field}={raw!r} is not an integer") from None
    if value < 0:
        raise DumpiParseError(line_number, f"{field}={value} must be non-negative")
    return value


def _parse_kv(tokens: list[str], line_number: int) -> dict[str, str]:
    fields: dict[str, str] = {}
    for token in tokens:
        key, sep, value = token.partition("=")
        if not sep or not key or not value:
            raise DumpiParseError(
                line_number, f"expected key=value argument, got {token!r}"
            )
        if key in fields:
            raise DumpiParseError(line_number, f"duplicate argument {key!r}")
        fields[key] = value
    return fields


def _require(fields: dict[str, str], keys: tuple[str, ...], call: str, line_number: int):
    for key in keys:
        if key not in fields:
            raise DumpiParseError(line_number, f"{call} is missing required {key}= argument")


def parse_dumpi(lines: Iterable[str]) -> tuple[int, dict[int, list[DumpiEvent]]]:
    """Parse DUMPI text lines into ``(nprocs, receives_by_rank)``.

    ``receives_by_rank`` maps each receiving rank to its logical receive
    records in file order (``seq`` is the per-rank position).  Ranks that
    only send appear in the process count but get no record list entry.
    """
    meta_nprocs: int | None = None
    max_rank = -1
    receives: dict[int, list[DumpiEvent]] = {}
    saw_event = False
    for line_number, raw_line in enumerate(lines, start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        if tokens[0] == "meta":
            if saw_event:
                raise DumpiParseError(line_number, "meta header after the first event")
            if len(tokens) != 3 or tokens[1] != "nprocs":
                raise DumpiParseError(
                    line_number, f"unrecognised meta line {line!r} (expected 'meta nprocs N')"
                )
            meta_nprocs = _parse_int(tokens[2], "nprocs", line_number)
            if meta_nprocs == 0:
                raise DumpiParseError(line_number, "meta nprocs must be positive")
            continue
        if len(tokens) < 3:
            raise DumpiParseError(
                line_number,
                f"truncated event line {line!r} (expected '<rank> <time> <MPI_Call> ...')",
            )
        rank = _parse_int(tokens[0], "rank", line_number)
        try:
            time = float(tokens[1])
        except ValueError:
            raise DumpiParseError(
                line_number, f"time {tokens[1]!r} is not a number"
            ) from None
        if time < 0:
            raise DumpiParseError(line_number, f"time {time} must be non-negative")
        call = tokens[2]
        if not call.startswith("MPI_"):
            raise DumpiParseError(
                line_number, f"call name {call!r} does not start with 'MPI_'"
            )
        saw_event = True
        max_rank = max(max_rank, rank)
        fields = _parse_kv(tokens[3:], line_number)
        if call in _RECV_CALLS:
            _require(fields, ("src", "tag", "bytes"), call, line_number)
            src = _parse_int(fields["src"], "src", line_number)
            tag = _parse_int(fields["tag"], "tag", line_number)
            nbytes = _parse_int(fields["bytes"], "bytes", line_number)
            if src >= META_FIELD_LIMIT or tag >= META_FIELD_LIMIT:
                raise DumpiParseError(
                    line_number,
                    f"src={src} tag={tag} outside the trace meta range "
                    f"[0, {META_FIELD_LIMIT})",
                )
            max_rank = max(max_rank, src)
            records = receives.setdefault(rank, [])
            records.append(DumpiEvent((src, nbytes, tag, 0, time, len(records))))
        elif call in _SEND_CALLS:
            _require(fields, ("dest", "tag", "bytes"), call, line_number)
            dest = _parse_int(fields["dest"], "dest", line_number)
            _parse_int(fields["tag"], "tag", line_number)
            _parse_int(fields["bytes"], "bytes", line_number)
            max_rank = max(max_rank, dest)
        # Other MPI_* calls carry no replayable payload: skip.
    if max_rank < 0:
        raise DumpiParseError(1, "trace contains no events")
    inferred = max_rank + 1
    if meta_nprocs is not None:
        if inferred > meta_nprocs:
            raise DumpiParseError(
                1, f"meta nprocs {meta_nprocs} but trace references rank {max_rank}"
            )
        return meta_nprocs, receives
    return inferred, receives


def load_dumpi(path: str | os.PathLike) -> tuple[int, dict[int, list[DumpiEvent]]]:
    """Parse a DUMPI text file; see :func:`parse_dumpi`."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_dumpi(handle)
