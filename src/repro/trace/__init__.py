"""Two-level message tracing (the paper's Section 3.1 instrumentation).

The paper instruments MPICH at two levels:

* the **logical** level — MPI calls as they cross from the application into
  the top of the library; the stream order reflects program structure, and
* the **physical** level — messages as they actually arrive at the bottom of
  the library; the stream order additionally reflects network timing noise.

:class:`repro.trace.tracer.TwoLevelTracer` reproduces both.  Trace data is
stored columnar (:mod:`repro.trace.columns`): the transport hooks append
scalars into typed per-rank column arrays, and named
:class:`repro.trace.records.TraceRecord` views are materialised lazily at
the API boundary.  Analysis code extracts per-process sender and
message-size streams as whole NumPy columns via :mod:`repro.trace.streams`.
"""

from repro.trace.columns import TraceColumns
from repro.trace.io import load_traces, save_traces
from repro.trace.records import TraceRecord
from repro.trace.streams import (
    StreamSummary,
    collective_count,
    p2p_count,
    sender_stream,
    size_stream,
    summarize_stream,
)
from repro.trace.tracer import ProcessTrace, TwoLevelTracer

__all__ = [
    "TraceRecord",
    "TraceColumns",
    "TwoLevelTracer",
    "save_traces",
    "load_traces",
    "ProcessTrace",
    "sender_stream",
    "size_stream",
    "p2p_count",
    "collective_count",
    "summarize_stream",
    "StreamSummary",
]
