"""Two-level message tracing (the paper's Section 3.1 instrumentation).

The paper instruments MPICH at two levels:

* the **logical** level — MPI calls as they cross from the application into
  the top of the library; the stream order reflects program structure, and
* the **physical** level — messages as they actually arrive at the bottom of
  the library; the stream order additionally reflects network timing noise.

:class:`repro.trace.tracer.TwoLevelTracer` reproduces both.  Trace data is
stored columnar (:mod:`repro.trace.columns`): the transport hooks append
scalars into typed per-rank column arrays, and named
:class:`repro.trace.records.TraceRecord` views are materialised lazily at
the API boundary.  Analysis code extracts per-process sender and
message-size streams as whole NumPy columns via :mod:`repro.trace.streams`.

Traces persist as the version-2 columnar JSON-lines format (one object per
rank; the legacy version-1 per-record format is still read transparently) —
see ``docs/formats.md`` for the on-disk specification.  Besides the
path-based :func:`save_traces`/:func:`load_traces`, the handle-based
:func:`save_traces_to`/:func:`load_traces_from` are exported for callers
that stream traces through sockets, pipes or in-memory buffers.
"""

from repro.trace.columns import TraceColumns
from repro.trace.io import load_traces, load_traces_from, save_traces, save_traces_to
from repro.trace.records import TraceRecord
from repro.trace.streams import (
    StreamSummary,
    collective_count,
    p2p_count,
    sender_stream,
    size_stream,
    summarize_stream,
)
from repro.trace.tracer import ProcessTrace, TwoLevelTracer

__all__ = [
    "TraceRecord",
    "TraceColumns",
    "TwoLevelTracer",
    "save_traces",
    "save_traces_to",
    "load_traces",
    "load_traces_from",
    "ProcessTrace",
    "sender_stream",
    "size_stream",
    "p2p_count",
    "collective_count",
    "summarize_stream",
    "StreamSummary",
]
