"""Online evaluation of stream-prediction accuracy.

The paper's evaluation (Section 5) replays each receiving process' sender and
message-size streams through the predictor and measures, for every position
in the stream, whether the predictions issued for the next one to five values
("+1" … "+5") turn out to be correct.  :func:`evaluate_stream` reproduces that
protocol:

1. before observing the value at position ``t`` the predictor is asked for
   ``horizon`` predictions (+1 predicts position ``t``, +2 position ``t+1``,
   and so on);
2. the predictions are scored against the actual future values;
3. the value at position ``t`` is then fed to the predictor with
   :meth:`~repro.core.predictor.BasePredictor.observe`.

Positions for which the predictor declines to predict count as misses (this
is what makes the short IS.4 stream score ≈ 80 % in the paper: the first
period of the pattern must be seen before anything can be predicted).

Section 5.3 of the paper argues that for buffer pre-allocation the exact
*order* of the next few messages does not matter, only their multiset;
:func:`evaluate_unordered` measures that relaxed notion of accuracy.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.predictor import BasePredictor

__all__ = [
    "AccuracyResult",
    "UnorderedAccuracyResult",
    "evaluate_stream",
    "evaluate_unordered",
]

PredictorFactory = Callable[[], BasePredictor]


@dataclass(frozen=True)
class AccuracyResult:
    """Per-horizon prediction accuracy for one stream.

    Attributes
    ----------
    hits:
        ``hits[k]`` is the number of correct predictions at horizon ``k+1``.
    attempts:
        ``attempts[k]`` is the number of scored positions at horizon ``k+1``
        (positions near the end of the stream cannot be scored for the longer
        horizons and are excluded).
    predicted:
        ``predicted[k]`` counts positions where the predictor actually issued
        a prediction (was not ``None``); ``attempts - predicted`` positions
        are automatic misses.
    stream_length:
        Number of samples in the evaluated stream.
    """

    hits: np.ndarray
    attempts: np.ndarray
    predicted: np.ndarray
    stream_length: int

    @property
    def horizon(self) -> int:
        """Number of evaluated horizons."""
        return int(self.hits.shape[0])

    def accuracy(self, k: int) -> float:
        """Prediction accuracy (fraction) at horizon ``+k`` (1-based)."""
        if not 1 <= k <= self.horizon:
            raise ValueError(f"horizon must be in [1, {self.horizon}], got {k}")
        attempts = self.attempts[k - 1]
        return float(self.hits[k - 1] / attempts) if attempts else 0.0

    def coverage(self, k: int) -> float:
        """Fraction of positions at horizon ``+k`` where a prediction existed."""
        if not 1 <= k <= self.horizon:
            raise ValueError(f"horizon must be in [1, {self.horizon}], got {k}")
        attempts = self.attempts[k - 1]
        return float(self.predicted[k - 1] / attempts) if attempts else 0.0

    def accuracies(self) -> list[float]:
        """Accuracy for every horizon, ``+1`` first."""
        return [self.accuracy(k) for k in range(1, self.horizon + 1)]

    def as_percentages(self) -> list[float]:
        """Accuracy for every horizon as percentages (paper's y-axis)."""
        return [100.0 * a for a in self.accuracies()]


@dataclass(frozen=True)
class UnorderedAccuracyResult:
    """Order-insensitive accuracy over a sliding window of future values.

    ``mean_overlap`` is the average, over all scored positions, of the
    fraction of the next ``horizon`` actual values that also appear in the
    predicted multiset (Section 5.3's "knowing the next senders and their
    message size may be useful" argument).
    """

    mean_overlap: float
    positions: int
    horizon: int


def evaluate_stream(
    stream: Sequence[int],
    predictor_factory: PredictorFactory,
    horizon: int = 5,
    warmup: int = 0,
) -> AccuracyResult:
    """Replay ``stream`` through a fresh predictor and score each horizon.

    Parameters
    ----------
    stream:
        The integer stream (sender ranks or message sizes).
    predictor_factory:
        Zero-argument callable returning a fresh predictor.
    horizon:
        Number of future values predicted at every position (the paper uses 5).
    warmup:
        Number of initial positions excluded from scoring (but still fed to
        the predictor).  The paper scores the whole stream, so the default is
        0; the ablation benchmarks use non-zero warmups to separate "learning"
        from "steady state" accuracy.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if warmup < 0:
        raise ValueError(f"warmup must be non-negative, got {warmup}")
    values = np.asarray(stream, dtype=np.int64)
    n = int(values.shape[0])
    predictor = predictor_factory()

    hits = np.zeros(horizon, dtype=np.int64)
    attempts = np.zeros(horizon, dtype=np.int64)
    predicted = np.zeros(horizon, dtype=np.int64)

    # Warmup positions are never scored, so they can be fed through the
    # predictor's vectorised batch path in one call.
    warm = min(warmup, n)
    if warm:
        predictor.observe_many(values[:warm])

    # Collect every prediction into pre-sized matrices and score them with
    # one vectorised comparison per horizon after the replay loop.
    scored = n - warm
    predicted_values = np.zeros((scored, horizon), dtype=np.int64)
    predicted_mask = np.zeros((scored, horizon), dtype=bool)
    for t in range(warm, n):
        step_values, step_mask = predictor.predict_array(horizon)
        if step_values.shape[0] != horizon:
            raise ValueError(
                f"predictor returned {step_values.shape[0]} predictions, expected {horizon}"
            )
        row = t - warm
        predicted_values[row] = step_values
        predicted_mask[row] = step_mask
        predictor.observe(int(values[t]))

    for k in range(1, horizon + 1):
        # Positions t in [warm, n-k] have a scorable target at t + k - 1.
        count = n - k + 1 - warm
        if count <= 0:
            continue
        attempts[k - 1] = count
        targets = values[warm + k - 1 : warm + k - 1 + count]
        column_mask = predicted_mask[:count, k - 1]
        predicted[k - 1] = np.count_nonzero(column_mask)
        hits[k - 1] = np.count_nonzero(
            column_mask & (predicted_values[:count, k - 1] == targets)
        )

    return AccuracyResult(hits=hits, attempts=attempts, predicted=predicted, stream_length=n)


def evaluate_unordered(
    stream: Sequence[int],
    predictor_factory: PredictorFactory,
    horizon: int = 5,
    warmup: int = 0,
) -> UnorderedAccuracyResult:
    """Score predictions as multisets, ignoring the order of future values."""
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if warmup < 0:
        raise ValueError(f"warmup must be non-negative, got {warmup}")
    values = np.asarray(stream, dtype=np.int64)
    n = int(values.shape[0])
    predictor = predictor_factory()

    total_overlap = 0.0
    positions = 0
    for t in range(n):
        if t >= warmup and t + horizon <= n:
            predictions = [p for p in predictor.predict(horizon) if p is not None]
            actual = Counter(int(v) for v in values[t : t + horizon])
            predicted_counts = Counter(int(p) for p in predictions)
            overlap = sum((actual & predicted_counts).values())
            total_overlap += overlap / horizon
            positions += 1
        predictor.observe(int(values[t]))

    mean = total_overlap / positions if positions else 0.0
    return UnorderedAccuracyResult(mean_overlap=mean, positions=positions, horizon=horizon)
