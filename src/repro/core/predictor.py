"""Multi-step MPI message stream predictor built on the periodicity detector.

The paper's prediction scheme (Section 4.2): detect the periodicity ``m`` of
the data stream with the DPD, then predict the next several values by
replaying the last period — the value expected ``k`` steps in the future is
the value observed ``m - k`` steps in the past (modulo the period).  Because
a whole period is known, *several* future values can be predicted at once,
which is exactly what distinguishes this predictor from the single-step
heuristics in the related work.

Runtime cost: one :meth:`PeriodicityPredictor.observe` consumes the DPD's
incrementally maintained mismatch counters (O(max_period) vectorised work)
instead of re-running the full equation-(1) scan, and
:meth:`PeriodicityPredictor.observe_many` feeds a whole chunk through the
DPD's batch path while reproducing the exact per-sample bookkeeping
(``detections``, ``period_changes``, stickiness) of a sequential loop.

All predictors in this package share the :class:`BasePredictor` interface so
that the evaluation harness and the ablation benchmarks can swap them freely:

* :meth:`BasePredictor.observe` — feed the next observed stream value;
* :meth:`BasePredictor.predict` — return predictions for the next ``horizon``
  values (``None`` entries mean "no prediction");
* :meth:`BasePredictor.predict_array` — the same predictions as a
  ``(values, mask)`` NumPy pair for vectorised scoring.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.circular_buffer import _as_int64_1d
from repro.core.dpd import DynamicPeriodicityDetector

__all__ = ["BasePredictor", "PeriodicityPredictor"]


class BasePredictor:
    """Common interface of every stream predictor."""

    #: Short name used in benchmark output.
    name: str = "base"

    def observe(self, value: int) -> None:
        """Feed one observed stream value."""
        raise NotImplementedError

    def predict(self, horizon: int = 1) -> list[Optional[int]]:
        """Predict the next ``horizon`` values.

        Entry ``k`` of the returned list is the prediction for the value that
        will be observed ``k+1`` observations from now (the paper's ``+1`` …
        ``+horizon``).  ``None`` means the predictor declines to predict that
        position (for example, no periodicity detected yet).
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all learned state."""
        raise NotImplementedError

    def observe_many(self, values: Sequence[int]) -> None:
        """Feed a sequence of values in order."""
        for value in values:
            self.observe(value)

    def predict_array(self, horizon: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """Predictions as a ``(values, mask)`` pair of length-``horizon`` arrays.

        ``mask[k]`` is False where the predictor declines (the matching
        ``values[k]`` entry is meaningless).  The default implementation wraps
        :meth:`predict`; vectorised predictors override it.
        """
        predictions = self.predict(horizon)
        mask = np.array([p is not None for p in predictions], dtype=bool)
        values = np.array(
            [0 if p is None else int(p) for p in predictions], dtype=np.int64
        )
        return values, mask


class PeriodicityPredictor(BasePredictor):
    """The paper's predictor: DPD periodicity detection + period replay.

    Parameters
    ----------
    window_size:
        DPD comparison window ``N``.
    max_period:
        Largest periodicity considered (defaults to ``window_size``).
    mismatch_tolerance:
        Forwarded to the DPD; 0 reproduces the paper's exact-match detector.
    sticky:
        If True (default), the most recently detected period keeps being used
        for prediction even when the current window momentarily loses exact
        periodicity (e.g. one perturbed sample at the physical level).  If
        False, the predictor declines to predict whenever the current window
        is not exactly periodic.
    """

    name = "periodicity"

    def __init__(
        self,
        window_size: int = 64,
        max_period: int | None = None,
        mismatch_tolerance: int = 0,
        sticky: bool = True,
    ) -> None:
        self._dpd = DynamicPeriodicityDetector(
            window_size=window_size,
            max_period=max_period,
            mismatch_tolerance=mismatch_tolerance,
        )
        self.sticky = bool(sticky)
        self._last_period: int | None = None
        self.detections = 0
        self.period_changes = 0

    # ------------------------------------------------------------------
    @property
    def window_size(self) -> int:
        """The DPD comparison window size."""
        return self._dpd.window_size

    @property
    def current_period(self) -> int | None:
        """The period currently used for prediction (after stickiness)."""
        return self._last_period

    @property
    def samples_seen(self) -> int:
        """Number of values observed so far."""
        return self._dpd.samples_seen

    # ------------------------------------------------------------------
    def observe(self, value: int) -> None:
        self._dpd.observe(value)
        period = self._dpd.current_period()
        if period is not None:
            self.detections += 1
            if period != self._last_period:
                self.period_changes += 1
            self._last_period = period
        elif not self.sticky:
            self._last_period = None

    def observe_many(self, values: Sequence[int]) -> None:
        """Vectorised bulk feed; bit-equivalent to looping :meth:`observe`.

        The samples go through the DPD batch path, and the per-sample
        detection decisions it returns are folded into ``detections``,
        ``period_changes`` and the (sticky) current period exactly as a
        sequential loop would have.
        """
        arr = _as_int64_1d(values)
        if arr.shape[0] == 0:
            return
        periods = self._dpd.batch_observe(arr, return_periods=True)
        detected = periods > 0
        count = int(np.count_nonzero(detected))
        if count == 0:
            if not self.sticky:
                self._last_period = None
            return
        self.detections += count
        previous = 0 if self._last_period is None else self._last_period
        if self.sticky:
            # Sticky: the reference value for "did the period change" is the
            # previous *detected* period, however long ago.
            sequence = periods[detected]
            changes = int(np.count_nonzero(np.diff(sequence) != 0))
            if int(sequence[0]) != previous:
                changes += 1
            self.period_changes += changes
            self._last_period = int(sequence[-1])
        else:
            # Non-sticky: any non-detecting step resets the period to None
            # (encoded as 0), so a detection after a gap always counts as a
            # change.
            reference = np.empty_like(periods)
            reference[0] = previous
            reference[1:] = np.where(detected[:-1], periods[:-1], 0)
            self.period_changes += int(
                np.count_nonzero(detected & (periods != reference))
            )
            self._last_period = int(periods[-1]) if detected[-1] else None

    def predict_array(self, horizon: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised period replay: ``(values, mask)`` arrays (see base class)."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        period = self._last_period
        if period is None or self._dpd.retained < period:
            return (
                np.zeros(horizon, dtype=np.int64),
                np.zeros(horizon, dtype=bool),
            )
        # The value k steps ahead repeats the value at offset (k-1) mod period
        # within the most recent period (a zero-copy view of the ring).
        last_period = self._dpd.history_view(period)
        values = last_period[np.arange(horizon) % period]
        return values, np.ones(horizon, dtype=bool)

    def predict(self, horizon: int = 1) -> list[Optional[int]]:
        values, mask = self.predict_array(horizon)
        if not mask[0]:
            return [None] * horizon
        return [int(v) for v in values]

    def periodicity(self):
        """Expose the raw DPD decision (period, distances, samples)."""
        return self._dpd.detect()

    def reset(self) -> None:
        self._dpd.reset()
        self._last_period = None
        self.detections = 0
        self.period_changes = 0
