"""Multi-step MPI message stream predictor built on the periodicity detector.

The paper's prediction scheme (Section 4.2): detect the periodicity ``m`` of
the data stream with the DPD, then predict the next several values by
replaying the last period — the value expected ``k`` steps in the future is
the value observed ``m - k`` steps in the past (modulo the period).  Because
a whole period is known, *several* future values can be predicted at once,
which is exactly what distinguishes this predictor from the single-step
heuristics in the related work.

All predictors in this package share the :class:`BasePredictor` interface so
that the evaluation harness and the ablation benchmarks can swap them freely:

* :meth:`BasePredictor.observe` — feed the next observed stream value;
* :meth:`BasePredictor.predict` — return predictions for the next ``horizon``
  values (``None`` entries mean "no prediction").
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.dpd import DynamicPeriodicityDetector

__all__ = ["BasePredictor", "PeriodicityPredictor"]


class BasePredictor:
    """Common interface of every stream predictor."""

    #: Short name used in benchmark output.
    name: str = "base"

    def observe(self, value: int) -> None:
        """Feed one observed stream value."""
        raise NotImplementedError

    def predict(self, horizon: int = 1) -> list[Optional[int]]:
        """Predict the next ``horizon`` values.

        Entry ``k`` of the returned list is the prediction for the value that
        will be observed ``k+1`` observations from now (the paper's ``+1`` …
        ``+horizon``).  ``None`` means the predictor declines to predict that
        position (for example, no periodicity detected yet).
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all learned state."""
        raise NotImplementedError

    def observe_many(self, values: Sequence[int]) -> None:
        """Feed a sequence of values in order."""
        for value in values:
            self.observe(value)


class PeriodicityPredictor(BasePredictor):
    """The paper's predictor: DPD periodicity detection + period replay.

    Parameters
    ----------
    window_size:
        DPD comparison window ``N``.
    max_period:
        Largest periodicity considered (defaults to ``window_size``).
    mismatch_tolerance:
        Forwarded to the DPD; 0 reproduces the paper's exact-match detector.
    sticky:
        If True (default), the most recently detected period keeps being used
        for prediction even when the current window momentarily loses exact
        periodicity (e.g. one perturbed sample at the physical level).  If
        False, the predictor declines to predict whenever the current window
        is not exactly periodic.
    """

    name = "periodicity"

    def __init__(
        self,
        window_size: int = 64,
        max_period: int | None = None,
        mismatch_tolerance: int = 0,
        sticky: bool = True,
    ) -> None:
        self._dpd = DynamicPeriodicityDetector(
            window_size=window_size,
            max_period=max_period,
            mismatch_tolerance=mismatch_tolerance,
        )
        self.sticky = bool(sticky)
        self._last_period: int | None = None
        self.detections = 0
        self.period_changes = 0

    # ------------------------------------------------------------------
    @property
    def window_size(self) -> int:
        """The DPD comparison window size."""
        return self._dpd.window_size

    @property
    def current_period(self) -> int | None:
        """The period currently used for prediction (after stickiness)."""
        return self._last_period

    @property
    def samples_seen(self) -> int:
        """Number of values observed so far."""
        return self._dpd.samples_seen

    # ------------------------------------------------------------------
    def observe(self, value: int) -> None:
        self._dpd.observe(value)
        result = self._dpd.detect()
        if result.periodic:
            self.detections += 1
            if result.period != self._last_period:
                self.period_changes += 1
            self._last_period = result.period
        elif not self.sticky:
            self._last_period = None

    def predict(self, horizon: int = 1) -> list[Optional[int]]:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        period = self._last_period
        if period is None:
            return [None] * horizon
        history = self._dpd.history()
        if history.shape[0] < period:
            return [None] * horizon
        last_period = history[-period:]
        # The value k steps ahead repeats the value at offset (k-1) mod period
        # within the most recent period.
        return [int(last_period[(k - 1) % period]) for k in range(1, horizon + 1)]

    def periodicity(self):
        """Expose the raw DPD decision (period, distances, samples)."""
        return self._dpd.detect()

    def reset(self) -> None:
        self._dpd.reset()
        self._last_period = None
        self.detections = 0
        self.period_changes = 0
