"""The paper's contribution: periodicity-based prediction of MPI messages.

* :mod:`repro.core.circular_buffer` — the fixed-size history buffer the
  paper's implementation note calls for ("implementation ... done with
  circular lists, which reduces the overhead of the predictor").
* :mod:`repro.core.dpd` — the Dynamic Periodicity Detector, equation (1) of
  the paper.
* :mod:`repro.core.predictor` — the multi-step message predictor built on the
  DPD: detect the period of the stream, then replay the last period to
  predict the next several values (+1 … +5 in the paper).
* :mod:`repro.core.baselines` — single-step heuristics used as comparison
  points (last-value, most-frequent, cycle, Markov), in the spirit of the
  related work the paper contrasts itself with.
* :mod:`repro.core.evaluation` — online evaluation of prediction accuracy per
  horizon, plus the order-insensitive (set-based) accuracy of Section 5.3.
"""

from repro.core.baselines import (
    CyclePredictor,
    LastValuePredictor,
    MarkovPredictor,
    MostFrequentPredictor,
    StridePredictor,
)
from repro.core.circular_buffer import CircularBuffer
from repro.core.dpd import DynamicPeriodicityDetector, PeriodicityResult
from repro.core.evaluation import (
    AccuracyResult,
    UnorderedAccuracyResult,
    evaluate_stream,
    evaluate_unordered,
)
from repro.core.predictor import BasePredictor, PeriodicityPredictor

__all__ = [
    "CircularBuffer",
    "DynamicPeriodicityDetector",
    "PeriodicityResult",
    "BasePredictor",
    "PeriodicityPredictor",
    "LastValuePredictor",
    "MostFrequentPredictor",
    "CyclePredictor",
    "MarkovPredictor",
    "StridePredictor",
    "AccuracyResult",
    "UnorderedAccuracyResult",
    "evaluate_stream",
    "evaluate_unordered",
]
