"""Fixed-capacity circular buffer backed by a NumPy array.

The paper notes that the predictor is implemented "with circular lists, which
reduces the overhead of the predictor" since prediction happens at runtime
inside the MPI library.  This class is that structure: appends are O(1), no
memory is allocated after construction, and a chronological view of the
contents is materialised only when the detector actually needs it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CircularBuffer"]


class CircularBuffer:
    """A fixed-capacity ring of int64 values.

    Parameters
    ----------
    capacity:
        Maximum number of values retained.  Once full, each append overwrites
        the oldest value.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._data = np.zeros(self.capacity, dtype=np.int64)
        self._head = 0  # index where the next value will be written
        self._count = 0
        self.total_appended = 0

    def __len__(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        """Whether the buffer holds ``capacity`` values."""
        return self._count == self.capacity

    def append(self, value: int) -> None:
        """Append one value, overwriting the oldest when full."""
        self._data[self._head] = int(value)
        self._head = (self._head + 1) % self.capacity
        if self._count < self.capacity:
            self._count += 1
        self.total_appended += 1

    def extend(self, values) -> None:
        """Append every value in ``values`` in order."""
        for value in values:
            self.append(value)

    def clear(self) -> None:
        """Remove all values and reset the append counter (capacity unchanged)."""
        self._head = 0
        self._count = 0
        self.total_appended = 0

    def to_array(self) -> np.ndarray:
        """Return the contents in chronological order (oldest first)."""
        if self._count < self.capacity:
            return self._data[: self._count].copy()
        return np.concatenate((self._data[self._head :], self._data[: self._head]))

    def __getitem__(self, index: int) -> int:
        """Chronological indexing: 0 is the oldest value, -1 the newest."""
        if not -self._count <= index < self._count:
            raise IndexError(f"index {index} out of range for length {self._count}")
        if index < 0:
            index += self._count
        if self._count < self.capacity:
            return int(self._data[index])
        return int(self._data[(self._head + index) % self.capacity])

    def last(self, n: int) -> np.ndarray:
        """Return the most recent ``n`` values in chronological order."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        n = min(n, self._count)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        return self.to_array()[-n:]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircularBuffer(capacity={self.capacity}, len={self._count})"
