"""Fixed-capacity circular buffer backed by a mirrored NumPy array.

The paper notes that the predictor is implemented "with circular lists, which
reduces the overhead of the predictor" since prediction happens at runtime
inside the MPI library.  This class is that structure, tuned for the
incremental periodicity detector: the ring is stored *twice* (ring slot ``i``
is mirrored at physical index ``i + capacity``), so the most recent ``n``
values always occupy one contiguous slice of the backing array no matter
where the ring has wrapped.  That makes

* :meth:`view_last` a zero-copy O(1) view (no ``concatenate`` copy),
* :meth:`__getitem__` a single modulo-free load (O(1) chronological pair
  lookup for the detector's enter/leave pairs),
* :meth:`extend` a handful of vectorised slice writes instead of a Python
  per-element loop,

at the cost of one extra scalar store per :meth:`append` and 2x the (tiny)
ring memory.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CircularBuffer"]


def _as_int64_1d(values) -> np.ndarray:
    """Coerce ``values`` (array, sequence, or iterable) to a 1-D int64 array."""
    if isinstance(values, np.ndarray):
        return np.ascontiguousarray(values.reshape(-1), dtype=np.int64)
    if isinstance(values, (list, tuple, range)):
        return np.asarray(values, dtype=np.int64).reshape(-1)
    return np.fromiter(values, dtype=np.int64)


class CircularBuffer:
    """A fixed-capacity ring of int64 values.

    Parameters
    ----------
    capacity:
        Maximum number of values retained.  Once full, each append overwrites
        the oldest value.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        # Mirrored storage: ring slot i lives at i and at i + capacity.
        self._data = np.zeros(2 * self.capacity, dtype=np.int64)
        self._pos = 0  # ring slot where the next value will be written
        self._count = 0
        self.total_appended = 0

    def __len__(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        """Whether the buffer holds ``capacity`` values."""
        return self._count == self.capacity

    def append(self, value: int) -> None:
        """Append one value, overwriting the oldest when full."""
        v = int(value)
        pos = self._pos
        # One strided store hits both mirror slots (pos and pos + capacity).
        self._data[pos :: self.capacity] = v
        pos += 1
        self._pos = 0 if pos == self.capacity else pos
        if self._count < self.capacity:
            self._count += 1
        self.total_appended += 1

    def extend(self, values) -> None:
        """Append every value in ``values`` in order (vectorised).

        Equivalent to ``for v in values: self.append(v)`` but performed with
        at most two slice writes per mirror half.  When ``values`` is longer
        than the capacity only its tail is written at all.
        """
        arr = _as_int64_1d(values)
        k = int(arr.shape[0])
        if k == 0:
            return
        cap = self.capacity
        self.total_appended += k
        if k >= cap:
            tail = arr[k - cap :]
            self._data[:cap] = tail
            self._data[cap:] = tail
            self._pos = 0
            self._count = cap
            return
        pos = self._pos
        first = min(k, cap - pos)
        self._data[pos : pos + first] = arr[:first]
        self._data[pos + cap : pos + cap + first] = arr[:first]
        rest = k - first
        if rest:
            self._data[:rest] = arr[first:]
            self._data[cap : cap + rest] = arr[first:]
        pos += k
        self._pos = pos - cap if pos >= cap else pos
        self._count = min(self._count + k, cap)

    def clear(self) -> None:
        """Remove all values and reset the append counter (capacity unchanged)."""
        self._pos = 0
        self._count = 0
        self.total_appended = 0

    def view_last(self, n: int) -> np.ndarray:
        """Zero-copy chronological view of the most recent ``n`` values.

        ``n`` is clamped to the current length.  The returned array aliases
        the ring storage and is only valid until the next mutating call
        (``append``/``extend``/``clear``); callers that need to keep the data
        must copy it (or use :meth:`last`).
        """
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        n = min(n, self._count)
        end = self._pos + self.capacity
        return self._data[end - n : end]

    def view(self) -> np.ndarray:
        """Zero-copy chronological view of the whole contents (see view_last)."""
        return self.view_last(self._count)

    def to_array(self) -> np.ndarray:
        """Return the contents in chronological order (oldest first)."""
        return self.view_last(self._count).copy()

    def __getitem__(self, index: int) -> int:
        """Chronological indexing: 0 is the oldest value, -1 the newest."""
        if not -self._count <= index < self._count:
            raise IndexError(f"index {index} out of range for length {self._count}")
        if index < 0:
            index += self._count
        return int(self._data[self._pos + self.capacity - self._count + index])

    def last(self, n: int) -> np.ndarray:
        """Return a copy of the most recent ``n`` values in chronological order."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        return self.view_last(n).copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircularBuffer(capacity={self.capacity}, len={self._count})"
