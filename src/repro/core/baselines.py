"""Baseline stream predictors used as comparison points.

The paper contrasts its periodicity-based predictor with the single-step
heuristics of Afsahi & Dimopoulos ("a number of heuristics for the prediction
of MPI messages ... predict only the next value of a given data stream").
These baselines re-create that family plus two classic reference points:

* :class:`LastValuePredictor` — predict that the next value repeats the last.
* :class:`MostFrequentPredictor` — predict the most frequent value in a
  sliding window (a "better-pair"/frequency heuristic).
* :class:`CyclePredictor` — single-cycle heuristic: predict the value that
  followed the previous occurrence of the current value.
* :class:`MarkovPredictor` — order-``k`` Markov chain on the value sequence,
  predicting the most likely continuation (and rolled forward for multi-step
  predictions).
* :class:`StridePredictor` — classic stride predictor (useful for message
  sizes that grow arithmetically; degenerate to last-value for constant
  streams).

They all implement :class:`repro.core.predictor.BasePredictor`, so the
evaluation harness can compare them directly with the paper's predictor for
the ablation benchmarks.
"""

from __future__ import annotations

from collections import Counter, defaultdict, deque
from typing import Optional

from repro.core.predictor import BasePredictor

__all__ = [
    "LastValuePredictor",
    "MostFrequentPredictor",
    "CyclePredictor",
    "MarkovPredictor",
    "StridePredictor",
]


class LastValuePredictor(BasePredictor):
    """Predict that every future value equals the most recent observation."""

    name = "last-value"

    def __init__(self) -> None:
        self._last: Optional[int] = None

    def observe(self, value: int) -> None:
        self._last = int(value)

    def predict(self, horizon: int = 1) -> list[Optional[int]]:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        return [self._last] * horizon

    def reset(self) -> None:
        self._last = None


class MostFrequentPredictor(BasePredictor):
    """Predict the most frequent value of a sliding window of observations."""

    name = "most-frequent"

    def __init__(self, window_size: int = 64) -> None:
        if window_size <= 0:
            raise ValueError(f"window_size must be positive, got {window_size}")
        self.window_size = int(window_size)
        self._window: deque[int] = deque(maxlen=self.window_size)
        self._counts: Counter[int] = Counter()

    def observe(self, value: int) -> None:
        value = int(value)
        if len(self._window) == self.window_size:
            evicted = self._window[0]
            self._counts[evicted] -= 1
            if self._counts[evicted] == 0:
                del self._counts[evicted]
        self._window.append(value)
        self._counts[value] += 1

    def predict(self, horizon: int = 1) -> list[Optional[int]]:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if not self._counts:
            return [None] * horizon
        # Ties are broken towards the most recently observed candidate so the
        # behaviour is deterministic.
        best_count = max(self._counts.values())
        candidates = {v for v, c in self._counts.items() if c == best_count}
        choice = None
        for value in reversed(self._window):
            if value in candidates:
                choice = value
                break
        return [choice] * horizon

    def reset(self) -> None:
        self._window.clear()
        self._counts.clear()


class CyclePredictor(BasePredictor):
    """Single-cycle heuristic: replay what followed the last occurrence.

    After observing ``... a b ... a``, the predictor expects ``b`` next.  For
    multi-step predictions it walks its successor table repeatedly, which
    reproduces a cycle exactly once the cycle has been seen in full.
    """

    name = "cycle"

    def __init__(self) -> None:
        self._successor: dict[int, int] = {}
        self._last: Optional[int] = None

    def observe(self, value: int) -> None:
        value = int(value)
        if self._last is not None:
            self._successor[self._last] = value
        self._last = value

    def predict(self, horizon: int = 1) -> list[Optional[int]]:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        predictions: list[Optional[int]] = []
        current = self._last
        for _ in range(horizon):
            if current is None or current not in self._successor:
                predictions.append(None)
                current = None
                continue
            current = self._successor[current]
            predictions.append(current)
        return predictions

    def reset(self) -> None:
        self._successor.clear()
        self._last = None


class MarkovPredictor(BasePredictor):
    """Order-``k`` Markov predictor over the value sequence.

    The paper's Section 4.2 argues that Markov models "require more training
    time and ... are not prepared to predict several future values"; this
    implementation rolls the chain forward for multi-step predictions so the
    comparison is as favourable to the baseline as possible.
    """

    name = "markov"

    def __init__(self, order: int = 2) -> None:
        if order <= 0:
            raise ValueError(f"order must be positive, got {order}")
        self.order = int(order)
        self._context: deque[int] = deque(maxlen=self.order)
        self._table: dict[tuple[int, ...], Counter[int]] = defaultdict(Counter)

    def observe(self, value: int) -> None:
        value = int(value)
        if len(self._context) == self.order:
            self._table[tuple(self._context)][value] += 1
        self._context.append(value)

    def _most_likely(self, context: tuple[int, ...]) -> Optional[int]:
        counts = self._table.get(context)
        if not counts:
            return None
        best_count = max(counts.values())
        # Deterministic tie-break: smallest value among the most frequent.
        return min(v for v, c in counts.items() if c == best_count)

    def predict(self, horizon: int = 1) -> list[Optional[int]]:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if len(self._context) < self.order:
            return [None] * horizon
        context = list(self._context)
        predictions: list[Optional[int]] = []
        for _ in range(horizon):
            nxt = self._most_likely(tuple(context))
            predictions.append(nxt)
            if nxt is None:
                context = context[1:] + [0]
            else:
                context = context[1:] + [nxt]
        return predictions

    def reset(self) -> None:
        self._context.clear()
        self._table.clear()


class StridePredictor(BasePredictor):
    """Predict a constant arithmetic stride between consecutive values."""

    name = "stride"

    def __init__(self) -> None:
        self._last: Optional[int] = None
        self._stride: Optional[int] = None

    def observe(self, value: int) -> None:
        value = int(value)
        if self._last is not None:
            self._stride = value - self._last
        self._last = value

    def predict(self, horizon: int = 1) -> list[Optional[int]]:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if self._last is None:
            return [None] * horizon
        stride = self._stride or 0
        return [self._last + stride * k for k in range(1, horizon + 1)]

    def reset(self) -> None:
        self._last = None
        self._stride = None
