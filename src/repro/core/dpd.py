"""The Dynamic Periodicity Detector (equation 1 of the paper).

For a window of the last ``N`` stream samples and a candidate delay
``m`` (``0 < m < M``, ``M <= N``), the detector computes

.. math::

    d(m) = \\sum_{i=0}^{N-1} \\mathrm{sign}\\bigl(\\lvert x[i] - x[i-m] \\rvert\\bigr)

i.e. the number of positions at which the window differs from itself shifted
by ``m``.  ``d(m) = 0`` means the window repeats exactly with period ``m``.
The smallest such ``m`` is reported as the stream's periodicity.

The detector keeps ``N + M`` samples of history in a
:class:`repro.core.circular_buffer.CircularBuffer` (the shifted comparison
needs ``M`` samples before the window) and evaluates all candidate delays
with one vectorised NumPy comparison, following the hpc-parallel guide's
advice to vectorise the hot loop rather than iterating in Python.

A tolerance knob allows "almost periodic" windows (useful for the noisy
physical-level streams): a delay is accepted when at most
``mismatch_tolerance`` positions differ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.circular_buffer import CircularBuffer

__all__ = ["PeriodicityResult", "DynamicPeriodicityDetector"]


@dataclass(frozen=True)
class PeriodicityResult:
    """Outcome of one periodicity query.

    Attributes
    ----------
    period:
        Detected periodicity (smallest accepted delay), or ``None`` when no
        delay satisfied the acceptance criterion.
    distances:
        Array of ``d(m)`` values for ``m = 1 .. max_period`` (index ``m-1``).
        Empty when there was not yet enough history to evaluate any delay.
    samples_seen:
        Total number of samples observed when the query was made.
    """

    period: int | None
    distances: np.ndarray
    samples_seen: int

    @property
    def periodic(self) -> bool:
        """Whether a periodicity was detected."""
        return self.period is not None


class DynamicPeriodicityDetector:
    """Online DPD over an integer-valued stream.

    Parameters
    ----------
    window_size:
        ``N`` in equation (1): how many recent samples form the comparison
        window.
    max_period:
        ``M`` in equation (1): the largest delay evaluated.  Defaults to
        ``window_size``.  The paper constrains ``M <= N``; this implementation
        also allows ``M > N`` (a short comparison window replayed against a
        longer history), which detects long periods — such as a whole
        Sweep3D octant cycle — without paying the noise sensitivity of an
        equally long comparison window.
    mismatch_tolerance:
        A delay ``m`` is accepted when ``d(m) <= mismatch_tolerance``.  The
        paper uses an exact match (tolerance 0), which is the default.
    """

    def __init__(
        self,
        window_size: int = 64,
        max_period: int | None = None,
        mismatch_tolerance: int = 0,
    ) -> None:
        if window_size <= 0:
            raise ValueError(f"window_size must be positive, got {window_size}")
        if max_period is None:
            max_period = window_size
        if max_period < 1:
            raise ValueError(f"max_period must be at least 1, got {max_period}")
        if mismatch_tolerance < 0:
            raise ValueError(
                f"mismatch_tolerance must be non-negative, got {mismatch_tolerance}"
            )
        self.window_size = int(window_size)
        self.max_period = int(max_period)
        self.mismatch_tolerance = int(mismatch_tolerance)
        self._history = CircularBuffer(self.window_size + self.max_period)

    # ------------------------------------------------------------------
    @property
    def samples_seen(self) -> int:
        """Total number of samples observed so far."""
        return self._history.total_appended

    def observe(self, value: int) -> None:
        """Feed one stream sample to the detector."""
        self._history.append(int(value))

    def reset(self) -> None:
        """Forget all history."""
        self._history.clear()

    # ------------------------------------------------------------------
    def distances(self) -> np.ndarray:
        """Compute ``d(m)`` for every evaluable delay ``m = 1 .. max_period``.

        Delays for which there is not yet enough history are omitted: with
        ``L`` samples of history, only delays ``m <= L - window_size`` can be
        evaluated (the window always uses the most recent ``window_size``
        samples).  The returned array has one entry per delay starting at
        ``m=1``; it is empty while ``L <= window_size``.
        """
        history = self._history.to_array()
        length = history.shape[0]
        usable_delays = min(self.max_period, length - self.window_size)
        if usable_delays < 1:
            return np.empty(0, dtype=np.int64)
        window = history[-self.window_size :]
        # windows[k] = history[k : k + window_size]; the window shifted by m is
        # windows[length - window_size - m].
        windows = np.lib.stride_tricks.sliding_window_view(history, self.window_size)
        base_index = length - self.window_size
        shifted = windows[base_index - usable_delays : base_index][::-1]
        return np.count_nonzero(shifted != window[np.newaxis, :], axis=1).astype(np.int64)

    def detect(self) -> PeriodicityResult:
        """Return the current periodicity decision (smallest accepted delay)."""
        distances = self.distances()
        period: int | None = None
        if distances.size:
            accepted = np.nonzero(distances <= self.mismatch_tolerance)[0]
            if accepted.size:
                period = int(accepted[0]) + 1
        return PeriodicityResult(
            period=period, distances=distances, samples_seen=self.samples_seen
        )

    def history(self) -> np.ndarray:
        """Chronological copy of the retained history (for prediction replay)."""
        return self._history.to_array()
