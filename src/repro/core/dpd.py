"""The Dynamic Periodicity Detector (equation 1 of the paper), incremental.

For a window of the last ``N`` stream samples and a candidate delay
``m`` (``0 < m <= M``), the detector computes

.. math::

    d(m) = \\sum_{i=0}^{N-1} \\mathrm{sign}\\bigl(\\lvert x[i] - x[i-m] \\rvert\\bigr)

i.e. the number of positions at which the window differs from itself shifted
by ``m``.  ``d(m) = 0`` means the window repeats exactly with period ``m``.
The smallest such ``m`` is reported as the stream's periodicity.

Incremental update
------------------
The paper stresses that "prediction has to be done at runtime" inside the MPI
library, so the per-message cost of the detector is the budget that matters.
Recomputing every ``d(m)`` from scratch on each sample costs ``O(N * M)``.
This implementation instead keeps one mismatch counter per candidate delay
and exploits that appending sample ``x[T]`` slides the window by one, which
changes each ``d(m)`` by exactly two indicator terms:

.. math::

    d_T(m) = d_{T-1}(m)
             + \\mathbf{1}[x[T] \\ne x[T-m]]          \\quad\\text{(pair entering)}
             - \\mathbf{1}[x[T-N] \\ne x[T-N-m]]      \\quad\\text{(pair leaving)}

Both indicator vectors (over all ``m`` at once) are single NumPy comparisons
against zero-copy views of the ring buffer, so one ``observe`` costs ``O(M)``
vectorised work regardless of the window size.  While the history is still
growing, at most one delay per append becomes newly evaluable and its counter
is initialised with one ``O(N)`` scan — amortised away after the first
``N + M`` samples.

Complexity (``N`` = window_size, ``M`` = max_period, ``k`` = batch length):

==========================  ==================  =======================
operation                   naive (seed)        incremental (this file)
==========================  ==================  =======================
``observe``                 O(1) append         O(M) counter update
``distances`` / ``detect``  O(N * M) scan       O(M) copy + scan
observe+detect per message  O(N * M)            O(M) amortised
``batch_observe`` of k      k * O(N * M)        O((k + N + M) * M) total
==========================  ==================  =======================

The pre-refactor full rescan survives as :meth:`distances_naive` and is used
by the equivalence tests to cross-validate the counters bit-for-bit.

The detector keeps ``N + M`` samples of history in a
:class:`repro.core.circular_buffer.CircularBuffer` (the shifted comparison
needs ``M`` samples before the window); the mirrored ring makes every slice
above a zero-copy view, following the hpc-parallel guide's advice to
vectorise the hot loop rather than iterating in Python.

A tolerance knob allows "almost periodic" windows (useful for the noisy
physical-level streams): a delay is accepted when at most
``mismatch_tolerance`` positions differ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.circular_buffer import CircularBuffer, _as_int64_1d

__all__ = ["PeriodicityResult", "DynamicPeriodicityDetector"]

#: Batch periods are computed on O(M * chunk) scratch matrices; bigger inputs
#: are processed in chunks of this many samples to bound peak memory.
_BATCH_CHUNK = 8192


@dataclass(frozen=True)
class PeriodicityResult:
    """Outcome of one periodicity query.

    Attributes
    ----------
    period:
        Detected periodicity (smallest accepted delay), or ``None`` when no
        delay satisfied the acceptance criterion.
    distances:
        Array of ``d(m)`` values for ``m = 1 .. max_period`` (index ``m-1``).
        Empty when there was not yet enough history to evaluate any delay.
    samples_seen:
        Total number of samples observed when the query was made.
    """

    period: int | None
    distances: np.ndarray
    samples_seen: int

    @property
    def periodic(self) -> bool:
        """Whether a periodicity was detected."""
        return self.period is not None


class DynamicPeriodicityDetector:
    """Online DPD over an integer-valued stream with O(M) per-sample cost.

    Parameters
    ----------
    window_size:
        ``N`` in equation (1): how many recent samples form the comparison
        window.
    max_period:
        ``M`` in equation (1): the largest delay evaluated.  Defaults to
        ``window_size``.  The paper constrains ``M <= N``; this implementation
        also allows ``M > N`` (a short comparison window replayed against a
        longer history), which detects long periods — such as a whole
        Sweep3D octant cycle — without paying the noise sensitivity of an
        equally long comparison window.
    mismatch_tolerance:
        A delay ``m`` is accepted when ``d(m) <= mismatch_tolerance``.  The
        paper uses an exact match (tolerance 0), which is the default.
    """

    def __init__(
        self,
        window_size: int = 64,
        max_period: int | None = None,
        mismatch_tolerance: int = 0,
    ) -> None:
        if window_size <= 0:
            raise ValueError(f"window_size must be positive, got {window_size}")
        if max_period is None:
            max_period = window_size
        if max_period < 1:
            raise ValueError(f"max_period must be at least 1, got {max_period}")
        if mismatch_tolerance < 0:
            raise ValueError(
                f"mismatch_tolerance must be non-negative, got {mismatch_tolerance}"
            )
        self.window_size = int(window_size)
        self.max_period = int(max_period)
        self.mismatch_tolerance = int(mismatch_tolerance)
        self._history = CircularBuffer(self.window_size + self.max_period)
        # Anchored-reversed counter layout: _counters[max_period - m] == d(m)
        # for m = 1 .. _usable (other entries are stale and never read).  With
        # delays descending along the array, the enter/leave indicator vectors
        # are ascending chronological ring views — no [::-1] reversal needed
        # on the per-sample path.
        self._counters = np.zeros(self.max_period, dtype=np.int64)
        self._usable = 0

    # ------------------------------------------------------------------
    @property
    def samples_seen(self) -> int:
        """Total number of samples observed so far."""
        return self._history.total_appended

    @property
    def retained(self) -> int:
        """Number of history samples currently held (at most N + M)."""
        return len(self._history)

    def observe(self, value: int) -> None:
        """Feed one stream sample; updates every ``d(m)`` in O(M).

        This is the per-message runtime path, so it reaches straight into the
        mirrored ring's fields (same package, see
        :class:`~repro.core.circular_buffer.CircularBuffer` for the layout)
        to keep the whole update at three ufunc calls.
        """
        v = int(value)
        buf = self._history
        n = self.window_size
        u = self._usable
        data = buf._data
        cap = buf.capacity
        if u:
            # Enter/leave pairs are read from the pre-append state: the append
            # below may overwrite the oldest sample, which is exactly
            # x[T-N-M] — the partner of the leaving pair at the largest delay.
            end = buf._pos + cap
            counters = self._counters[self.max_period - u :]
            # entering pair for delay m: (x[T], x[T-m])
            counters += v != data[end - u : end]
            # leaving pair for delay m: (x[T-N], x[T-N-m])
            out = end - n
            counters -= data[out] != data[out - u : out]
        pos = buf._pos
        # One strided store hits both mirror slots (pos and pos + cap).
        data[pos::cap] = v
        pos += 1
        buf._pos = 0 if pos == cap else pos
        if buf._count < cap:
            buf._count += 1
        buf.total_appended += 1
        if u < self.max_period and buf.total_appended - n > u:
            # Exactly one delay (m = u + 1) became evaluable: initialise its
            # counter with a full-window scan (O(N), once per delay ever).
            m = u + 1
            h = buf.view()
            length = h.shape[0]
            self._counters[self.max_period - m] = np.count_nonzero(
                h[length - n :] != h[length - n - m : length - m]
            )
            self._usable = m

    def batch_observe(self, values, return_periods: bool = False):
        """Feed many samples at once (the amortised fast path).

        The final counter state is bit-identical to feeding the samples one
        by one (``d(m)`` is a pure function of the retained history): the
        ring is extended with vectorised slice writes and the counters are
        rebuilt with one vectorised scan, so a batch of ``k`` samples costs
        ``O((k + N + M) * M)`` total instead of ``k`` incremental updates'
        Python overhead.

        Parameters
        ----------
        values:
            Array/sequence/iterable of integer samples.
        return_periods:
            When True, also compute the periodicity decision *after every
            appended sample* (what a sequential ``observe``/``detect`` loop
            would have seen) and return them as an int64 array where entry
            ``j`` is the detected period after ``values[j]`` (0 = none).

        Returns
        -------
        ``None``, or the per-step period array when ``return_periods``.
        """
        arr = _as_int64_1d(values)
        k = int(arr.shape[0])
        if k == 0:
            return np.zeros(0, dtype=np.int64) if return_periods else None
        periods: np.ndarray | None = None
        if return_periods:
            chunks = []
            for start in range(0, k, _BATCH_CHUNK):
                chunk = arr[start : start + _BATCH_CHUNK]
                chunks.append(self._batch_periods(chunk))
                self._history.extend(chunk)
            periods = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
        else:
            self._history.extend(arr)
        self._recompute_counters()
        return periods

    def reset(self) -> None:
        """Forget all history."""
        self._history.clear()
        self._counters[:] = 0
        self._usable = 0

    # ------------------------------------------------------------------
    def distances(self) -> np.ndarray:
        """Return ``d(m)`` for every evaluable delay ``m = 1 .. max_period``.

        Delays for which there is not yet enough history are omitted: with
        ``L`` samples of history, only delays ``m <= L - window_size`` can be
        evaluated (the window always uses the most recent ``window_size``
        samples).  The returned array has one entry per delay starting at
        ``m=1``; it is empty while ``L <= window_size``.

        This is an O(M) copy of the incrementally maintained counters; see
        :meth:`distances_naive` for the from-scratch reference scan.
        """
        u = self._usable
        return self._counters[self.max_period - u :][::-1].copy() if u else np.empty(0, dtype=np.int64)

    def distances_naive(self) -> np.ndarray:
        """Recompute every ``d(m)`` from scratch (pre-refactor O(N*M) scan).

        Kept as the independent reference implementation: the equivalence
        tests assert it stays bit-identical to :meth:`distances` after every
        append.
        """
        history = self._history.to_array()
        length = history.shape[0]
        usable_delays = min(self.max_period, length - self.window_size)
        if usable_delays < 1:
            return np.empty(0, dtype=np.int64)
        window = history[-self.window_size :]
        # windows[k] = history[k : k + window_size]; the window shifted by m is
        # windows[length - window_size - m].
        windows = np.lib.stride_tricks.sliding_window_view(history, self.window_size)
        base_index = length - self.window_size
        shifted = windows[base_index - usable_delays : base_index][::-1]
        return np.count_nonzero(shifted != window[np.newaxis, :], axis=1).astype(np.int64)

    def _accepted_period(self, ascending: np.ndarray) -> int | None:
        """Smallest delay whose distance passes the tolerance, else None.

        ``ascending`` is a ``d(m)`` array indexed by ``m - 1``; the sole home
        of the acceptance rule shared by :meth:`current_period`,
        :meth:`detect` and (via its mask) :meth:`_batch_periods`.
        """
        if self.mismatch_tolerance == 0:
            index = int(ascending.argmin())
            return index + 1 if ascending[index] == 0 else None
        accepted = ascending <= self.mismatch_tolerance
        index = int(accepted.argmax())
        return index + 1 if accepted[index] else None

    def current_period(self) -> int | None:
        """Smallest accepted delay right now, without materialising a result."""
        u = self._usable
        if not u:
            return None
        return self._accepted_period(self._counters[self.max_period - u :][::-1])

    def detect(self) -> PeriodicityResult:
        """Return the current periodicity decision (smallest accepted delay)."""
        # One ascending copy serves both the snapshot and the period scan.
        distances = self.distances()
        period = self._accepted_period(distances) if distances.size else None
        return PeriodicityResult(
            period=period, distances=distances, samples_seen=self.samples_seen
        )

    def history(self) -> np.ndarray:
        """Chronological copy of the retained history (for prediction replay)."""
        return self._history.to_array()

    def history_view(self, n: int | None = None) -> np.ndarray:
        """Zero-copy view of the last ``n`` retained samples (all when None).

        Valid only until the next ``observe``/``batch_observe``/``reset``.
        """
        if n is None:
            return self._history.view()
        return self._history.view_last(n)

    # ------------------------------------------------------------------
    def _recompute_counters(self) -> None:
        """Rebuild all counters from the retained history (one vectorised scan)."""
        h = self._history.view()
        length = h.shape[0]
        usable = min(self.max_period, length - self.window_size)
        if usable < 1:
            self._usable = 0
            return
        windows = np.lib.stride_tricks.sliding_window_view(h, self.window_size)
        base_index = length - self.window_size
        # windows[base_index - m] is the window shifted by m; ascending row
        # order therefore matches the anchored-reversed counter layout.
        shifted = windows[base_index - usable : base_index]
        self._counters[self.max_period - usable :] = np.count_nonzero(
            shifted != h[base_index:][np.newaxis, :], axis=1
        )
        self._usable = usable

    def _batch_periods(self, chunk: np.ndarray) -> np.ndarray:
        """Per-step periodicity decisions for appending ``chunk`` (pre-append state).

        Uses prefix sums of the lagged-mismatch matrix: with ``A`` the
        concatenation of the retained history and the chunk,
        ``MM[m-1, a] = 1[A[a] != A[a-m]]`` and ``C`` its cumulative sum along
        ``a``, the distance after appending ``chunk[j]`` is
        ``d_j(m) = C[m-1, e_j] - C[m-1, e_j - N]`` where ``e_j`` indexes the
        newest sample of step ``j``'s window.
        """
        n = self.window_size
        max_p = self.max_period
        tol = self.mismatch_tolerance
        total0 = self._history.total_appended
        length0 = len(self._history)
        k = int(chunk.shape[0])
        a = np.concatenate((self._history.view(), chunk))
        size = int(a.shape[0])
        # usable delays after step j (total samples = total0 + j + 1)
        usable = np.minimum(total0 + np.arange(1, k + 1) - n, max_p)
        if size <= n or usable[-1] < 1:
            return np.zeros(k, dtype=np.int64)
        lags = min(max_p, size - 1)
        mismatch = np.zeros((lags, size), dtype=bool)
        for m in range(1, lags + 1):
            mismatch[m - 1, m:] = a[m:] != a[:-m]
        cumulative = np.cumsum(mismatch, axis=1, dtype=np.int32)
        newest = length0 + np.arange(k)  # local index of x[T_j - 1] = chunk[j]
        older = np.clip(newest - n, 0, size - 1)
        distance = cumulative[:, newest] - cumulative[:, older]  # (lags, k)
        accepted = (distance <= tol) & (
            np.arange(1, lags + 1)[:, np.newaxis] <= usable[np.newaxis, :]
        )
        first = np.argmax(accepted, axis=0)
        found = accepted[first, np.arange(k)]
        return np.where(found, first + 1, 0).astype(np.int64)
