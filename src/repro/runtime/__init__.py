"""Runtime protocol layer of the simulated MPI library.

This package implements the machinery whose scalability the paper's Section 2
criticises and whose behaviour the prediction-driven optimisations of
:mod:`repro.predictive` change:

* :mod:`repro.runtime.message` — the wire message record.
* :mod:`repro.runtime.matching` — posted-receive and unexpected-message
  queues with MPI matching semantics (source/tag wildcards, post order).
* :mod:`repro.runtime.buffers` — per-peer eager buffer pools and memory
  accounting (the "16 KB per peer" problem of Section 2.1).
* :mod:`repro.runtime.credits` — credit-based flow control bookkeeping
  (Section 2.2's proposed fix).
* :mod:`repro.runtime.protocol` — flow-control policies deciding when a
  message may use the eager path.
* :mod:`repro.runtime.stats` — counters aggregated across a run.
* :mod:`repro.runtime.transport` — the transport engine tying it together:
  eager and rendezvous protocols, matching, tracing hooks and timing.
"""

from repro.runtime.buffers import BufferPoolStats, EagerBufferPool
from repro.runtime.credits import CreditAccount, CreditManager
from repro.runtime.matching import PostedReceive, PostedReceiveQueue, UnexpectedQueue
from repro.runtime.message import Message
from repro.runtime.protocol import FlowControlPolicy, StandardFlowControl
from repro.runtime.stats import RuntimeStats
from repro.runtime.transport import Transport

__all__ = [
    "Message",
    "PostedReceive",
    "PostedReceiveQueue",
    "UnexpectedQueue",
    "EagerBufferPool",
    "BufferPoolStats",
    "CreditManager",
    "CreditAccount",
    "FlowControlPolicy",
    "StandardFlowControl",
    "RuntimeStats",
    "Transport",
]
