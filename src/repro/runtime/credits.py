"""Credit-based flow control bookkeeping (Section 2.2 of the paper).

A *credit* is permission, granted by a receiver to a specific sender, to
transmit up to a number of bytes eagerly (without a handshake).  The paper
proposes that a receiver use its message predictions to grant credits ahead
of time; a sender holding a credit can then send even a large message on the
fast path, while senders without credits must fall back to the slow
ask-permission path.

The :class:`CreditManager` is pure bookkeeping — who granted how many bytes
to whom and how much has been consumed — shared by the standard runtime (not
used), the predictive flow-control policy and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_non_negative

__all__ = ["CreditAccount", "CreditManager"]


@dataclass
class CreditAccount:
    """Credits granted by one receiver to one sender."""

    receiver: int
    sender: int
    granted_bytes: int = 0
    consumed_bytes: int = 0
    grants: int = 0
    denials: int = 0

    @property
    def available_bytes(self) -> int:
        """Bytes the sender may still send eagerly under this account."""
        return max(0, self.granted_bytes - self.consumed_bytes)


class CreditManager:
    """Tracks eager-send credits for every (receiver, sender) pair."""

    def __init__(self) -> None:
        self._accounts: dict[tuple[int, int], CreditAccount] = {}

    def account(self, receiver: int, sender: int) -> CreditAccount:
        """Return (creating if needed) the account for the pair."""
        key = (receiver, sender)
        acct = self._accounts.get(key)
        if acct is None:
            acct = CreditAccount(receiver=receiver, sender=sender)
            self._accounts[key] = acct
        return acct

    def grant(self, receiver: int, sender: int, nbytes: int) -> CreditAccount:
        """Receiver grants ``nbytes`` of eager-send credit to ``sender``."""
        check_non_negative("nbytes", nbytes)
        acct = self.account(receiver, sender)
        acct.granted_bytes += int(nbytes)
        acct.grants += 1
        return acct

    def available(self, receiver: int, sender: int) -> int:
        """Bytes ``sender`` may currently send eagerly to ``receiver``."""
        key = (receiver, sender)
        acct = self._accounts.get(key)
        return acct.available_bytes if acct else 0

    def try_consume(self, receiver: int, sender: int, nbytes: int) -> bool:
        """Consume ``nbytes`` of credit if available; record a denial if not."""
        check_non_negative("nbytes", nbytes)
        acct = self.account(receiver, sender)
        if acct.available_bytes >= nbytes:
            acct.consumed_bytes += int(nbytes)
            return True
        acct.denials += 1
        return False

    def total_granted_bytes(self, receiver: int | None = None) -> int:
        """Total bytes granted, optionally restricted to one receiver."""
        return sum(
            a.granted_bytes
            for a in self._accounts.values()
            if receiver is None or a.receiver == receiver
        )

    def accounts(self) -> list[CreditAccount]:
        """All accounts created so far (stable order: by receiver then sender)."""
        return [self._accounts[k] for k in sorted(self._accounts)]
