"""The transport engine: eager and rendezvous protocols over the network model.

This module plays the role of MPICH's ADI/ch_p4 layer in the paper's setup:
it receives send/receive postings from the simulation engine, selects a
protocol (eager vs rendezvous, subject to the flow-control policy), times the
resulting network traffic with :class:`repro.sim.network.NetworkModel`,
matches messages to posted receives with MPI semantics, accounts eager-buffer
memory, and drives the two-level tracer.

Postings have two entry points per direction: the operation-object APIs
(:meth:`Transport.post_send` / :meth:`Transport.post_recv`, used by the
generator protocol) unpack into the scalar-argument ones
(:meth:`Transport.post_send_values` / :meth:`Transport.post_recv_values`),
which the engine's op-array fast lane calls directly so no per-op operation
object ever exists on that path.

Timing model
------------
* Eager send: the payload is injected ``send_overhead`` after the send is
  posted; the send completes at injection (the payload is considered
  buffered).  The payload arrives ``latency + size/bandwidth + jitter`` later.
* Rendezvous send: an RTS control message travels to the receiver; once a
  matching receive is posted a CTS returns to the sender; the payload is then
  injected and the send completes when it has been fully serialised into the
  network.  The receive completes when the payload arrives.
* Unexpected eager messages are buffered (per-peer eager buffer, falling back
  to heap) and copied out when the matching receive is finally posted.
* Messages between the same (source, destination) pair are delivered in FIFO
  order, as MPI requires.

Burst delivery
--------------
Payload arrivals are scheduled as typed delivery events; the engine drains
same-timestamp event cohorts and hands every run of consecutive deliveries
bound for one receiver to :meth:`Transport.deliver_burst` in a single call.
Matching, statistics and tracing stay per-message (in exact event order), but
the flow-control policy is notified once per burst through
:meth:`repro.runtime.protocol.FlowControlPolicy.on_burst_delivered`, which
lets the predictive policies feed whole bursts into their online predictors'
amortised batch path instead of paying the per-message ``observe`` cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mpi.ops import IrecvOp, IsendOp, RecvOp, SendOp
from repro.mpi.request import Request, Status
from repro.runtime.buffers import BufferPoolStats, EagerBufferPool
from repro.runtime.matching import (
    PostedReceive,
    PostedReceiveQueue,
    UnexpectedEntry,
    UnexpectedQueue,
)
from repro.runtime.message import Message
from repro.runtime.protocol import FlowControlPolicy, StandardFlowControl
from repro.runtime.stats import RuntimeStats
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkModel
from repro.trace.tracer import TwoLevelTracer

__all__ = ["Transport"]

#: Minimum spacing enforced between two deliveries on the same channel so that
#: FIFO order is never violated by jitter.
_FIFO_EPSILON = 1.0e-12

#: The matching-queue entries and receive statuses are named tuples; building
#: them through ``tuple.__new__`` skips the generated ``__new__`` wrapper
#: (one of these is built per message on the hot path, and the wrapper alone
#: costs more than the allocation).
_tuple_new = tuple.__new__


@dataclass
class _Rendezvous:
    """In-flight rendezvous handshake state."""

    message: Message
    send_request: Request
    posted: Optional[PostedReceive] = None


class _Endpoint:
    """Per-rank matching state."""

    __slots__ = ("rank", "posted", "unexpected", "buffers")

    def __init__(self, rank: int, nprocs: int, machine: MachineConfig, preallocate: bool) -> None:
        self.rank = rank
        self.posted = PostedReceiveQueue()
        self.unexpected = UnexpectedQueue()
        self.buffers = EagerBufferPool(
            rank=rank,
            nprocs=nprocs,
            buffer_bytes=machine.eager_buffer_bytes,
            preallocate_all=preallocate,
        )


class Transport:
    """Message transport shared by all simulated ranks.

    Parameters
    ----------
    nprocs:
        Number of ranks.
    machine:
        Per-node cost model.
    network:
        Network timing model (owns the jitter RNG).
    tracer:
        Optional two-level tracer; if ``None``, no traces are recorded.
    policy:
        Flow-control policy; defaults to :class:`StandardFlowControl`.
    stats:
        Optional pre-existing :class:`RuntimeStats` to accumulate into.
    faults:
        Optional :class:`repro.sim.faults.FaultInjector`.  The transport
        consults it (only when its drop model is active) for data payloads:
        dropped messages arrive late after deterministic retransmission
        delays, and spurious duplicates are delivered — traced and shown to
        the policy — without ever matching a posted receive.
    """

    def __init__(
        self,
        nprocs: int,
        machine: MachineConfig,
        network: NetworkModel,
        tracer: TwoLevelTracer | None = None,
        policy: FlowControlPolicy | None = None,
        stats: RuntimeStats | None = None,
        faults=None,
    ) -> None:
        if nprocs <= 0:
            raise ValueError(f"nprocs must be positive, got {nprocs}")
        self.nprocs = nprocs
        self.machine = machine
        self.network = network
        self.tracer = tracer
        # Machine parameters copied to locals: read once or twice per message.
        self._send_overhead = machine.send_overhead
        self._recv_overhead = machine.recv_overhead
        self._eager_threshold = machine.eager_threshold
        self._control_bytes = machine.control_message_bytes
        self._handshake_cpu = machine.rendezvous_handshake_cpu
        self._copy_bandwidth = machine.unexpected_copy_bandwidth
        self.policy = policy or StandardFlowControl()
        self.policy.bind(machine, nprocs)
        # Skip the per-message notification calls entirely for policies that
        # keep the base no-op hooks (the standard/baseline policies): a bound
        # no-op method call per message is measurable on the delivery path.
        policy_type = type(self.policy)
        self._policy_observes_delivery = (
            policy_type.on_message_delivered is not FlowControlPolicy.on_message_delivered
            or policy_type.on_burst_delivered is not FlowControlPolicy.on_burst_delivered
        )
        self._policy_observes_recv = (
            policy_type.on_recv_posted is not FlowControlPolicy.on_recv_posted
        )
        # Bound tracer hooks (None when tracing is off): called per message.
        self._tracer_recv_posted = tracer.on_recv_posted if tracer else None
        self._tracer_recv_matched = tracer.on_recv_matched if tracer else None
        self._tracer_arrival = tracer.on_message_arrival if tracer else None
        self.stats = stats or RuntimeStats(nprocs=nprocs)
        self.stats.nprocs = nprocs
        #: Freelist of recycled request handles.  Only requests of *blocking*
        #: operations end up here (the engine releases them after the owning
        #: rank has resumed; their handles never escape to rank programs), so
        #: reuse is invisible to applications.  Bounded by the number of
        #: concurrently blocked ranks, i.e. tiny.
        self._request_pool: list[Request] = []
        # Consulted per data payload only when the drop model can fire; a
        # null/absent injector keeps the delivery path branch-free.
        self._faults = faults if faults is not None and faults.drop_active else None
        self._engine = None
        self._schedule_delivery = None
        self._channel_last_arrival: dict[tuple[int, int], float] = {}
        self._endpoints: list[_Endpoint] = []
        for rank in range(nprocs):
            peers = self.policy.preallocate_peers(rank)
            preallocate_all = machine.preallocate_all_peers and peers is None
            endpoint = _Endpoint(rank, nprocs, machine, preallocate_all)
            if peers is not None:
                endpoint.buffers.preallocate(peers)
            self._endpoints.append(endpoint)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, engine) -> None:
        """Attach the simulation engine (must expose ``schedule_at(time, fn)``).

        Engines that also expose ``schedule_delivery(time, message, posted)``
        get typed, burst-coalescable delivery events; anything else falls back
        to plain callbacks delivering one message at a time.
        """
        self._engine = engine
        self._schedule_delivery = getattr(engine, "schedule_delivery", None)

    def _schedule(self, time: float, callback) -> None:
        if self._engine is None:
            raise RuntimeError("transport is not attached to a simulation engine")
        self._engine.schedule_at(time, callback)

    def _schedule_data(self, time: float, message: Message, posted: Optional[PostedReceive]) -> None:
        """Schedule the physical arrival of ``message`` at ``time``."""
        if self._schedule_delivery is not None:
            self._schedule_delivery(time, message, posted)
        else:
            self._schedule(time, lambda: self.deliver_burst([(message, posted)], time))

    def endpoint(self, rank: int) -> _Endpoint:
        """Return the endpoint of ``rank`` (mainly for tests and stats)."""
        return self._endpoints[rank]

    def release_request(self, request: Request) -> None:
        """Return a completed, engine-owned request to the freelist.

        Callers must guarantee no live reference to ``request`` remains (the
        engine only releases the requests of blocking operations, whose
        handles never reach rank programs).  The next ``post_send`` /
        ``post_recv`` may hand the same object out again — reinitialised,
        with a fresh ``req_id``.
        """
        if not request.completed:
            raise RuntimeError(
                f"request {request.req_id} released to the freelist while still "
                "in flight: only completed, engine-owned requests may be recycled"
            )
        self._request_pool.append(request)

    def buffer_stats(self) -> list[BufferPoolStats]:
        """Eager-buffer memory accounting snapshots for every rank."""
        return [ep.buffers.stats() for ep in self._endpoints]

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def post_send(self, rank: int, op: SendOp | IsendOp, now: float) -> Request:
        """Execute a send operation object posted by ``rank`` at ``now``."""
        return self.post_send_values(
            rank, op.dest, int(op.nbytes), op.tag, op.kind, op.payload, now
        )

    def post_send_values(
        self,
        rank: int,
        dst: int,
        nbytes: int,
        tag: int,
        kind: str,
        payload: object | None,
        now: float,
    ) -> Request:
        """Execute a send given as plain field values (op-array fast lane).

        This is the real send path; :meth:`post_send` merely unpacks an
        operation object into it.  Taking scalars keeps the compiled engine
        lane free of per-op object construction.
        """
        if not (0 <= dst < self.nprocs):
            raise ValueError(f"destination rank {dst} out of range [0, {self.nprocs})")
        if dst == rank:
            raise ValueError("self-sends are not supported by the simulated transport")
        if nbytes < 0:
            raise ValueError(f"message size must be non-negative, got {nbytes}")

        pool = self._request_pool
        request = pool.pop()._reuse("send", rank) if pool else Request("send", rank)
        size_says_eager = nbytes <= self._eager_threshold
        policy_allows = self.policy.allows_eager(rank, dst, nbytes, kind, now)
        use_eager = policy_allows
        forced_rendezvous = size_says_eager and not policy_allows
        eager_bypass = (not size_says_eager) and policy_allows

        protocol = "eager" if use_eager else "rendezvous"
        # Positional construction: this runs once per message.
        message = Message(rank, dst, tag, nbytes, kind, protocol)
        message.payload = payload
        self.stats.record_send(nbytes, kind, protocol, forced_rendezvous, eager_bypass)

        inject = now + self._send_overhead
        message.inject_time = inject
        if use_eager:
            arrival = self._data_arrival(message, inject)
            message.arrival_time = arrival
            schedule_delivery = self._schedule_delivery
            if schedule_delivery is not None:
                schedule_delivery(arrival, message, None)
            else:
                self._schedule_data(arrival, message, None)
            request._complete(inject)
        else:
            state = _Rendezvous(message=message, send_request=request)
            self.stats.record_control_message()
            rts_arrival = self.network.arrival_time(
                rank, dst, self._control_bytes, inject
            )
            self._schedule(rts_arrival, lambda: self._handle_rts(state, rts_arrival))
        return request

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def post_recv(self, rank: int, op: RecvOp | IrecvOp, now: float) -> Request:
        """Execute a receive operation object posted by ``rank`` at ``now``."""
        return self.post_recv_values(rank, op.source, op.tag, op.kind, now)

    def post_recv_values(
        self, rank: int, source: int, tag: int, kind: str, now: float
    ) -> Request:
        """Execute a receive given as plain field values (op-array fast lane)."""
        pool = self._request_pool
        request = pool.pop()._reuse("recv", rank) if pool else Request("recv", rank)
        if self._tracer_recv_posted is not None:
            self._tracer_recv_posted(rank, request.req_id, now)
        if self._policy_observes_recv:
            self.policy.on_recv_posted(rank, source, tag, kind, now)

        posted = _tuple_new(PostedReceive, (request, source, tag, kind, now))
        endpoint = self._endpoints[rank]
        entry = endpoint.unexpected.match(posted)
        if entry is None:
            endpoint.posted.post(posted)
        elif entry.is_rendezvous_announcement:
            state: _Rendezvous = entry.rendezvous_token  # type: ignore[assignment]
            self._send_cts(state, posted, now + self._handshake_cpu)
        else:
            self._complete_from_unexpected(posted, entry, now)
        return request

    # ------------------------------------------------------------------
    # Internal protocol steps
    # ------------------------------------------------------------------
    def _data_arrival(self, message: Message, inject: float) -> float:
        """Arrival time of a payload, respecting per-channel FIFO order.

        When a fault injector with an active drop model is attached, a
        dropped payload picks up its deterministic retransmission delay
        *before* the FIFO clamp: like MPI over a reliable transport, the
        lost message head-of-line blocks its channel, so later traffic on
        the same channel queues behind the recovery (and arrives as a
        back-to-back burst).  A spurious duplicate copy is scheduled at the
        original, undelayed arrival time; it bypasses the FIFO bookkeeping
        because it is never matched.
        """
        src = message.src
        dst = message.dst
        arrival = self.network.arrival_time(src, dst, message.nbytes, inject)
        faults = self._faults
        if faults is not None:
            delay, duplicate = faults.data_fault()
            if delay > 0.0:
                if duplicate:
                    ghost = Message(
                        src, dst, message.tag, message.nbytes, message.kind,
                        message.protocol,
                    )
                    ghost.duplicate = True
                    ghost.inject_time = inject
                    ghost.arrival_time = arrival
                    self._schedule_data(arrival, ghost, None)
                arrival += delay
        key = (src, dst)
        last = self._channel_last_arrival.get(key, 0.0)
        if arrival <= last:
            arrival = last + _FIFO_EPSILON
        self._channel_last_arrival[key] = arrival
        return arrival

    def _handle_rts(self, state: _Rendezvous, arrival: float) -> None:
        """RTS arrived at the receiver: match immediately or park it."""
        message = state.message
        endpoint = self._endpoints[message.dst]
        posted = endpoint.posted.match(message)
        if posted is not None:
            self._send_cts(state, posted, arrival + self._handshake_cpu)
        else:
            endpoint.unexpected.add(
                _tuple_new(UnexpectedEntry, (message, arrival, True, state, None))
            )

    def _send_cts(self, state: _Rendezvous, posted: PostedReceive, time: float) -> None:
        """Receiver grants the transfer: send the CTS back to the sender."""
        state.posted = posted
        self.stats.record_control_message()
        message = state.message
        cts_arrival = self.network.arrival_time(
            message.dst, message.src, self._control_bytes, time
        )
        self._schedule(cts_arrival, lambda: self._handle_cts(state, cts_arrival))

    def _handle_cts(self, state: _Rendezvous, arrival: float) -> None:
        """CTS arrived back at the sender: push the payload."""
        message = state.message
        data_inject = arrival + self._handshake_cpu
        data_arrival = self._data_arrival(message, data_inject)
        message.arrival_time = data_arrival
        send_done = data_inject + self.network.serialization_time(message.nbytes)
        state.send_request._complete(send_done)
        self._schedule_data(data_arrival, message, state.posted)

    def _deliver_data(
        self, message: Message, arrival: float, posted: Optional[PostedReceive]
    ) -> None:
        """Single-message delivery (compatibility shim over the burst path)."""
        self.deliver_burst([(message, posted)], arrival)

    def deliver_burst(
        self, burst: list[tuple[Message, Optional[PostedReceive]]], arrival: float
    ) -> None:
        """Payloads physically arrived at one destination rank at one time.

        ``burst`` holds ``(message, posted_receive_or_None)`` pairs in exact
        event order; a non-None posted receive means the message is a
        rendezvous payload matched during the handshake.  Matching, delivery
        statistics and trace records are processed per message (preserving
        the one-event-at-a-time semantics bit for bit); the flow-control
        policy is notified once for the whole burst.
        """
        dst = burst[0][0].dst
        tracer_arrival = self._tracer_arrival
        if tracer_arrival is not None:
            for message, _ in burst:
                tracer_arrival(
                    dst, message.src, message.nbytes, message.tag, message.kind, arrival
                )
        if self._policy_observes_delivery:
            if len(burst) == 1:
                message = burst[0][0]
                self.policy.on_message_delivered(
                    dst, message.src, message.nbytes, message.tag, message.kind, arrival
                )
            else:
                self.policy.on_burst_delivered(
                    dst,
                    [(m.src, m.nbytes, m.tag, m.kind) for m, _ in burst],
                    arrival,
                )

        endpoint = self._endpoints[dst]
        stats = self.stats
        for message, posted in burst:
            if message.duplicate:
                # Fault-injected duplicate copy: already traced and shown to
                # the policy above; a real receiver deduplicates by sequence
                # number, so it never reaches MPI matching or statistics.
                continue
            if posted is not None:
                # Rendezvous payload: the receive was matched during the handshake.
                stats.record_delivery(expected=True)
                self._complete_receive(posted, message, arrival, copy_penalty=0.0)
                continue
            match = endpoint.posted.match(message)
            if match is not None:
                stats.record_delivery(expected=True)
                self._complete_receive(match, message, arrival, copy_penalty=0.0)
            else:
                storage = endpoint.buffers.store_unexpected(message.src, message.nbytes)
                stats.record_delivery(expected=False, storage=storage)
                endpoint.unexpected.add(
                    _tuple_new(UnexpectedEntry, (message, arrival, False, None, storage))
                )

    def _complete_from_unexpected(
        self, posted: PostedReceive, entry: UnexpectedEntry, now: float
    ) -> None:
        """A newly posted receive matched a buffered eager message."""
        message = entry.message
        endpoint = self._endpoints[posted.request.rank]
        endpoint.buffers.release_unexpected(message.src, message.nbytes, entry.storage or "heap")
        copy_penalty = message.nbytes / self._copy_bandwidth
        self._complete_receive(posted, message, max(now, entry.arrival_time), copy_penalty)

    def _complete_receive(
        self, posted: PostedReceive, message: Message, ready_time: float, copy_penalty: float
    ) -> None:
        """Finish a receive: build the status, trace it, fire the request."""
        complete_time = ready_time + self._recv_overhead + copy_penalty
        arrival_time = message.arrival_time
        status = _tuple_new(
            Status,
            (
                message.src,
                message.tag,
                message.nbytes,
                message.kind,
                arrival_time if arrival_time == arrival_time else ready_time,
            ),
        )
        rank = posted.request.rank
        if self._tracer_recv_matched is not None:
            self._tracer_recv_matched(
                rank,
                posted.request.req_id,
                message.src,
                message.nbytes,
                message.tag,
                message.kind,
                complete_time,
            )
        self.stats.record_latency(message.protocol, complete_time - message.inject_time)
        posted.request._complete(complete_time, status)

    # ------------------------------------------------------------------
    def pending_counts(self) -> dict[int, tuple[int, int]]:
        """Per-rank (posted, unexpected) queue lengths — useful for deadlock reports."""
        return {
            ep.rank: (len(ep.posted), len(ep.unexpected)) for ep in self._endpoints
        }
