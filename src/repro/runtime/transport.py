"""The transport engine: eager and rendezvous protocols over the network model.

This module plays the role of MPICH's ADI/ch_p4 layer in the paper's setup:
it receives send/receive postings from the simulation engine, selects a
protocol (eager vs rendezvous, subject to the flow-control policy), times the
resulting network traffic with :class:`repro.sim.network.NetworkModel`,
matches messages to posted receives with MPI semantics, accounts eager-buffer
memory, and drives the two-level tracer.

Postings have two entry points per direction: the operation-object APIs
(:meth:`Transport.post_send` / :meth:`Transport.post_recv`, used by the
generator protocol) unpack into the scalar-argument ones
(:meth:`Transport.post_send_values` / :meth:`Transport.post_recv_values`),
which the engine's op-array fast lane calls directly so no per-op operation
object ever exists on that path.

Timing model
------------
* Eager send: the payload is injected ``send_overhead`` after the send is
  posted; the send completes at injection (the payload is considered
  buffered).  The payload arrives ``latency + size/bandwidth + jitter`` later.
* Rendezvous send: an RTS control message travels to the receiver; once a
  matching receive is posted a CTS returns to the sender; the payload is then
  injected and the send completes when it has been fully serialised into the
  network.  The receive completes when the payload arrives.
* Unexpected eager messages are buffered (per-peer eager buffer, falling back
  to heap) and copied out when the matching receive is finally posted.
* Messages between the same (source, destination) pair are delivered in FIFO
  order, as MPI requires.

Burst delivery
--------------
Payload arrivals are scheduled as typed delivery events; the engine drains
same-timestamp event cohorts and hands every run of consecutive deliveries
bound for one receiver to :meth:`Transport.deliver_burst` in a single call.
Matching, statistics and tracing stay per-message (in exact event order), but
the flow-control policy is notified once per burst through
:meth:`repro.runtime.protocol.FlowControlPolicy.on_burst_delivered`, which
lets the predictive policies feed whole bursts into their online predictors'
amortised batch path instead of paying the per-message ``observe`` cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.mpi.ops import IrecvOp, IsendOp, RecvOp, SendOp
from repro.mpi.request import Request, Status, _request_ids
from repro.runtime.buffers import BufferPoolStats, EagerBufferPool
from repro.runtime.matching import (
    PostedReceive,
    PostedReceiveQueue,
    UnexpectedEntry,
    UnexpectedQueue,
)
from repro.runtime.message import Message
from repro.runtime.protocol import FlowControlPolicy, StandardFlowControl
from repro.runtime.stats import RuntimeStats
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkModel
from repro.trace.tracer import TwoLevelTracer

__all__ = ["Transport"]

#: Minimum spacing enforced between two deliveries on the same channel so that
#: FIFO order is never violated by jitter.
_FIFO_EPSILON = 1.0e-12

#: Burst size below which the deterministic send path skips the numpy
#: batch-arrival expression: array construction costs more than it saves on
#: small bursts, so they run a single hoisted loop with the arrival formula
#: inlined instead.
_BURST_GATHER_MIN = 64

#: The matching-queue entries and receive statuses are named tuples; building
#: them through ``tuple.__new__`` skips the generated ``__new__`` wrapper
#: (one of these is built per message on the hot path, and the wrapper alone
#: costs more than the allocation).
_tuple_new = tuple.__new__

#: Fresh-request sentinel for ``completion_time`` (see ``Request._reuse``,
#: whose field resets the burst loops inline).
_NAN = float("nan")


@dataclass
class _Rendezvous:
    """In-flight rendezvous handshake state.

    ``handshake_id`` is set only for cross-partition handshakes under the
    parallel engine: the sender-side transport keys its in-flight table with
    it, the receiver-side transport parks the matched receive under it, and
    the RTS/CTS/DATA records exchanged at window barriers carry it.  ``None``
    means the whole handshake is partition-local (or the run is not
    partitioned at all) and proceeds through direct event scheduling.
    """

    message: Message
    send_request: Optional[Request]
    posted: Optional[PostedReceive] = None
    handshake_id: object = None


class _Endpoint:
    """Per-rank matching state."""

    __slots__ = ("rank", "posted", "unexpected", "buffers")

    def __init__(self, rank: int, nprocs: int, machine: MachineConfig, preallocate: bool) -> None:
        self.rank = rank
        self.posted = PostedReceiveQueue()
        self.unexpected = UnexpectedQueue()
        self.buffers = EagerBufferPool(
            rank=rank,
            nprocs=nprocs,
            buffer_bytes=machine.eager_buffer_bytes,
            preallocate_all=preallocate,
        )


class Transport:
    """Message transport shared by all simulated ranks.

    Parameters
    ----------
    nprocs:
        Number of ranks.
    machine:
        Per-node cost model.
    network:
        Network timing model (owns the jitter RNG).
    tracer:
        Optional two-level tracer; if ``None``, no traces are recorded.
    policy:
        Flow-control policy; defaults to :class:`StandardFlowControl`.
    stats:
        Optional pre-existing :class:`RuntimeStats` to accumulate into.
    faults:
        Optional :class:`repro.sim.faults.FaultInjector`.  The transport
        consults it (only when its drop model is active) for data payloads:
        dropped messages arrive late after deterministic retransmission
        delays, and spurious duplicates are delivered — traced and shown to
        the policy — without ever matching a posted receive.
    """

    def __init__(
        self,
        nprocs: int,
        machine: MachineConfig,
        network: NetworkModel,
        tracer: TwoLevelTracer | None = None,
        policy: FlowControlPolicy | None = None,
        stats: RuntimeStats | None = None,
        faults=None,
    ) -> None:
        if nprocs <= 0:
            raise ValueError(f"nprocs must be positive, got {nprocs}")
        self.nprocs = nprocs
        self.machine = machine
        self.network = network
        self.tracer = tracer
        # Machine parameters copied to locals: read once or twice per message.
        self._send_overhead = machine.send_overhead
        self._recv_overhead = machine.recv_overhead
        self._eager_threshold = machine.eager_threshold
        self._control_bytes = machine.control_message_bytes
        self._handshake_cpu = machine.rendezvous_handshake_cpu
        self._copy_bandwidth = machine.unexpected_copy_bandwidth
        self.policy = policy or StandardFlowControl()
        self.policy.bind(machine, nprocs)
        # Skip the per-message notification calls entirely for policies that
        # keep the base no-op hooks (the standard/baseline policies): a bound
        # no-op method call per message is measurable on the delivery path.
        policy_type = type(self.policy)
        self._policy_observes_delivery = (
            policy_type.on_message_delivered is not FlowControlPolicy.on_message_delivered
            or policy_type.on_burst_delivered is not FlowControlPolicy.on_burst_delivered
        )
        self._policy_observes_recv = (
            policy_type.on_recv_posted is not FlowControlPolicy.on_recv_posted
        )
        # Bound tracer hooks (None when tracing is off): called per message.
        self._tracer_recv_posted = tracer.on_recv_posted if tracer else None
        self._tracer_recv_matched = tracer.on_recv_matched if tracer else None
        self._tracer_arrival = tracer.on_message_arrival if tracer else None
        self.stats = stats or RuntimeStats(nprocs=nprocs)
        self.stats.nprocs = nprocs
        #: Freelist of recycled request handles.  Only requests of *blocking*
        #: operations end up here (the engine releases them after the owning
        #: rank has resumed; their handles never escape to rank programs), so
        #: reuse is invisible to applications.  Bounded by the number of
        #: concurrently blocked ranks, i.e. tiny.
        self._request_pool: list[Request] = []
        # Consulted per data payload only when the drop model can fire; a
        # null/absent injector keeps the delivery path branch-free.
        self._faults = faults if faults is not None and faults.drop_active else None
        self._engine = None
        self._schedule_delivery = None
        self._schedule_delivery_batch = None
        self._channel_last_arrival: dict[tuple[int, int], float] = {}
        # Parallel-engine partition mode (see enable_partition_mode): when
        # set, sends whose destination rank lives in another partition are
        # buffered as serialised records instead of scheduled locally.  None
        # keeps every path branch-cheap for the ordinary single-process case.
        self._partition_local: frozenset[int] | None = None
        self._outbox: list[tuple] = []
        self._outbox_seq = 0
        self._next_handshake = 0
        #: Sender-side in-flight cross-partition rendezvous states.
        self._pending_rendezvous: dict[tuple, _Rendezvous] = {}
        #: Receiver-side matched-but-awaiting-payload receives, parked while
        #: the CTS/DATA legs of a cross-partition handshake are in transit.
        self._parked_posted: dict[tuple, PostedReceive] = {}
        self._endpoints: list[_Endpoint] = []
        for rank in range(nprocs):
            peers = self.policy.preallocate_peers(rank)
            preallocate_all = machine.preallocate_all_peers and peers is None
            endpoint = _Endpoint(rank, nprocs, machine, preallocate_all)
            if peers is not None:
                endpoint.buffers.preallocate(peers)
            self._endpoints.append(endpoint)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, engine) -> None:
        """Attach the simulation engine (must expose ``schedule_at(time, fn)``).

        Engines that also expose ``schedule_delivery(time, message, posted)``
        get typed, burst-coalescable delivery events; anything else falls back
        to plain callbacks delivering one message at a time.
        """
        self._engine = engine
        self._schedule_delivery = getattr(engine, "schedule_delivery", None)
        self._schedule_delivery_batch = getattr(engine, "schedule_delivery_batch", None)

    def _schedule(self, time: float, callback) -> None:
        if self._engine is None:
            raise RuntimeError("transport is not attached to a simulation engine")
        self._engine.schedule_at(time, callback)

    def _schedule_data(self, time: float, message: Message, posted: Optional[PostedReceive]) -> None:
        """Schedule the physical arrival of ``message`` at ``time``."""
        local = self._partition_local
        if local is not None and message.dst not in local:
            # Ghost duplicates and eager fallback arrivals aimed at a remote
            # partition become exchange records instead of local events.
            self._outbox_data(time, message)
            return
        if self._schedule_delivery is not None:
            self._schedule_delivery(time, message, posted)
        else:
            self._schedule(time, lambda: self.deliver_burst([(message, posted)], time))

    def endpoint(self, rank: int) -> _Endpoint:
        """Return the endpoint of ``rank`` (mainly for tests and stats)."""
        return self._endpoints[rank]

    def release_request(self, request: Request) -> None:
        """Return a completed, engine-owned request to the freelist.

        Callers must guarantee no live reference to ``request`` remains (the
        engine only releases the requests of blocking operations, whose
        handles never reach rank programs).  The next ``post_send`` /
        ``post_recv`` may hand the same object out again — reinitialised,
        with a fresh ``req_id``.
        """
        if not request.completed:
            raise RuntimeError(
                f"request {request.req_id} released to the freelist while still "
                "in flight: only completed, engine-owned requests may be recycled"
            )
        self._request_pool.append(request)

    def buffer_stats(self) -> list[BufferPoolStats]:
        """Eager-buffer memory accounting snapshots for every rank."""
        return [ep.buffers.stats() for ep in self._endpoints]

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def post_send(self, rank: int, op: SendOp | IsendOp, now: float) -> Request:
        """Execute a send operation object posted by ``rank`` at ``now``."""
        return self.post_send_values(
            rank, op.dest, int(op.nbytes), op.tag, op.kind, op.payload, now
        )

    def post_send_values(
        self,
        rank: int,
        dst: int,
        nbytes: int,
        tag: int,
        kind: str,
        payload: object | None,
        now: float,
    ) -> Request:
        """Execute a send given as plain field values (op-array fast lane).

        This is the real send path; :meth:`post_send` merely unpacks an
        operation object into it.  Taking scalars keeps the compiled engine
        lane free of per-op object construction.
        """
        if not (0 <= dst < self.nprocs):
            raise ValueError(f"destination rank {dst} out of range [0, {self.nprocs})")
        if dst == rank:
            raise ValueError("self-sends are not supported by the simulated transport")
        if nbytes < 0:
            raise ValueError(f"message size must be non-negative, got {nbytes}")

        pool = self._request_pool
        request = pool.pop()._reuse("send", rank) if pool else Request("send", rank)
        size_says_eager = nbytes <= self._eager_threshold
        policy_allows = self.policy.allows_eager(rank, dst, nbytes, kind, now)
        use_eager = policy_allows
        forced_rendezvous = size_says_eager and not policy_allows
        eager_bypass = (not size_says_eager) and policy_allows

        protocol = "eager" if use_eager else "rendezvous"
        # Positional construction: this runs once per message.
        message = Message(rank, dst, tag, nbytes, kind, protocol)
        message.payload = payload
        self.stats.record_send(nbytes, kind, protocol, forced_rendezvous, eager_bypass)

        inject = now + self._send_overhead
        message.inject_time = inject
        local = self._partition_local
        if use_eager:
            arrival = self._data_arrival(message, inject)
            message.arrival_time = arrival
            if local is not None and dst not in local:
                self._outbox_data(arrival, message)
            else:
                schedule_delivery = self._schedule_delivery
                if schedule_delivery is not None:
                    schedule_delivery(arrival, message, None)
                else:
                    self._schedule_data(arrival, message, None)
            request._complete(inject)
        else:
            state = _Rendezvous(message=message, send_request=request)
            self.stats.record_control_message()
            rts_arrival = self.network.arrival_time(
                rank, dst, self._control_bytes, inject
            )
            if local is not None and dst not in local:
                handshake_id = (rank, self._next_handshake)
                self._next_handshake += 1
                state.handshake_id = handshake_id
                self._pending_rendezvous[handshake_id] = state
                self._outbox_put(
                    dst,
                    rts_arrival,
                    ("rts", rank, dst, message.tag, nbytes, kind, inject,
                     handshake_id),
                )
            else:
                self._schedule(rts_arrival, lambda: self._handle_rts(state, rts_arrival))
        return request

    def post_send_burst(
        self,
        ranks: list[int],
        dsts: list[int],
        nbytes_list: list[int],
        tags: list[int],
        kinds: list[str],
        nows: list[float],
    ) -> list[Request]:
        """Execute many sends posted at one timestamp cohort (vectorised lane).

        Bit-identical to calling :meth:`post_send_values` once per message in
        list order (the engine's scalar drain does exactly that), returning
        the requests in the same order.  Two regimes:

        * When the network is :attr:`~repro.sim.network.NetworkModel.deterministic`
          and no drop faults are attached, eager payload arrivals for the
          whole burst come from one
          :meth:`~repro.sim.network.NetworkModel.batch_arrival_times`
          expression; per-message work (policy consultation, statistics,
          FIFO clamping, event pushes) still runs in exact message order, so
          every stateful side effect is sequenced as the scalar path would
          sequence it.
        * Otherwise — jitter, contention, degradation or drop faults make
          arrival computation order-sensitive — the burst simply loops over
          :meth:`post_send_values`.
        """
        n = len(ranks)
        network = self.network
        local = self._partition_local
        if self._faults is not None or not network.deterministic:
            post = self.post_send_values
            return [
                post(ranks[i], dsts[i], nbytes_list[i], tags[i], kinds[i], None, nows[i])
                for i in range(n)
            ]
        if n < _BURST_GATHER_MIN:
            return self._post_send_burst_small(
                ranks, dsts, nbytes_list, tags, kinds, nows
            )
        nprocs = self.nprocs
        pool = self._request_pool
        eager_threshold = self._eager_threshold
        policy = self.policy
        # StandardFlowControl.allows_eager is a pure size test; inlining it
        # skips one method call per message without changing the decision.
        standard = type(policy) is StandardFlowControl
        standard_threshold = policy.machine.eager_threshold if standard else 0
        allows_eager = policy.allows_eager
        send_overhead = self._send_overhead
        items: list[tuple[Message, Request, bool]] = []
        eager_nbytes: list[int] = []
        eager_inject: list[float] = []
        requests: list[Request] = []
        # Send statistics are plain integer sums, so they are accumulated
        # locally and applied once after the loop — exact and order-free.
        sent_bytes = 0
        coll_count = 0
        eager_count = 0
        forced_count = 0
        bypass_count = 0
        for i in range(n):
            rank = ranks[i]
            dst = dsts[i]
            nbytes = nbytes_list[i]
            if not (0 <= dst < nprocs):
                raise ValueError(f"destination rank {dst} out of range [0, {nprocs})")
            if dst == rank:
                raise ValueError("self-sends are not supported by the simulated transport")
            if nbytes < 0:
                raise ValueError(f"message size must be non-negative, got {nbytes}")
            kind = kinds[i]
            now = nows[i]
            # Inlined Request._reuse: one freelist pop per message.
            if pool:
                request = pool.pop()
                request.req_id = next(_request_ids)
                request.op_kind = "send"
                request.rank = rank
                request.completed = False
                request.cancelled = False
                request.completion_time = _NAN
                request.status = None
                request._callbacks = None
            else:
                request = Request("send", rank)
            size_says_eager = nbytes <= eager_threshold
            if standard:
                policy_allows = nbytes <= standard_threshold
            else:
                policy_allows = allows_eager(rank, dst, nbytes, kind, now)
            protocol = "eager" if policy_allows else "rendezvous"
            message = Message(rank, dst, tags[i], nbytes, kind, protocol)
            message.payload = None
            sent_bytes += nbytes
            if kind == "collective":
                coll_count += 1
            if policy_allows:
                eager_count += 1
                if not size_says_eager:
                    bypass_count += 1
            elif size_says_eager:
                forced_count += 1
            inject = now + send_overhead
            message.inject_time = inject
            if policy_allows:
                eager_nbytes.append(nbytes)
                eager_inject.append(inject)
            items.append((message, request, policy_allows))
            requests.append(request)
        stats = self.stats
        stats.messages_sent += n
        stats.bytes_sent += sent_bytes
        stats.collective_messages += coll_count
        stats.p2p_messages += n - coll_count
        stats.eager_messages += eager_count
        stats.rendezvous_messages += n - eager_count
        stats.forced_rendezvous += forced_count
        stats.eager_bypass_large += bypass_count
        arrivals = iter(
            self.network.batch_arrival_times(
                np.asarray(eager_nbytes, dtype=np.int64),
                np.asarray(eager_inject, dtype=np.float64),
            ).tolist()
            if eager_nbytes
            else ()
        )
        # Second pass in the same message order: every event push (delivery or
        # RTS control callback) lands with the sequence-number order the
        # scalar path would have produced, which is what keeps simultaneous
        # future arrivals breaking ties identically.
        #
        # Eager delivery pushes are *deferred*: while consecutive eager
        # messages share one arrival timestamp (the common case for a
        # lockstep exchange on the deterministic network), their records are
        # emitted as a single EVENT_DELIVER_BATCH, whose sequence block is
        # exactly the one the individual pushes would have consumed.
        # Deferral is order-safe because nothing else pushes events between
        # two eager messages (``request._complete`` has no callbacks at post
        # time); any rendezvous message *does* push a control callback, so
        # the pending run is flushed before it.
        schedule_delivery = self._schedule_delivery
        schedule_batch = self._schedule_delivery_batch
        channel_last = self._channel_last_arrival
        pending: list[Message] = []
        pending_arrival = 0.0
        pending_same = True
        for message, request, use_eager in items:
            if use_eager:
                arrival = next(arrivals)
                key = (message.src, message.dst)
                last = channel_last.get(key, 0.0)
                if arrival <= last:
                    arrival = last + _FIFO_EPSILON
                channel_last[key] = arrival
                message.arrival_time = arrival
                if local is not None and message.dst not in local:
                    # Partition mode: a cross-partition payload consumes no
                    # local event (exactly like the scalar path), so it
                    # neither joins nor flushes the pending delivery run.
                    self._outbox_data(arrival, message)
                elif schedule_batch is not None:
                    if not pending:
                        pending_arrival = arrival
                        pending_same = True
                    elif arrival != pending_arrival:
                        pending_same = False
                    pending.append(message)
                elif schedule_delivery is not None:
                    schedule_delivery(arrival, message, None)
                else:
                    self._schedule_data(arrival, message, None)
                request._complete(message.inject_time)
            else:
                if pending:
                    self._flush_pending_deliveries(pending, pending_arrival, pending_same)
                    pending = []
                state = _Rendezvous(message=message, send_request=request)
                self.stats.record_control_message()
                rts_arrival = self.network.arrival_time(
                    message.src, message.dst, self._control_bytes, message.inject_time
                )
                if local is not None and message.dst not in local:
                    handshake_id = (message.src, self._next_handshake)
                    self._next_handshake += 1
                    state.handshake_id = handshake_id
                    self._pending_rendezvous[handshake_id] = state
                    self._outbox_put(
                        message.dst,
                        rts_arrival,
                        ("rts", message.src, message.dst, message.tag,
                         message.nbytes, message.kind, message.inject_time,
                         handshake_id),
                    )
                else:
                    self._schedule(
                        rts_arrival,
                        lambda state=state, t=rts_arrival: self._handle_rts(state, t),
                    )
        if pending:
            self._flush_pending_deliveries(pending, pending_arrival, pending_same)
        return requests

    def _flush_pending_deliveries(
        self, pending: list[Message], arrival: float, same: bool
    ) -> None:
        """Emit deferred eager deliveries: one batch record when the run
        shares a timestamp, individual records (original order) otherwise."""
        if same and len(pending) > 1:
            self._schedule_delivery_batch(
                arrival, [(message, None) for message in pending]
            )
            return
        schedule_delivery = self._schedule_delivery
        for message in pending:
            schedule_delivery(message.arrival_time, message, None)

    def _post_send_burst_small(
        self,
        ranks: list[int],
        dsts: list[int],
        nbytes_list: list[int],
        tags: list[int],
        kinds: list[str],
        nows: list[float],
    ) -> list[Request]:
        """Single-pass regime of :meth:`post_send_burst` for small bursts.

        Below :data:`_BURST_GATHER_MIN` messages the numpy batch-arrival
        expression costs more than it saves, so this path keeps the hoisted
        lookups but computes each eager arrival inline with the exact float
        grouping of :meth:`NetworkModel.arrival_time` — ``inject +
        (latency + nbytes / bandwidth)``, with jitter and penalty exact zeros
        on the deterministic model — so results stay bit-identical.  Network
        counters are accumulated locally and applied once at the end (they
        are plain integer sums, so the total is order-independent).
        """
        network = self.network
        nprocs = self.nprocs
        pool = self._request_pool
        eager_threshold = self._eager_threshold
        policy = self.policy
        standard = type(policy) is StandardFlowControl
        standard_threshold = policy.machine.eager_threshold if standard else 0
        allows_eager = policy.allows_eager
        record_send = self.stats.record_send
        send_overhead = self._send_overhead
        schedule_delivery = self._schedule_delivery
        channel_last = self._channel_last_arrival
        latency = network._latency
        bandwidth = network._bandwidth
        local = self._partition_local
        requests: list[Request] = []
        append = requests.append
        eager_count = 0
        eager_bytes = 0
        for i in range(len(ranks)):
            rank = ranks[i]
            dst = dsts[i]
            nbytes = nbytes_list[i]
            if not (0 <= dst < nprocs):
                raise ValueError(f"destination rank {dst} out of range [0, {nprocs})")
            if dst == rank:
                raise ValueError("self-sends are not supported by the simulated transport")
            if nbytes < 0:
                raise ValueError(f"message size must be non-negative, got {nbytes}")
            kind = kinds[i]
            now = nows[i]
            request = pool.pop()._reuse("send", rank) if pool else Request("send", rank)
            size_says_eager = nbytes <= eager_threshold
            if standard:
                policy_allows = nbytes <= standard_threshold
            else:
                policy_allows = allows_eager(rank, dst, nbytes, kind, now)
            protocol = "eager" if policy_allows else "rendezvous"
            message = Message(rank, dst, tags[i], nbytes, kind, protocol)
            message.payload = None
            record_send(
                nbytes,
                kind,
                protocol,
                size_says_eager and not policy_allows,
                (not size_says_eager) and policy_allows,
            )
            inject = now + send_overhead
            message.inject_time = inject
            if policy_allows:
                arrival = inject + (latency + nbytes / bandwidth)
                eager_count += 1
                eager_bytes += nbytes
                key = (rank, dst)
                last = channel_last.get(key, 0.0)
                if arrival <= last:
                    arrival = last + _FIFO_EPSILON
                channel_last[key] = arrival
                message.arrival_time = arrival
                if local is not None and dst not in local:
                    self._outbox_data(arrival, message)
                elif schedule_delivery is not None:
                    schedule_delivery(arrival, message, None)
                else:
                    self._schedule_data(arrival, message, None)
                request._complete(inject)
            else:
                state = _Rendezvous(message=message, send_request=request)
                self.stats.record_control_message()
                rts_arrival = network.arrival_time(
                    rank, dst, self._control_bytes, inject
                )
                if local is not None and dst not in local:
                    handshake_id = (rank, self._next_handshake)
                    self._next_handshake += 1
                    state.handshake_id = handshake_id
                    self._pending_rendezvous[handshake_id] = state
                    self._outbox_put(
                        dst,
                        rts_arrival,
                        ("rts", rank, dst, tags[i], nbytes, kind, inject,
                         handshake_id),
                    )
                else:
                    self._schedule(
                        rts_arrival,
                        lambda state=state, t=rts_arrival: self._handle_rts(state, t),
                    )
            append(request)
        network.messages_timed += eager_count
        network.total_bytes += eager_bytes
        return requests

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def post_recv(self, rank: int, op: RecvOp | IrecvOp, now: float) -> Request:
        """Execute a receive operation object posted by ``rank`` at ``now``."""
        return self.post_recv_values(rank, op.source, op.tag, op.kind, now)

    def post_recv_values(
        self, rank: int, source: int, tag: int, kind: str, now: float
    ) -> Request:
        """Execute a receive given as plain field values (op-array fast lane)."""
        pool = self._request_pool
        request = pool.pop()._reuse("recv", rank) if pool else Request("recv", rank)
        if self._tracer_recv_posted is not None:
            self._tracer_recv_posted(rank, request.req_id, now)
        if self._policy_observes_recv:
            self.policy.on_recv_posted(rank, source, tag, kind, now)

        posted = _tuple_new(PostedReceive, (request, source, tag, kind, now))
        endpoint = self._endpoints[rank]
        entry = endpoint.unexpected.match(posted)
        if entry is None:
            endpoint.posted.post(posted)
        elif entry.is_rendezvous_announcement:
            state: _Rendezvous = entry.rendezvous_token  # type: ignore[assignment]
            self._send_cts(state, posted, now + self._handshake_cpu)
        else:
            self._complete_from_unexpected(posted, entry, now)
        return request

    def post_recv_burst(
        self,
        ranks: list[int],
        sources: list[int],
        tags: list[int],
        kinds: list[str],
        nows: list[float],
    ) -> list[Request]:
        """Execute many receives posted at one timestamp cohort (vectorised lane).

        Bit-identical to calling :meth:`post_recv_values` once per message in
        list order: receive posting consumes no randomness and no timing, so
        the burst is purely the per-message loop with the hook lookups and
        freelist bindings hoisted out of it.  Matching side effects (posted
        queues, unexpected matches, CTS grants) run in exact message order.
        """
        pool = self._request_pool
        tracer_recv_posted = self._tracer_recv_posted
        policy_observes_recv = self._policy_observes_recv
        on_recv_posted = self.policy.on_recv_posted
        endpoints = self._endpoints
        handshake_cpu = self._handshake_cpu
        requests: list[Request] = []
        append = requests.append
        for i in range(len(ranks)):
            rank = ranks[i]
            source = sources[i]
            tag = tags[i]
            kind = kinds[i]
            now = nows[i]
            # Inlined Request._reuse: one freelist pop per message.
            if pool:
                request = pool.pop()
                request.req_id = next(_request_ids)
                request.op_kind = "recv"
                request.rank = rank
                request.completed = False
                request.cancelled = False
                request.completion_time = _NAN
                request.status = None
                request._callbacks = None
            else:
                request = Request("recv", rank)
            if tracer_recv_posted is not None:
                tracer_recv_posted(rank, request.req_id, now)
            if policy_observes_recv:
                on_recv_posted(rank, source, tag, kind, now)
            posted = _tuple_new(PostedReceive, (request, source, tag, kind, now))
            endpoint = endpoints[rank]
            entry = endpoint.unexpected.match(posted)
            if entry is None:
                endpoint.posted.post(posted)
            elif entry.is_rendezvous_announcement:
                self._send_cts(entry.rendezvous_token, posted, now + handshake_cpu)
            else:
                self._complete_from_unexpected(posted, entry, now)
            append(request)
        return requests

    # ------------------------------------------------------------------
    # Internal protocol steps
    # ------------------------------------------------------------------
    def _data_arrival(self, message: Message, inject: float) -> float:
        """Arrival time of a payload, respecting per-channel FIFO order.

        When a fault injector with an active drop model is attached, a
        dropped payload picks up its deterministic retransmission delay
        *before* the FIFO clamp: like MPI over a reliable transport, the
        lost message head-of-line blocks its channel, so later traffic on
        the same channel queues behind the recovery (and arrives as a
        back-to-back burst).  A spurious duplicate copy is scheduled at the
        original, undelayed arrival time; it bypasses the FIFO bookkeeping
        because it is never matched.
        """
        src = message.src
        dst = message.dst
        arrival = self.network.arrival_time(src, dst, message.nbytes, inject)
        faults = self._faults
        if faults is not None:
            delay, duplicate = faults.data_fault(src)
            if delay > 0.0:
                if duplicate:
                    ghost = Message(
                        src, dst, message.tag, message.nbytes, message.kind,
                        message.protocol,
                    )
                    ghost.duplicate = True
                    ghost.inject_time = inject
                    ghost.arrival_time = arrival
                    self._schedule_data(arrival, ghost, None)
                arrival += delay
        key = (src, dst)
        last = self._channel_last_arrival.get(key, 0.0)
        if arrival <= last:
            arrival = last + _FIFO_EPSILON
        self._channel_last_arrival[key] = arrival
        return arrival

    def _handle_rts(self, state: _Rendezvous, arrival: float) -> None:
        """RTS arrived at the receiver: match immediately or park it."""
        message = state.message
        endpoint = self._endpoints[message.dst]
        posted = endpoint.posted.match(message)
        if posted is not None:
            self._send_cts(state, posted, arrival + self._handshake_cpu)
        else:
            endpoint.unexpected.add(
                _tuple_new(UnexpectedEntry, (message, arrival, True, state, None))
            )

    def _send_cts(self, state: _Rendezvous, posted: PostedReceive, time: float) -> None:
        """Receiver grants the transfer: send the CTS back to the sender."""
        state.posted = posted
        self.stats.record_control_message()
        message = state.message
        cts_arrival = self.network.arrival_time(
            message.dst, message.src, self._control_bytes, time
        )
        if state.handshake_id is not None:
            # Cross-partition handshake: the sender lives in another worker.
            # Park the matched receive under the handshake id and ship the
            # CTS back through the barrier exchange.
            self._parked_posted[state.handshake_id] = posted
            self._outbox_put(message.src, cts_arrival, ("cts", state.handshake_id))
            return
        self._schedule(cts_arrival, lambda: self._handle_cts(state, cts_arrival))

    def _handle_cts(self, state: _Rendezvous, arrival: float) -> None:
        """CTS arrived back at the sender: push the payload."""
        message = state.message
        data_inject = arrival + self._handshake_cpu
        data_arrival = self._data_arrival(message, data_inject)
        message.arrival_time = data_arrival
        send_done = data_inject + self.network.serialization_time(message.nbytes)
        state.send_request._complete(send_done)
        self._schedule_data(data_arrival, message, state.posted)

    # ------------------------------------------------------------------
    # Partition mode (parallel engine)
    # ------------------------------------------------------------------
    # In partition mode every worker process simulates a contiguous block of
    # ranks; a send whose destination lives in another partition becomes a
    # serialisable *exchange record* in the outbox instead of a local event.
    # The coordinator drains the outboxes at each conservative barrier and
    # injects the records into the destination partitions, where
    # :meth:`inject_remote` replays them as if they had been scheduled
    # locally.  Three record payloads exist:
    #
    # ``("data", ...)``   — a payload arrival (eager send, rendezvous payload
    #                       after a completed handshake, or a duplicate ghost).
    # ``("rts", ...)``    — a rendezvous request-to-send; the receiver builds a
    #                       sender-less :class:`_Rendezvous` replica keyed by
    #                       ``handshake_id``.
    # ``("cts", id)``     — the matching clear-to-send travelling back to the
    #                       sender's partition.
    #
    # ``handshake_id`` is ``(src_rank, counter)`` with a per-transport counter:
    # globally unique because every source rank lives in exactly one partition.

    def enable_partition_mode(self, local_ranks) -> None:
        """Route sends to ranks outside ``local_ranks`` through the outbox."""
        self._partition_local = frozenset(local_ranks)

    def take_outbox(self) -> list[tuple]:
        """Drain buffered cross-partition records (called at each barrier).

        Each record is ``(target_rank, time, seq, payload)`` where ``seq`` is
        a transport-wide emission counter so the coordinator can order
        same-time records from one partition deterministically.
        """
        outbox = self._outbox
        self._outbox = []
        return outbox

    def _outbox_put(self, target: int, time: float, payload: tuple) -> None:
        seq = self._outbox_seq
        self._outbox_seq = seq + 1
        self._outbox.append((target, time, seq, payload))

    def _outbox_data(self, time: float, message: Message, handshake_id=None) -> None:
        self._outbox_put(
            message.dst,
            time,
            (
                "data",
                message.src,
                message.dst,
                message.tag,
                message.nbytes,
                message.kind,
                message.protocol,
                message.inject_time,
                message.arrival_time,
                message.duplicate,
                handshake_id,
            ),
        )

    def _handle_remote_cts(self, handshake_id, arrival: float) -> None:
        """A barrier-injected CTS reached the sending partition: push data."""
        state = self._pending_rendezvous.pop(handshake_id)
        message = state.message
        data_inject = arrival + self._handshake_cpu
        data_arrival = self._data_arrival(message, data_inject)
        message.arrival_time = data_arrival
        send_done = data_inject + self.network.serialization_time(message.nbytes)
        state.send_request._complete(send_done)
        self._outbox_data(data_arrival, message, handshake_id)

    def inject_remote(self, time: float, payload: tuple) -> None:
        """Replay one exchange record shipped in from another partition.

        The engine must push the resulting events *before* the next window
        starts; conservative lookahead guarantees ``time`` lies at or beyond
        the window boundary, so injection order relative to local events is
        exactly heap order.
        """
        kind = payload[0]
        if kind == "data":
            (_, src, dst, tag, nbytes, mkind, protocol, inject_time,
             arrival_time, duplicate, handshake_id) = payload
            message = Message(src, dst, tag, nbytes, mkind, protocol)
            message.inject_time = inject_time
            message.arrival_time = arrival_time
            message.duplicate = duplicate
            posted = (
                self._parked_posted.pop(handshake_id)
                if handshake_id is not None
                else None
            )
            if self._schedule_delivery is not None:
                self._schedule_delivery(time, message, posted)
            else:
                self._schedule(time, lambda: self.deliver_burst([(message, posted)], time))
        elif kind == "rts":
            _, src, dst, tag, nbytes, mkind, inject_time, handshake_id = payload
            message = Message(src, dst, tag, nbytes, mkind, "rendezvous")
            message.inject_time = inject_time
            state = _Rendezvous(
                message=message, send_request=None, handshake_id=handshake_id
            )
            self._schedule(time, lambda: self._handle_rts(state, time))
        elif kind == "cts":
            handshake_id = payload[1]
            self._schedule(time, lambda: self._handle_remote_cts(handshake_id, time))
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown exchange record kind: {kind!r}")

    def _deliver_data(
        self, message: Message, arrival: float, posted: Optional[PostedReceive]
    ) -> None:
        """Single-message delivery (compatibility shim over the burst path)."""
        self.deliver_burst([(message, posted)], arrival)

    def deliver_burst(
        self, burst: list[tuple[Message, Optional[PostedReceive]]], arrival: float
    ) -> None:
        """Payloads physically arrived at one destination rank at one time.

        ``burst`` holds ``(message, posted_receive_or_None)`` pairs in exact
        event order; a non-None posted receive means the message is a
        rendezvous payload matched during the handshake.  Matching, delivery
        statistics and trace records are processed per message (preserving
        the one-event-at-a-time semantics bit for bit); the flow-control
        policy is notified once for the whole burst.
        """
        dst = burst[0][0].dst
        tracer_arrival = self._tracer_arrival
        if tracer_arrival is not None:
            for message, _ in burst:
                tracer_arrival(
                    dst, message.src, message.nbytes, message.tag, message.kind, arrival
                )
        if self._policy_observes_delivery:
            if len(burst) == 1:
                message = burst[0][0]
                self.policy.on_message_delivered(
                    dst, message.src, message.nbytes, message.tag, message.kind, arrival
                )
            else:
                self.policy.on_burst_delivered(
                    dst,
                    [(m.src, m.nbytes, m.tag, m.kind) for m, _ in burst],
                    arrival,
                )

        endpoint = self._endpoints[dst]
        stats = self.stats
        for message, posted in burst:
            if message.duplicate:
                # Fault-injected duplicate copy: already traced and shown to
                # the policy above; a real receiver deduplicates by sequence
                # number, so it never reaches MPI matching or statistics.
                continue
            if posted is not None:
                # Rendezvous payload: the receive was matched during the handshake.
                stats.record_delivery(expected=True)
                self._complete_receive(posted, message, arrival, copy_penalty=0.0)
                continue
            match = endpoint.posted.match(message)
            if match is not None:
                stats.record_delivery(expected=True)
                self._complete_receive(match, message, arrival, copy_penalty=0.0)
            else:
                storage = endpoint.buffers.store_unexpected(message.src, message.nbytes)
                stats.record_delivery(expected=False, storage=storage)
                endpoint.unexpected.add(
                    _tuple_new(UnexpectedEntry, (message, arrival, False, None, storage))
                )

    def deliver_cohort(
        self, items: list[tuple[Message, Optional[PostedReceive]]], arrival: float
    ) -> None:
        """Payloads arrived at one timestamp, possibly at *several* ranks.

        ``items`` is the full consecutive run of same-time delivery records in
        exact event order; destinations may interleave.  With a tracer or a
        delivery-observing policy attached, the run is segmented into
        consecutive same-destination bursts and forwarded to
        :meth:`deliver_burst`, preserving its per-burst trace/policy phase
        order.  Without either hook (the benchmark configuration), matching
        and completion are inlined in one flat pass — same calls, same order,
        same outputs, without 50k+ single-message burst calls.
        """
        if self._tracer_arrival is not None or self._policy_observes_delivery:
            deliver_burst = self.deliver_burst
            start = 0
            dst = items[0][0].dst
            for j in range(1, len(items)):
                d = items[j][0].dst
                if d != dst:
                    deliver_burst(items[start:j], arrival)
                    start = j
                    dst = d
            deliver_burst(items[start:], arrival)
            return
        endpoints = self._endpoints
        stats = self.stats
        record_delivery = stats.record_delivery
        latency_accumulator = stats.latency_accumulator
        recv_overhead = self._recv_overhead
        expected_count = 0
        endpoint = None
        eager_acc = rendezvous_acc = None
        dst = -1
        for message, posted in items:
            if message.duplicate:
                continue
            d = message.dst
            if d != dst:
                dst = d
                endpoint = endpoints[d]
                eager_acc = latency_accumulator("eager", d)
                rendezvous_acc = latency_accumulator("rendezvous", d)
            if posted is None:
                posted = endpoint.posted.match(message)
                if posted is None:
                    storage = endpoint.buffers.store_unexpected(
                        message.src, message.nbytes
                    )
                    record_delivery(expected=False, storage=storage)
                    endpoint.unexpected.add(
                        _tuple_new(
                            UnexpectedEntry, (message, arrival, False, None, storage)
                        )
                    )
                    continue
            # Inlined _complete_receive with copy_penalty=0.0 and no tracer
            # (the arrival hook being None implies the recv-matched hook is
            # too — both come from the same tracer object).  The latency
            # accumulator is updated inline, samples in exact message order.
            expected_count += 1
            complete_time = arrival + recv_overhead
            arrival_time = message.arrival_time
            status = _tuple_new(
                Status,
                (
                    message.src,
                    message.tag,
                    message.nbytes,
                    message.kind,
                    arrival_time if arrival_time == arrival_time else arrival,
                ),
            )
            acc = eager_acc if message.protocol == "eager" else rendezvous_acc
            latency = complete_time - message.inject_time
            acc.count += 1
            acc.total += latency
            if latency > acc.maximum:
                acc.maximum = latency
            posted.request._complete(complete_time, status)
        stats.expected_deliveries += expected_count

    def _complete_from_unexpected(
        self, posted: PostedReceive, entry: UnexpectedEntry, now: float
    ) -> None:
        """A newly posted receive matched a buffered eager message."""
        message = entry.message
        endpoint = self._endpoints[posted.request.rank]
        endpoint.buffers.release_unexpected(message.src, message.nbytes, entry.storage or "heap")
        copy_penalty = message.nbytes / self._copy_bandwidth
        self._complete_receive(posted, message, max(now, entry.arrival_time), copy_penalty)

    def _complete_receive(
        self, posted: PostedReceive, message: Message, ready_time: float, copy_penalty: float
    ) -> None:
        """Finish a receive: build the status, trace it, fire the request."""
        complete_time = ready_time + self._recv_overhead + copy_penalty
        arrival_time = message.arrival_time
        status = _tuple_new(
            Status,
            (
                message.src,
                message.tag,
                message.nbytes,
                message.kind,
                arrival_time if arrival_time == arrival_time else ready_time,
            ),
        )
        rank = posted.request.rank
        if self._tracer_recv_matched is not None:
            self._tracer_recv_matched(
                rank,
                posted.request.req_id,
                message.src,
                message.nbytes,
                message.tag,
                message.kind,
                complete_time,
            )
        self.stats.record_latency(
            message.protocol, rank, complete_time - message.inject_time
        )
        posted.request._complete(complete_time, status)

    # ------------------------------------------------------------------
    def pending_counts(self) -> dict[int, tuple[int, int]]:
        """Per-rank (posted, unexpected) queue lengths — useful for deadlock reports."""
        return {
            ep.rank: (len(ep.posted), len(ep.unexpected)) for ep in self._endpoints
        }
