"""MPI receive matching queues.

Matching follows the MPI rules the paper's substrate (MPICH) implements:

* a posted receive specifies a source and a tag, either of which may be the
  wildcard (``ANY_SOURCE`` / ``ANY_TAG``);
* an incoming message matches the *earliest posted* receive whose source and
  tag accept it;
* a newly posted receive matches the *earliest arrived* unexpected message it
  accepts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple, Optional

from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.request import Request
from repro.runtime.message import Message

__all__ = ["PostedReceive", "PostedReceiveQueue", "UnexpectedQueue"]


class PostedReceive(NamedTuple):
    """A receive that has been posted but not yet matched.

    A named tuple rather than a dataclass: one is built per posted receive,
    and a flat tuple is the cheapest allocation the queue entries can be (the
    transport builds them through ``tuple.__new__`` on the hot path, skipping
    even the generated ``__new__`` wrapper).
    """

    request: Request
    source: int
    tag: int
    kind: str
    post_time: float

    def accepts(self, msg: Message) -> bool:
        """Whether this posted receive matches the message's envelope."""
        if self.source != ANY_SOURCE and self.source != msg.src:
            return False
        if self.tag != ANY_TAG and self.tag != msg.tag:
            return False
        return True


class UnexpectedEntry(NamedTuple):
    """A message (or rendezvous announcement) that arrived before its receive.

    Flat tuple for the same reason as :class:`PostedReceive` — one entry per
    unexpected arrival, on the delivery hot path.
    """

    message: Message
    arrival_time: float
    #: True when the entry is a rendezvous RTS waiting for a matching receive
    #: (payload not yet transferred); False for buffered eager payloads.
    is_rendezvous_announcement: bool = False
    #: Opaque handle the transport uses to resume the rendezvous handshake.
    rendezvous_token: object | None = None
    #: For buffered eager payloads: which storage class the buffer pool used
    #: ("buffer" or "heap"), needed to release the memory on match.
    storage: str | None = None


@dataclass(slots=True)
class PostedReceiveQueue:
    """Posted receives of one rank, in posting order."""

    entries: list[PostedReceive] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def post(self, entry: PostedReceive) -> None:
        """Append a newly posted receive."""
        self.entries.append(entry)

    def match(self, msg: Message) -> Optional[PostedReceive]:
        """Pop and return the earliest posted receive matching ``msg``."""
        src = msg.src
        tag = msg.tag
        entries = self.entries
        # accepts() inlined: this loop runs once per delivered message.
        for index, entry in enumerate(entries):
            esrc = entry.source
            if esrc != ANY_SOURCE and esrc != src:
                continue
            etag = entry.tag
            if etag != ANY_TAG and etag != tag:
                continue
            return entries.pop(index)
        return None


@dataclass(slots=True)
class UnexpectedQueue:
    """Unexpected (early) messages of one rank, in arrival order."""

    entries: list[UnexpectedEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, entry: UnexpectedEntry) -> None:
        """Append a newly arrived unexpected message."""
        self.entries.append(entry)

    def match(self, posted: PostedReceive) -> Optional[UnexpectedEntry]:
        """Pop and return the earliest unexpected entry the receive accepts."""
        src = posted.source
        tag = posted.tag
        entries = self.entries
        # accepts() inlined: this loop runs once per posted receive.
        for index, entry in enumerate(entries):
            message = entry.message
            if src != ANY_SOURCE and src != message.src:
                continue
            if tag != ANY_TAG and tag != message.tag:
                continue
            return entries.pop(index)
        return None

    def pending_bytes(self) -> int:
        """Total buffered payload bytes currently held (eager entries only)."""
        return sum(
            e.message.nbytes for e in self.entries if not e.is_rendezvous_announcement
        )
